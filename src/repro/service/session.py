"""Multi-session serving: many secrets, one compiled-query registry.

:class:`~repro.monad.anosy.AnosyT` tracks knowledge per *secret value*
inside one monadic computation.  A service instead juggles thousands of
independent principals — one per connected user — all declassifying
through the same small set of compiled queries.  :class:`SessionManager`
makes that split explicit, mirroring the Haskell artifact's ``AnosyST``
(whose ``secrets :: HashMap secret dom`` multiplexes tracked knowledge
over a single ``queries`` table):

* the :class:`~repro.core.plugin.QueryRegistry` and the policy are shared,
  immutable serving state — compile once, attach to a manager, serve;
* each :class:`Session` owns one protected secret and its mutable
  attacker-knowledge approximation plus an audit trail.

:meth:`SessionManager.downgrade_batch` is the throughput path: the
compiled ind.-set pair is fetched once per query, the prior→posterior
intersection is memoized per *distinct* prior (fleets of fresh sessions
all share the ⊤ prior, so a thousand sessions cost one intersection), and
only the secret-dependent parts — query evaluation and knowledge update —
run per session.

The manager is safe for concurrent use: one reentrant lock serializes
session lifecycle and every batch application, so a session's knowledge
history is always a linearization of whole downgrades — a worker pool
never observes a batch half-applied.  (Compiled artifacts need no lock:
the registry is immutable shared state.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.plugin import QueryRegistry
from repro.domains.base import AbstractDomain
from repro.lang.secrets import SecretSpec, SecretValue
from repro.monad.anosy import (
    DowngradeDecision,
    DowngradeRecord,
    PolicyViolation,
    UnknownQuery,
    evaluate_downgrade,
    pair_verdict,
    top_knowledge_for,
)
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import ProtectedSecret

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One principal's mutable serving state.

    ``knowledge is None`` means no downgrade has happened yet — the
    attacker's knowledge is still the full secret space (⊤ is materialized
    lazily, per query domain, by the manager).
    """

    session_id: str
    secret: ProtectedSecret
    knowledge: AbstractDomain | None = None
    history: list[DowngradeRecord] = field(default_factory=list)

    @property
    def spec(self) -> SecretSpec:
        """The secret type this session declassifies over."""
        return self.secret.spec

    def knowledge_size(self) -> int | None:
        """Size of the tracked knowledge (``None`` before any downgrade)."""
        return None if self.knowledge is None else self.knowledge.size()

    def authorized_count(self) -> int:
        """Authorized downgrades in this session's audit trail."""
        return sum(1 for record in self.history if record.authorized)


@dataclass
class SessionManager:
    """Shared compiled queries + policy, multiplexed over many sessions."""

    registry: QueryRegistry
    policy: QuantitativePolicy
    mode: str = "under"
    check_both: bool = True
    sessions: dict[str, Session] = field(default_factory=dict)
    #: Serializes lifecycle and batch application; reentrant because the
    #: single-session paths funnel into :meth:`downgrade_batch`.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.mode not in ("under", "over"):
            raise ValueError(f"mode must be 'under' or 'over', got {self.mode!r}")

    # -- session lifecycle -------------------------------------------------
    def open_session(
        self,
        session_id: str,
        secret: ProtectedSecret | tuple[SecretSpec, SecretValue],
    ) -> Session:
        """Register a principal; ids must be unique among open sessions."""
        with self._lock:
            if session_id in self.sessions:
                raise ValueError(f"session {session_id!r} already open")
            if not isinstance(secret, ProtectedSecret):
                spec, value = secret
                secret = ProtectedSecret.seal(spec, value)
            session = Session(session_id=session_id, secret=secret)
            self.sessions[session_id] = session
            return session

    def open_sessions(
        self, secrets: Mapping[str, ProtectedSecret | tuple[SecretSpec, SecretValue]]
    ) -> list[Session]:
        """Bulk :meth:`open_session` (e.g. a fleet of fresh users)."""
        return [self.open_session(sid, secret) for sid, secret in secrets.items()]

    def close_session(self, session_id: str) -> Session:
        """Drop a session, returning its final state (with audit trail)."""
        with self._lock:
            try:
                return self.sessions.pop(session_id)
            except KeyError:
                raise KeyError(f"no open session {session_id!r}") from None

    def session(self, session_id: str) -> Session:
        """Look up an open session."""
        with self._lock:
            try:
                return self.sessions[session_id]
            except KeyError:
                raise KeyError(f"no open session {session_id!r}") from None

    def knowledge_of(self, session_id: str) -> AbstractDomain | None:
        """The tracked knowledge for a session (``None`` = no prior yet)."""
        return self.session(session_id).knowledge

    # -- serving -----------------------------------------------------------
    def downgrade(self, session_id: str, query_name: str) -> bool:
        """Raising single-session downgrade (Figure 2 semantics)."""
        decision = self.try_downgrade(session_id, query_name)
        if not decision.authorized:
            if decision.reason.startswith("Can't downgrade"):
                raise UnknownQuery(decision.reason)
            raise PolicyViolation(decision.reason)
        assert decision.response is not None
        return decision.response

    def try_downgrade(self, session_id: str, query_name: str) -> DowngradeDecision:
        """Non-raising single-session downgrade."""
        return self.downgrade_batch(query_name, [session_id])[session_id]

    def downgrade_batch(
        self, query_name: str, session_ids: Iterable[str] | None = None
    ) -> dict[str, DowngradeDecision]:
        """Answer one query for many sessions in a single pass.

        ``session_ids`` defaults to every open session; duplicate ids
        collapse to one request.  Every id is resolved *before* any
        knowledge is touched, so an unknown session raises without
        leaving the batch half-applied.  The compiled ind.-set pair is
        fetched once; posterior pairs (via :meth:`QInfo.approx_batch
        <repro.core.qinfo.QInfo.approx_batch>`) and, in the
        ``check_both`` discipline, the secret-independent authorization
        verdict are memoized per distinct prior.
        """
        with self._lock:
            return self._downgrade_batch_locked(query_name, session_ids)

    def _downgrade_batch_locked(
        self, query_name: str, session_ids: Iterable[str] | None
    ) -> dict[str, DowngradeDecision]:
        ids = list(dict.fromkeys(self.sessions if session_ids is None else session_ids))
        sessions = {sid: self.session(sid) for sid in ids}

        compiled = self.registry.lookup(query_name)
        if compiled is None:
            refusal = DowngradeDecision(
                authorized=False,
                response=None,
                reason=f"Can't downgrade {query_name}",
            )
            return {sid: self._record(sid, query_name, refusal, None) for sid in ids}

        qinfo = compiled.qinfo
        top = top_knowledge_for(qinfo)
        decisions: dict[str, DowngradeDecision] = {}

        eligible: list[str] = []
        for sid, session in sessions.items():
            if qinfo.secret != session.spec:
                decisions[sid] = self._record(
                    sid,
                    query_name,
                    DowngradeDecision(
                        authorized=False,
                        response=None,
                        reason=(
                            f"query {query_name!r} is over {qinfo.secret.name!r}, "
                            f"secret is {session.spec.name!r}"
                        ),
                    ),
                    None,
                )
            else:
                eligible.append(sid)

        priors = [
            sessions[sid].knowledge if sessions[sid].knowledge is not None else top
            for sid in eligible
        ]
        pairs = qinfo.approx_batch(priors, mode=self.mode)
        verdicts: dict[AbstractDomain, bool] = {}
        for sid, prior, pair in zip(eligible, priors, pairs):
            session = sessions[sid]
            pair_authorized: bool | None = None
            if self.check_both:
                pair_authorized = verdicts.get(prior)
                if pair_authorized is None:
                    pair_authorized = pair_verdict(self.policy, pair)
                    verdicts[prior] = pair_authorized
            decision, posterior = evaluate_downgrade(
                qinfo,
                self.policy,
                session.secret,
                prior,
                mode=self.mode,
                check_both=self.check_both,
                posterior_pair=pair,
                pair_authorized=pair_authorized,
            )
            if posterior is not None:
                session.knowledge = posterior
            decisions[sid] = self._record(sid, query_name, decision, prior)
        return {sid: decisions[sid] for sid in ids}

    def _record(
        self,
        session_id: str,
        query_name: str,
        decision: DowngradeDecision,
        prior: AbstractDomain | None,
    ) -> DowngradeDecision:
        """Append one audit record to the session's trail.

        ``prior is None`` marks requests refused before any knowledge was
        consulted (unknown query, spec mismatch); like :class:`AnosyT`,
        those never touch the session's knowledge history — the
        service-level audit trail (:mod:`repro.service.api`) still logs
        them.
        """
        session = self.session(session_id)
        if prior is None:
            return decision
        posterior_size = (
            session.knowledge.size()
            if decision.authorized and session.knowledge is not None
            else None
        )
        session.history.append(
            DowngradeRecord(
                query_name=query_name,
                authorized=decision.authorized,
                response=decision.response,
                prior_size=prior.size(),
                posterior_size=posterior_size,
            )
        )
        return decision

    # -- introspection -----------------------------------------------------
    def open_count(self) -> int:
        """Number of open sessions."""
        with self._lock:
            return len(self.sessions)

    def authorized_count(self) -> int:
        """Authorized downgrades across all open sessions."""
        with self._lock:
            return sum(
                session.authorized_count() for session in self.sessions.values()
            )
