"""Structure-of-arrays session state: the vectorized warm path's backbone.

A :class:`FleetStore` mirrors the mutable serving state of every open
session of one secret type as dense NumPy arrays:

* ``secrets`` — validated secret tuples as int64 rows, in field order,
  ready to feed :meth:`repro.core.qinfo.QInfo.run_batch`;
* ``refs`` — per-session indexes into an interning ``table`` of distinct
  knowledge domains (ref 0 is reserved for "no prior yet", i.e. the
  session-level ``knowledge is None``).

Fleets overwhelmingly share knowledge states (fresh sessions all sit at
⊤; each answered query splits a group in at most two), so a whole tick's
posterior computation collapses to one stacked intersection per
*distinct* ref — the grouping is ``np.unique`` over an int column, not a
hash walk over domain objects.  The store is maintained lazily by
:class:`~repro.service.session.SessionManager` under its lock: rows are
added the first time a session is served vectorized, re-synced by a
cheap identity check when a session's knowledge was mutated behind the
store's back, and swap-removed on close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.solver import vectoreval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.domains.base import AbstractDomain
    from repro.lang.secrets import SecretSpec, SecretValue

__all__ = ["FleetStore"]

_INITIAL_CAPACITY = 64


class FleetStore:
    """Dense per-spec mirrors of open sessions' secrets and knowledge."""

    __slots__ = ("spec", "ids", "index", "secrets", "refs", "size", "table", "_intern")

    def __init__(self, spec: "SecretSpec") -> None:
        np = vectoreval.require_numpy()
        self.spec = spec
        #: Row → session id (swap-remove keeps rows dense).
        self.ids: list[str] = []
        #: Session id → row.
        self.index: dict[str, int] = {}
        self.size = 0
        self.secrets = np.empty((_INITIAL_CAPACITY, spec.arity), dtype=np.int64)
        self.refs = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        #: Interning table of distinct knowledge domains; entry 0 is the
        #: "no prior yet" sentinel (``None``).
        self.table: list["AbstractDomain | None"] = [None]
        self._intern: dict["AbstractDomain", int] = {}

    # -- knowledge interning -------------------------------------------------
    def intern(self, domain: "AbstractDomain | None") -> int:
        """The ref of a knowledge domain, interning it if new."""
        if domain is None:
            return 0
        ref = self._intern.get(domain)
        if ref is None:
            ref = len(self.table)
            self.table.append(domain)
            self._intern[domain] = ref
        return ref

    def domain(self, ref: int) -> "AbstractDomain | None":
        """The knowledge domain behind a ref (``None`` for ref 0)."""
        return self.table[ref]

    # -- row lifecycle -------------------------------------------------------
    def add(
        self,
        session_id: str,
        secret_value: "SecretValue",
        knowledge: "AbstractDomain | None",
    ) -> int:
        """Append a session row; returns its index."""
        if self.size == len(self.refs):
            self._grow()
        row = self.size
        self.secrets[row] = secret_value
        self.refs[row] = self.intern(knowledge)
        self.ids.append(session_id)
        self.index[session_id] = row
        self.size = row + 1
        return row

    def discard(self, session_id: str) -> None:
        """Swap-remove a session's row (no-op if absent)."""
        row = self.index.pop(session_id, None)
        if row is None:
            return
        last = self.size - 1
        if row != last:
            moved = self.ids[last]
            self.ids[row] = moved
            self.index[moved] = row
            self.secrets[row] = self.secrets[last]
            self.refs[row] = self.refs[last]
        self.ids.pop()
        self.size = last

    def _grow(self) -> None:
        np = vectoreval.require_numpy()
        capacity = max(_INITIAL_CAPACITY, 2 * len(self.refs))
        secrets = np.empty((capacity, self.spec.arity), dtype=np.int64)
        secrets[: self.size] = self.secrets[: self.size]
        refs = np.zeros(capacity, dtype=np.int64)
        refs[: self.size] = self.refs[: self.size]
        self.secrets = secrets
        self.refs = refs
