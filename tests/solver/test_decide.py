"""Brute-force-checked tests for the decision procedures."""

import pytest
from hypothesis import given, settings

from repro.lang.ast import BoolLit, var
from repro.lang.eval import eval_bool
from repro.solver.boxes import Box
from repro.solver.decide import (
    KernelEngine,
    SolverBudgetExceeded,
    SolverStats,
    count_models,
    decide_exists,
    decide_forall,
    find_model,
    find_true_box,
)
from tests.strategies import bool_exprs, boxes_within

SPACE = Box.make((-8, 12), (0, 15))
NAMES = ("x", "y")


def _brute_force(formula, box):
    return [
        point
        for point in box.iter_points()
        if eval_bool(formula, dict(zip(NAMES, point)))
    ]


class TestDecideForall:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, formula, box):
        expected = len(_brute_force(formula, box)) == box.volume()
        assert decide_forall(formula, box, NAMES) == expected

    def test_trivial_formulas(self):
        assert decide_forall(BoolLit(True), SPACE, NAMES)
        assert not decide_forall(BoolLit(False), SPACE, NAMES)

    def test_nearby_box_inside(self, nearby):
        box = Box.make((150, 250), (150, 250))
        assert decide_forall(nearby, box, NAMES)

    def test_nearby_box_crossing(self, nearby):
        box = Box.make((150, 251), (150, 251))
        assert not decide_forall(nearby, box, NAMES)

    def test_budget_guard(self, nearby):
        # Any crossing decision needs at least two search nodes, so a
        # one-node budget must trip regardless of split quality.
        stats = SolverStats(max_nodes=1)
        big = Box.make((0, 399), (0, 399))
        with pytest.raises(SolverBudgetExceeded):
            decide_forall(nearby, big, NAMES, stats)


class TestFindModel:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, formula, box):
        witness = find_model(formula, box, NAMES)
        expected = _brute_force(formula, box)
        if witness is None:
            assert not expected
        else:
            assert box.contains(witness)
            assert eval_bool(formula, dict(zip(NAMES, witness)))

    def test_exists_dual(self):
        formula = var("x").eq(3) & var("y").eq(7)
        assert decide_exists(formula, SPACE, NAMES)
        assert not decide_exists(var("x").eq(99), SPACE, NAMES)


class TestCountModels:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, formula, box):
        assert count_models(formula, box, NAMES) == len(_brute_force(formula, box))

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_and_pure_agree(self, formula, box):
        vectorized = count_models(formula, box, NAMES)
        pure = count_models(formula, box, NAMES, vector_threshold=0)
        assert vectorized == pure

    def test_diamond_count(self, nearby):
        space = Box.make((0, 399), (0, 399))
        assert count_models(nearby, space, NAMES) == 2 * 100 * 100 + 2 * 100 + 1

    def test_factoring_multiplies_free_dimensions(self):
        # Constraint touches only x; the y dimension factors out.
        formula = var("x") <= 0
        stats = SolverStats()
        count = count_models(formula, SPACE, NAMES, stats)
        assert count == 9 * 16  # x in [-8, 0], y free


class TestDeepSplits:
    """Worklist regression: adversarial queries that slice one tiny run per
    split used to overflow Python's recursion limit (the procedures were
    recursive); they must now complete on any engine with grids disabled."""

    # An alternating membership set over a wide secret: every split peels a
    # single-member run, so the old recursion depth grew linearly (~N).
    N = 3000
    FORMULA = var("x").in_set(range(0, 2 * N + 1, 2))
    WIDE = Box.make((0, 2 * N + 1), (0, 1))

    def test_count_models_survives_deep_splits(self):
        import sys

        limit = sys.getrecursionlimit()
        assert self.N * 2 > limit, "query too shallow to exercise the fix"
        for use_kernels in (True, False):
            count = count_models(
                self.FORMULA, self.WIDE, NAMES,
                vector_threshold=0, use_kernels=use_kernels,
            )
            assert count == (self.N + 1) * 2

    def test_find_model_survives_deep_splits(self):
        # Unsatisfiable conjunction of alternating memberships: every split
        # peels one point, so exhausting the space used to nest ~N deep.
        odds = var("x").in_set(range(1, 2 * self.N, 2))
        assert (
            find_model(self.FORMULA & odds, self.WIDE, NAMES, vector_threshold=0)
            is None
        )

    def test_decide_forall_on_alternating_membership(self):
        assert not decide_forall(
            self.FORMULA, self.WIDE, NAMES, vector_threshold=0
        )


class TestFindTrueBox:
    def test_finds_interior_box(self, nearby):
        space = Box.make((0, 399), (0, 399))
        result = find_true_box(nearby, space, NAMES)
        assert result.box is not None
        assert decide_forall(nearby, result.box, NAMES)

    def test_empty_region_exhausts(self):
        result = find_true_box(var("x").eq(99), SPACE, NAMES)
        assert result.box is None
        assert result.exhausted

    def test_budget_exhaustion_reports_not_exhausted(self, nearby):
        space = Box.make((0, 399), (0, 399))
        result = find_true_box(nearby, space, NAMES, max_pops=1)
        assert result.box is None
        assert not result.exhausted


class TestSmallFormulaFastPath:
    """Pinned regression for the ``count_models_birthday`` benchmark.

    Lowering a tiny formula into compiled kernels costs more than every
    tree walk it saves, which made the kernel path *slower* than the
    interpreter on one-shot counts (0.8x in ``BENCH_solver.json``).  The
    fix: one-shot ``count_models`` calls on small formulas pick the
    interpreter engine.  These tests pin the selection behavior — the
    classifier itself, that tiny one-shot counts never construct a
    kernel engine, and that big formulas still do — and the count-level
    conformance suite guards that the choice stays invisible in results.
    """

    BIRTHDAY_NAMES = ("bday", "byear")
    BIRTHDAY_SPACE = Box.make((0, 364), (1956, 1992))

    def _birthday(self):
        from repro.lang.parser import parse_bool

        return parse_bool("bday >= 250 and bday < 257")

    def _wide(self):
        from repro.lang.parser import parse_bool

        # 9 comparisons / 27+ nodes: safely above the fast-path limit.
        parts = " and ".join(f"bday >= {i}" for i in range(9))
        return parse_bool(parts)

    def test_small_formula_classifier(self):
        from repro.solver.decide import SMALL_FORMULA_NODE_LIMIT, small_formula

        assert small_formula(self._birthday())
        assert not small_formula(self._wide())
        assert not small_formula(self._birthday(), limit=2)
        assert SMALL_FORMULA_NODE_LIMIT >= 7  # birthday-sized atoms stay fast

    def test_one_shot_small_count_avoids_kernel_engine(self, monkeypatch):
        import repro.solver.decide as decide_module

        def boom(*args, **kwargs):
            raise AssertionError("kernel engine constructed on the fast path")

        monkeypatch.setattr(decide_module, "KernelEngine", boom)
        count = count_models(
            self._birthday(), self.BIRTHDAY_SPACE, self.BIRTHDAY_NAMES
        )
        assert count == 7 * 37

    def test_large_formula_still_uses_kernels(self, monkeypatch):
        import repro.solver.decide as decide_module

        built = []
        original = decide_module.KernelEngine

        def spy(*args, **kwargs):
            built.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(decide_module, "KernelEngine", spy)
        count_models(self._wide(), self.BIRTHDAY_SPACE, self.BIRTHDAY_NAMES)
        assert built

    def test_fast_path_counts_match_explicit_kernel_engine(self):
        formula = self._birthday()
        fast = count_models(formula, self.BIRTHDAY_SPACE, self.BIRTHDAY_NAMES)
        kernel = count_models(
            formula,
            self.BIRTHDAY_SPACE,
            self.BIRTHDAY_NAMES,
            engine=KernelEngine(self.BIRTHDAY_NAMES),
        )
        assert fast == kernel == 7 * 37
