"""DeclassificationServer: coalescing, batching, restart, budget, shedding."""

import asyncio

import pytest

from repro.core.plugin import CompileOptions
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server.gateway import (
    DeclassificationServer,
    ServerConfig,
    ServerOverloaded,
)
from repro.server.store import SQLiteStore
from repro.service.api import CompileRequest

SPEC = SecretSpec.declare("GwLoc", x=(0, 199), y=(0, 199))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))
INLINE = ServerConfig(inline_compiles=True)

QUERIES = {
    "east": "x >= 100",
    "north": "y >= 100",
    "plaza": "abs(x - 100) + abs(y - 100) <= 60",
}


def make_server(**kwargs) -> DeclassificationServer:
    kwargs.setdefault("options", OPTIONS)
    kwargs.setdefault("config", INLINE)
    return DeclassificationServer(size_above(100), **kwargs)


def test_compile_cache_and_coalescing():
    async def scenario():
        server = make_server()
        first = await server.register_query(CompileRequest("q", "x <= 50", SPEC))
        assert not first.cache_hit and not first.coalesced
        assert first.shard is not None and first.verified
        # Same canonical problem, new tenant, commuted spelling: a hit.
        again = await server.register_query(
            CompileRequest("q2", "50 >= x", SPEC)
        )
        assert again.cache_hit and not again.coalesced
        assert server.pool.total_submitted() == 1
        assert sorted(server.manager.registry.names()) == ["q", "q2"]
        # Concurrent identical problems coalesce onto one shard job.
        receipts = await asyncio.gather(
            *(
                server.register_query(CompileRequest(f"p{i}", "y <= 20", SPEC))
                for i in range(4)
            )
        )
        assert server.pool.total_submitted() == 2
        assert sum(1 for r in receipts if not r.cache_hit and not r.coalesced) == 1
        assert sum(1 for r in receipts if r.coalesced) == 3
        assert server.stats.compile_coalesced == 3
        server.shutdown()

    asyncio.run(scenario())


def test_downgrades_batch_per_tick_and_match_truth():
    async def scenario():
        server = make_server()
        for name, text in QUERIES.items():
            await server.register_query(CompileRequest(name, text, SPEC))
        secrets = {f"u{i}": (i * 37 % 200, i * 53 % 200) for i in range(40)}
        for sid, value in secrets.items():
            server.open_session(sid, (SPEC, value))

        # Quadrant queries: every posterior chain stays a 100x200-or-larger
        # box, so check-both authorizes all 80 requests.
        await server.start()
        results = await asyncio.gather(
            *(server.downgrade(sid, "east") for sid in secrets),
            *(server.downgrade(sid, "north") for sid in secrets),
        )
        await server.stop()

        compiled = {n: server.manager.registry.lookup(n).qinfo for n in QUERIES}
        for result in results:
            assert result.authorized
            env = SPEC.to_env(secrets[result.session_id])
            assert result.response == eval_bool(
                compiled[result.query_name].query, env
            )
        # Batching really happened: far fewer service batches than requests.
        batches = [e for e in server.service.audit if e.kind == "batch"]
        assert len(batches) < len(results)
        assert server.stats.downgrades_served == len(results) == 80
        server.shutdown()

    asyncio.run(scenario())


def test_kill_and_restart_warm_starts_with_zero_recompiles(tmp_path):
    """The acceptance test: a restarted server re-serves every previously
    compiled query without a single shard job."""
    path = tmp_path / "artifacts.db"

    async def serve(store: SQLiteStore):
        server = make_server(store=store)
        receipts = [
            await server.register_query(CompileRequest(name, text, SPEC))
            for name, text in QUERIES.items()
        ]
        server.open_session("u", (SPEC, (120, 80)))
        result = await server.downgrade("u", "east")
        assert result.authorized and result.response is True
        server.shutdown()
        return server, receipts

    with SQLiteStore(path) as store:
        server1, receipts1 = asyncio.run(serve(store))
        assert all(not r.cache_hit for r in receipts1)
        assert server1.pool.total_submitted() == len(QUERIES)
        assert server1.stats.warm_entries == 0
        assert len(store) == len(QUERIES)

    # Kill.  Restart on the same store: all hits, zero compile jobs.
    with SQLiteStore(path) as store:
        server2, receipts2 = asyncio.run(serve(store))
        assert all(r.cache_hit for r in receipts2)
        assert server2.pool.total_submitted() == 0
        assert server2.stats.warm_entries == len(QUERIES)
        # The artifacts are byte-identical across the restart.
        for name in QUERIES:
            q1 = server1.manager.registry.lookup(name).qinfo
            q2 = server2.manager.registry.lookup(name).qinfo
            assert q1.under_indset == q2.under_indset
            assert q1.over_indset == q2.over_indset


def test_budget_ledger_interposes_on_serving():
    async def scenario():
        server = make_server(budget_floor=size_above(4000))
        for name, text in (
            ("west", "x <= 99"),
            ("south", "y <= 99"),
            ("inner", "x <= 49"),
        ):
            await server.register_query(CompileRequest(name, text, SPEC))
        server.open_session("s1", (SPEC, (30, 40)), user_id="alice")

        first = await server.downgrade("s1", "west")  # 20_000 both sides
        second = await server.downgrade("s1", "south")  # 10_000 both sides
        assert first.authorized and second.authorized
        # Third halving: 5_000 both sides > 4_000 — still fits.
        third = await server.downgrade("s1", "inner")
        assert third.authorized
        # Alice reconnects with a new session: sessions reset, the budget
        # does not.  Any further halving would land at 2_500 <= 4_000.
        server.close_session("s1")
        server.open_session("s2", (SPEC, (30, 40)), user_id="alice")
        refused = await server.downgrade("s2", "west")
        assert not refused.authorized
        assert "budget exhausted" in refused.reason
        # The refusal is invisible everywhere but the refusal itself:
        # session knowledge untouched, ledger bound unchanged.
        assert server.manager.session("s2").knowledge is None
        assert server.ledger.remaining("alice", SPEC) == 5000
        assert server.stats.budget_refusals == 1
        # A different user is unaffected.
        server.open_session("s3", (SPEC, (150, 150)), user_id="bob")
        fresh = await server.downgrade("s3", "west")
        assert fresh.authorized
        server.shutdown()

    asyncio.run(scenario())


def test_downgrade_queue_load_shedding():
    async def scenario():
        server = make_server(
            config=ServerConfig(
                inline_compiles=True, max_queued_downgrades=2, tick_interval=60.0
            )
        )
        await server.register_query(CompileRequest("q", "x <= 50", SPEC))
        server.open_session("u", (SPEC, (10, 10)))
        await server.start()  # slow ticker: requests stay queued
        t1 = asyncio.ensure_future(server.downgrade("u", "q"))
        t2 = asyncio.ensure_future(server.downgrade("u", "q"))
        await asyncio.sleep(0)  # let both enqueue
        with pytest.raises(ServerOverloaded):
            await server.downgrade("u", "q")
        await server.stop()  # final flush serves the queued two
        assert (await t1).authorized and (await t2).authorized
        server.shutdown()

    asyncio.run(scenario())


def test_unknown_session_and_unknown_query_are_refusals_not_errors():
    async def scenario():
        server = make_server(budget_floor=size_above(100))
        await server.register_query(CompileRequest("q", "x <= 50", SPEC))
        ghost = await server.downgrade("nobody", "q")
        assert not ghost.authorized and "no open session" in ghost.reason
        server.open_session("u", (SPEC, (10, 10)))
        unknown = await server.downgrade("u", "never_compiled")
        assert not unknown.authorized
        assert "Can't downgrade" in unknown.reason
        server.shutdown()

    asyncio.run(scenario())


def test_compile_shed_surfaces_and_recovers():
    async def scenario():
        server = make_server(
            config=ServerConfig(inline_compiles=True, max_pending_compiles=1)
        )
        from repro.server.workers import ShardOverloaded

        shard = server.pool.shard_for("x <= 77")
        server.pool._reserve(shard)  # a stuck in-flight job
        with pytest.raises(ShardOverloaded):
            await server.register_query(CompileRequest("q", "x <= 77", SPEC))
        assert server.stats.compile_shed == 1
        server.pool._release(shard)
        receipt = await server.register_query(
            CompileRequest("q", "x <= 77", SPEC)
        )
        assert not receipt.cache_hit
        server.shutdown()

    asyncio.run(scenario())


def test_async_service_entry_points():
    """The service facade's async surface (used by custom transports)."""
    from repro.service.api import (
        BatchDowngradeRequest,
        DeclassificationService,
        DowngradeRequest,
    )

    async def scenario():
        service = DeclassificationService(size_above(100), options=OPTIONS)
        receipt = await service.register_query_async(
            CompileRequest("q", "x <= 50", SPEC)
        )
        assert receipt.verified
        service.open_session("u", (SPEC, (10, 10)))
        single = await service.handle_async(DowngradeRequest("u", "q"))
        assert single.authorized and single.response is True
        batch = await service.handle_batch_async(BatchDowngradeRequest("q"))
        assert len(batch) == 1

    asyncio.run(scenario())


def test_flush_isolates_a_failing_batch_and_ticker_survives(monkeypatch):
    """One query group blowing up must fail only its own waiters; other
    groups in the same tick are still served and later ticks still run."""

    async def scenario():
        server = make_server()
        for name, text in (("good", "x <= 99"), ("bad", "y <= 99")):
            await server.register_query(CompileRequest(name, text, SPEC))
        server.open_session("u", (SPEC, (10, 10)))

        real_handle_batch = server.service.handle_batch

        def exploding(request):
            if request.query_name == "bad":
                raise RuntimeError("boom")
            return real_handle_batch(request)

        monkeypatch.setattr(server.service, "handle_batch", exploding)
        await server.start()
        good = asyncio.ensure_future(server.downgrade("u", "good"))
        bad = asyncio.ensure_future(server.downgrade("u", "bad"))
        assert (await good).authorized
        with pytest.raises(RuntimeError, match="boom"):
            await bad
        # The ticker survived the failing batch: later requests serve.
        later = await server.downgrade("u", "good")
        assert later.query_name == "good"
        await server.stop()
        server.shutdown()

    asyncio.run(scenario())


def test_same_user_sessions_in_one_tick_commit_in_rounds():
    """Two sessions of one user in one tick must not corrupt the ledger:
    the second is admitted against the bound the first produced (and is
    cleanly refused when that bound no longer affords the query)."""

    async def scenario():
        server = make_server(budget_floor=size_above(15_000))
        await server.register_query(CompileRequest("west", "x <= 99", SPEC))
        # Same user, contradictory secrets: the answers disagree, so a
        # naive preauthorize-all-then-commit-all would intersect both
        # sides and crash mid-tick with LedgerInvariantError.
        server.open_session("a", (SPEC, (10, 10)), user_id="alice")
        server.open_session("b", (SPEC, (150, 150)), user_id="alice")
        await server.start()
        ra, rb = await asyncio.gather(
            server.downgrade("a", "west"), server.downgrade("b", "west")
        )
        await server.stop()
        # Exactly one was answered; the other was refused by the budget
        # (its posterior against the first answer's bound is empty).
        assert sorted([ra.authorized, rb.authorized]) == [False, True]
        refused = ra if not ra.authorized else rb
        assert "budget exhausted" in refused.reason
        # The ledger bound reflects only the answered query.
        assert server.ledger.remaining("alice", SPEC) == 20_000
        assert len(server.ledger.account("alice").charges) == 1
        server.shutdown()

    asyncio.run(scenario())


def test_kill_and_restart_preserves_the_budget_ledger(tmp_path):
    """Budget continuity across a restart: a near-floor user reconnecting
    to a rebooted server gets the *same* refusal the killed server gave —
    zero recompiles, no ledger reset."""
    path = tmp_path / "state.db"
    budget_queries = (
        ("west", "x <= 99"),  # 40_000 -> 20_000
        ("south", "y <= 99"),  # -> 10_000
        ("inner", "x <= 49"),  # -> 5_000; floor 4_000: next halving refused
    )

    async def boot_and_probe(store, session_id, *, spend_budget):
        server = make_server(store=store, budget_floor=size_above(4000))
        for name, text in budget_queries:
            await server.register_query(CompileRequest(name, text, SPEC))
        server.open_session(session_id, (SPEC, (30, 40)), user_id="alice")
        if spend_budget:
            for name, _text in budget_queries:
                result = await server.downgrade(session_id, name)
                assert result.authorized
        refused = await server.downgrade(session_id, "west")
        server.shutdown()
        return server, refused

    with SQLiteStore(path) as store:
        server1, refused1 = asyncio.run(
            boot_and_probe(store, "s1", spend_budget=True)
        )
        assert not refused1.authorized
        assert "budget exhausted" in refused1.reason
        assert server1.ledger.remaining("alice", SPEC) == 5000
        assert store.ledger_bound_count() == 1

    # Kill.  Restart on the same store: the mirror reloads alice's bounds
    # before any request, so the budget picks up exactly where it stopped.
    with SQLiteStore(path) as store:
        server2, refused2 = asyncio.run(
            boot_and_probe(store, "s2", spend_budget=False)
        )
        assert server2.pool.total_submitted() == 0  # zero recompiles
        assert server2.ledger.remaining("alice", SPEC) == 5000  # no reset
        # The refusal verdict is identical to the pre-kill one.
        assert not refused2.authorized
        assert refused2.reason == refused1.reason
        assert refused2.knowledge_size == refused1.knowledge_size == 5000
        # And a brand-new user still has the full space.
        assert server2.ledger.remaining("someone-else", SPEC) == 40_000


# ---------------------------------------------------------------------------
# Shard-serving mode: the warm path runs on serving-shard processes
# ---------------------------------------------------------------------------

SHARDED = ServerConfig(
    inline_compiles=True, serving_shards=3, inline_serving=True
)


def test_shard_serving_matches_gateway_local_serving():
    """Same workload, both serving modes: identical verdicts and responses."""

    async def run_mode(config):
        server = make_server(config=config)
        for name, text in QUERIES.items():
            await server.register_query(CompileRequest(name, text, SPEC))
        secrets = {f"u{i}": (i * 37 % 200, i * 53 % 200) for i in range(12)}
        for sid, value in secrets.items():
            server.open_session(sid, (SPEC, value), user_id=f"user-{sid}")
        results = await asyncio.gather(
            *(server.downgrade(sid, "east") for sid in secrets),
            *(server.downgrade(sid, "north") for sid in secrets),
        )
        server.shutdown()
        return {(r.session_id, r.query_name): (r.authorized, r.response) for r in results}

    local = asyncio.run(run_mode(INLINE))
    sharded = asyncio.run(run_mode(SHARDED))
    assert local == sharded
    assert len(sharded) == 24


def test_shard_serving_enforces_the_budget_with_a_durable_mirror():
    async def scenario():
        store = SQLiteStore(":memory:")
        server = make_server(
            store=store, budget_floor=size_above(4000), config=SHARDED
        )
        for name, text in (
            ("west", "x <= 99"),
            ("south", "y <= 99"),
            ("inner", "x <= 49"),
        ):
            await server.register_query(CompileRequest(name, text, SPEC))
        server.open_session("s1", (SPEC, (30, 40)), user_id="alice")
        for name in ("west", "south", "inner"):
            assert (await server.downgrade("s1", name)).authorized
        # The shard's commits flowed back as deltas: the gateway mirror
        # and the store already hold the spent budget.
        assert server.ledger.remaining("alice", SPEC) == 5000
        assert store.ledger_bound_count() == 1
        # Reconnect on a fresh session: the budget did not reset.
        server.close_session("s1")
        server.open_session("s2", (SPEC, (30, 40)), user_id="alice")
        refused = await server.downgrade("s2", "west")
        assert not refused.authorized
        assert "budget exhausted" in refused.reason
        assert server.stats.budget_refusals == 1
        server.shutdown()
        store.close()

    asyncio.run(scenario())


def test_shard_serving_same_user_sessions_commit_in_rounds():
    """The round-per-user discipline holds inside a shard too (both
    sessions of one user route to the same shard by construction)."""

    async def scenario():
        server = make_server(budget_floor=size_above(15_000), config=SHARDED)
        await server.register_query(CompileRequest("west", "x <= 99", SPEC))
        server.open_session("a", (SPEC, (10, 10)), user_id="alice")
        server.open_session("b", (SPEC, (150, 150)), user_id="alice")
        ra, rb = await asyncio.gather(
            server.downgrade("a", "west"), server.downgrade("b", "west")
        )
        assert sorted([ra.authorized, rb.authorized]) == [False, True]
        refused = ra if not ra.authorized else rb
        assert "budget exhausted" in refused.reason
        assert server.ledger.remaining("alice", SPEC) == 20_000
        server.shutdown()

    asyncio.run(scenario())


def test_shard_serving_restart_preserves_budget(tmp_path):
    """Budget continuity in shard mode: the mirror snapshot shipped at
    open_session restores enforcement on a fresh shard process."""
    path = tmp_path / "sharded.db"

    async def boot(store, session_id, *, spend):
        server = make_server(
            store=store, budget_floor=size_above(4000), config=SHARDED
        )
        for name, text in (
            ("west", "x <= 99"),
            ("south", "y <= 99"),
            ("inner", "x <= 49"),
        ):
            await server.register_query(CompileRequest(name, text, SPEC))
        server.open_session(session_id, (SPEC, (30, 40)), user_id="alice")
        if spend:
            for name in ("west", "south", "inner"):
                assert (await server.downgrade(session_id, name)).authorized
        refused = await server.downgrade(session_id, "west")
        server.shutdown()
        return refused

    with SQLiteStore(path) as store:
        refused1 = asyncio.run(boot(store, "s1", spend=True))
        assert not refused1.authorized
    with SQLiteStore(path) as store:
        refused2 = asyncio.run(boot(store, "s2", spend=False))
        assert not refused2.authorized
        assert refused2.reason == refused1.reason
        assert refused2.knowledge_size == refused1.knowledge_size == 5000


def test_shard_serving_unknown_session_and_query_are_refusals():
    async def scenario():
        server = make_server(config=SHARDED)
        await server.register_query(CompileRequest("q", "x <= 50", SPEC))
        ghost = await server.downgrade("nobody", "q")
        assert not ghost.authorized and "no open session" in ghost.reason
        server.open_session("u", (SPEC, (10, 10)))
        unknown = await server.downgrade("u", "never_compiled")
        assert not unknown.authorized
        assert "Can't downgrade" in unknown.reason
        server.shutdown()

    asyncio.run(scenario())


def test_shard_serving_epoch_decay_regrows_budget():
    from repro.server.ledger import DecayPolicy

    async def scenario():
        small = SecretSpec.declare("GwSmall", x=(0, 15), y=(0, 15))
        server = make_server(
            budget_floor=size_above(100),
            budget_decay=DecayPolicy(radius=2),
            config=SHARDED,
        )
        await server.register_query(CompileRequest("half", "x <= 7", small))
        await server.register_query(CompileRequest("most", "x <= 6", small))
        server.open_session("s", (small, (3, 3)), user_id="alice")
        assert (await server.downgrade("s", "half")).authorized
        # A reconnect resets session knowledge but not the ledger: the
        # budget still refuses the tighter query.
        server.close_session("s")
        server.open_session("s2", (small, (3, 3)), user_id="alice")
        refused = await server.downgrade("s2", "most")
        assert not refused.authorized
        assert "budget exhausted" in refused.reason
        # Decay: the mirror advances now; the shard applies the queued
        # epoch op before its next batch.  After the bound re-widens, a
        # fresh session of the same user is served again.
        assert server.advance_epoch(3) == 3
        assert server.ledger.remaining("alice", small) > 128
        server.close_session("s2")
        server.open_session("s3", (small, (3, 3)), user_id="alice")
        assert (await server.downgrade("s3", "most")).authorized
        server.shutdown()

    asyncio.run(scenario())


def test_shard_serving_requires_encodable_policies():
    with pytest.raises(ValueError, match="encoding"):
        from repro.monad.policy import QuantitativePolicy

        DeclassificationServer(
            QuantitativePolicy("opaque", lambda dom: True),
            options=OPTIONS,
            config=SHARDED,
        )


def test_contains_promotes_store_writes_from_other_processes(tmp_path):
    """An artifact another process persisted after this server booted is
    served as a cache hit, not recompiled."""
    path = tmp_path / "shared.db"

    async def scenario():
        with SQLiteStore(path) as store:
            server = make_server(store=store)  # preloads an empty store
            # "Another process" compiles the query and writes it through.
            from repro.core.plugin import compile_query
            from repro.service.serialize import compiled_query_to_json

            compiled = compile_query("elsewhere", "x <= 123", SPEC, OPTIONS)
            key = server.cache.key_for(compiled.qinfo.query, SPEC, OPTIONS)
            store.put(key, compiled_query_to_json(compiled))

            receipt = await server.register_query(
                CompileRequest("local", "x <= 123", SPEC)
            )
            assert receipt.cache_hit
            assert server.pool.total_submitted() == 0
            server.shutdown()

    asyncio.run(scenario())
