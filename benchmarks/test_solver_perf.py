"""Benchmark S2 — the native solver: compiled kernels vs the pre-kernel path.

Measures the cold (uncached) solver work the service pays on every cache
miss, against a faithful in-process reproduction of the pre-kernel
baseline: tree-walking interpreter engine, single-variable-only split
heuristic (``legacy_splits``), no vectorized finishing in the decision
procedures, and none of the fused-probe / region-oracle / incremental
seeding optimizer reworks — exactly the algorithmic configuration the
repository shipped before the kernel layer.

Two outputs:

* loud assertions — cold powerset compilation of the Manhattan-ball
  query (the ``test_service_throughput.py`` cold path) must stay at least
  ``MIN_COMPILE_SPEEDUP`` faster than the baseline path, and the kernel
  engine must synthesize domains identical to the interpreter engine;
* ``BENCH_solver.json`` at the repository root — machine-readable
  timings (ops/sec), search statistics (nodes, splits, vectorized
  boxes), and speedups, seeding the performance trajectory.
"""

import json
import statistics
import time
from pathlib import Path

from repro.core.plugin import CompileOptions, compile_query
from repro.core.synth import SynthOptions
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box
from repro.solver.decide import (
    SolverStats,
    count_models,
    decide_exists,
    decide_forall,
    find_true_box,
    make_engine,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_solver.json"

#: The paper's running example / B4-style Manhattan ball (section 2).
SPEC = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))
NEARBY_SRC = "abs(x - 200) + abs(y - 200) <= 100"
NEARBY = parse_bool(NEARBY_SRC)
SPACE = Box.make((0, 399), (0, 399))
NAMES = ("x", "y")

#: The paper's B1 birthday query over (bday, byear).
BIRTHDAY_SPEC = SecretSpec.declare("Birthday", bday=(0, 364), byear=(1956, 1992))
BIRTHDAY = parse_bool("bday >= 250 and bday < 257")

#: The enforced floor for the cold-compile speedup.  The fused-probe /
#: region-oracle path lands at ~5.5x on the reference machine (target
#: 5x, met); the gate sits at 4x to fail loudly on regressions without
#: flaking on machine noise.
MIN_COMPILE_SPEEDUP = 4.0

KERNEL_SYNTH = SynthOptions()
#: Faithful pre-kernel configuration (see module docstring): interpreter
#: engine, legacy splits, no vectorized finishing, and none of the fused
#: probe-front / incremental-seeding optimizer reworks.
BASELINE_SYNTH = SynthOptions(
    use_kernels=False,
    vector_threshold=0,
    legacy_splits=True,
    fused_probes=False,
    incremental_seed=False,
)

_results: dict = {"benchmarks": {}}


def _paired(kernel_fn, baseline_fn, rounds):
    """Alternate the two paths so machine noise hits both equally."""
    kernel_times, baseline_times = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        kernel_fn()
        kernel_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        baseline_fn()
        baseline_times.append(time.perf_counter() - start)
    return statistics.median(kernel_times), statistics.median(baseline_times)


def _record(name, kernel_s, baseline_s, **extra):
    entry = {
        "kernel_ms": round(kernel_s * 1e3, 4),
        "baseline_ms": round(baseline_s * 1e3, 4),
        "kernel_ops_per_sec": round(1.0 / kernel_s, 2),
        "baseline_ops_per_sec": round(1.0 / baseline_s, 2),
        "speedup": round(baseline_s / kernel_s, 2),
        **extra,
    }
    _results["benchmarks"][name] = entry
    return entry


def test_cold_powerset_compile_speedup():
    """The service-throughput cold path: powerset k=3 under + verification."""
    kernel_options = CompileOptions(
        domain="powerset", k=3, modes=("under",), synth=KERNEL_SYNTH
    )
    baseline_options = CompileOptions(
        domain="powerset", k=3, modes=("under",), synth=BASELINE_SYNTH
    )
    # Warm imports / allocator before timing.
    compile_query("warm-k", NEARBY, SPEC, kernel_options)
    compile_query("warm-b", NEARBY, SPEC, baseline_options)

    tick = iter(range(10**6))
    kernel_s, baseline_s = _paired(
        lambda: compile_query(f"k{next(tick)}", NEARBY, SPEC, kernel_options),
        lambda: compile_query(f"b{next(tick)}", NEARBY, SPEC, baseline_options),
        rounds=9,
    )
    compiled = compile_query("stats", NEARBY, SPEC, kernel_options)
    report = compiled.reports["under"]
    entry = _record(
        "cold_powerset_compile",
        kernel_s,
        baseline_s,
        nodes=report.solver_nodes,
        splits=report.solver_splits,
        vector_boxes=report.vector_boxes,
        fused_rounds=report.fused_rounds,
        probe_fronts=report.probe_fronts,
        front_boxes=report.front_boxes,
        query=NEARBY_SRC,
        secret="UserLoc 400x400",
        k=3,
        target_speedup=5.0,
    )
    print(
        f"\ncold compile: kernel {entry['kernel_ms']:.2f} ms vs baseline "
        f"{entry['baseline_ms']:.2f} ms — {entry['speedup']:.1f}x"
    )
    assert entry["speedup"] >= MIN_COMPILE_SPEEDUP, (
        f"cold-compile speedup regressed to {entry['speedup']:.1f}x "
        f"(floor {MIN_COMPILE_SPEEDUP}x, target 5x)"
    )


def test_cold_interval_compile():
    kernel_options = CompileOptions(domain="interval", synth=KERNEL_SYNTH)
    baseline_options = CompileOptions(domain="interval", synth=BASELINE_SYNTH)
    compile_query("warm-ik", NEARBY, SPEC, kernel_options)
    compile_query("warm-ib", NEARBY, SPEC, baseline_options)
    tick = iter(range(10**6))
    kernel_s, baseline_s = _paired(
        lambda: compile_query(f"ik{next(tick)}", NEARBY, SPEC, kernel_options),
        lambda: compile_query(f"ib{next(tick)}", NEARBY, SPEC, baseline_options),
        rounds=9,
    )
    entry = _record("cold_interval_compile", kernel_s, baseline_s, query=NEARBY_SRC)
    assert entry["speedup"] >= 1.0


def _bench_procedure(name, fn_kernel, fn_baseline, stats):
    kernel_s, baseline_s = _paired(fn_kernel, fn_baseline, rounds=15)
    _record(
        name,
        kernel_s,
        baseline_s,
        nodes=stats.nodes,
        splits=stats.splits,
        vector_boxes=stats.vector_boxes,
    )


def test_decision_procedures():
    """The four procedures on the paper's benchmark queries.

    Every timed call builds a fresh engine on both sides: this is the cold
    cost including lowering (a warm engine's specialization memo would
    reduce repeat calls to dictionary lookups and overstate the win).
    """
    crossing = Box.make((150, 251), (150, 251))

    def legacy(names=NAMES):
        return make_engine(names, False, legacy_splits=True)

    stats = SolverStats()
    decide_forall(NEARBY, crossing, NAMES, stats)
    _bench_procedure(
        "decide_forall_crossing",
        lambda: decide_forall(NEARBY, crossing, NAMES),
        lambda: decide_forall(
            NEARBY, crossing, NAMES, engine=legacy(), vector_threshold=0
        ),
        stats,
    )

    stats = SolverStats()
    decide_exists(NEARBY, SPACE, NAMES, stats)
    _bench_procedure(
        "decide_exists_space",
        lambda: decide_exists(NEARBY, SPACE, NAMES),
        lambda: decide_exists(
            NEARBY, SPACE, NAMES, engine=legacy(), vector_threshold=0
        ),
        stats,
    )

    stats = SolverStats()
    find_true_box(NEARBY, SPACE, NAMES, stats=stats)
    _bench_procedure(
        "find_true_box_space",
        lambda: find_true_box(NEARBY, SPACE, NAMES),
        lambda: find_true_box(
            NEARBY, SPACE, NAMES, engine=legacy(), vector_threshold=0
        ),
        stats,
    )

    stats = SolverStats()
    count_models(NEARBY, SPACE, NAMES, stats)
    _bench_procedure(
        "count_models_space",
        lambda: count_models(NEARBY, SPACE, NAMES),
        # Pre-kernel counting already had grid finishing; keep it for the
        # baseline so the comparison isolates the kernel layer.
        lambda: count_models(NEARBY, SPACE, NAMES, engine=legacy()),
        stats,
    )

    names = BIRTHDAY_SPEC.field_names
    space = Box(BIRTHDAY_SPEC.bounds())
    stats = SolverStats()
    count_models(BIRTHDAY, space, names, stats)
    _bench_procedure(
        "count_models_birthday",
        lambda: count_models(BIRTHDAY, space, names),
        lambda: count_models(BIRTHDAY, space, names, engine=legacy(names)),
        stats,
    )
    # Regression gate for the small-formula fast path: one-shot counts of
    # tiny formulas must no longer lose to the pre-kernel baseline (this
    # entry sat at 0.8x before the interpreter fast path).  The floor is
    # loose — both sides are interpreter walks now, so the honest value
    # is ~1.0x — because sub-100µs timings are noisy.
    entry = _results["benchmarks"]["count_models_birthday"]
    assert entry["speedup"] >= 0.8, (
        f"count_models_birthday regressed to {entry['speedup']:.2f}x"
    )


def test_write_bench_json():
    """Persist the collected measurements (runs last by file order)."""
    assert _results["benchmarks"], "benchmarks did not run"
    payload = {
        "suite": "solver",
        "unit": "milliseconds (median of paired runs)",
        "baseline": (
            "in-process pre-kernel configuration: interpreter engine, "
            "legacy split heuristic, no vectorized decide finishing, "
            "no fused probe fronts, no incremental seeding"
        ),
        **_results,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_PATH}")
    speedup = _results["benchmarks"]["cold_powerset_compile"]["speedup"]
    assert speedup >= MIN_COMPILE_SPEEDUP
