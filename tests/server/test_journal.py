"""RequestJournal: write-ahead discipline, idempotency keys, digests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.journal import (
    JOURNAL_FORMAT_VERSION,
    JournalBackend,
    MemoryJournalBackend,
    RequestJournal,
    chain_digest,
    live_state,
)
from repro.server.store import SQLiteStore
from repro.service.serialize import payload_digest


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    if request.param == "memory":
        return MemoryJournalBackend()
    return SQLiteStore(":memory:")


def test_backends_satisfy_the_protocol(backend):
    assert isinstance(backend, JournalBackend)


def test_begin_execute_ack_roundtrip(backend):
    journal = RequestJournal(backend)
    entry = journal.begin("k1", "downgrade", {"session_id": "u1", "query_name": "q"})
    assert entry.status == "pending" and entry.seq == 1
    assert journal.pending() == [entry]
    digest = journal.ack(entry.seq, {"kind": "downgrade", "authorized": True})
    assert digest == payload_digest({"kind": "downgrade", "authorized": True})
    done = journal.entry("k1")
    assert done.status == "done"
    assert done.outcome_digest == digest
    # Outcome doubles as the recorded response by default.
    assert journal.recorded_response("k1") == {"kind": "downgrade", "authorized": True}
    assert journal.pending() == []


def test_duplicate_key_returns_the_existing_row(backend):
    journal = RequestJournal(backend)
    first = journal.begin("dup", "compile", {"name": "q"})
    journal.ack(first.seq, {"kind": "compile", "name": "q"}, response={"took": 1.5})
    again = journal.begin("dup", "compile", {"name": "q"})
    assert again.seq == first.seq
    assert again.status == "done"
    assert again.response == {"took": 1.5}
    # A pending duplicate also resolves to the one row.
    p1 = journal.begin("open", "open_session", {"session_id": "u"})
    p2 = journal.begin("open", "open_session", {"session_id": "u"})
    assert p1.seq == p2.seq and p2.status == "pending"
    assert len(journal) == 2


def test_begin_many_and_ack_many_batch(backend):
    journal = RequestJournal(backend)
    entries = journal.begin_many(
        [(f"k{i}", "downgrade", {"session_id": f"u{i}"}) for i in range(5)]
    )
    assert [e.seq for e in entries] == [1, 2, 3, 4, 5]
    digests = journal.ack_many(
        [(e.seq, {"kind": "downgrade", "i": i}) for i, e in enumerate(entries)]
    )
    assert digests == [
        payload_digest({"kind": "downgrade", "i": i}) for i in range(5)
    ]
    assert journal.pending() == []
    # Duplicates inside one batch collapse to one row.
    batch = journal.begin_many(
        [("same", "compile", {"name": "a"}), ("same", "compile", {"name": "a"})]
    )
    assert batch[0].seq == batch[1].seq


def test_auto_keys_never_repeat_across_restarts(backend):
    journal = RequestJournal(backend)
    keys = [journal.auto_key("downgrade") for _ in range(3)]
    assert len(set(keys)) == 3
    # Only the last auto key ever hit the journal; a shed request
    # consumed the others without a row.
    journal.begin(keys[-1], "downgrade", {"session_id": "u"})
    rebooted = RequestJournal(backend)
    fresh = rebooted.auto_key("downgrade")
    assert fresh not in keys


def test_audit_digest_chains_done_entries_in_order(backend):
    journal = RequestJournal(backend)
    a = journal.begin("a", "compile", {"name": "qa"})
    b = journal.begin("b", "compile", {"name": "qb"})
    da = journal.ack(a.seq, {"kind": "compile", "name": "qa"})
    db = journal.ack(b.seq, {"kind": "compile", "name": "qb"})
    assert journal.audit_digest() == chain_digest([da, db])
    # Pending entries contribute nothing until acknowledged.
    journal.begin("c", "compile", {"name": "qc"})
    assert journal.audit_digest() == chain_digest([da, db])
    assert chain_digest([da, db]) != chain_digest([db, da])


def test_compact_drops_acknowledged_prefix_only(backend):
    journal = RequestJournal(backend)
    for i in range(4):
        e = journal.begin(f"k{i}", "downgrade", {"i": i})
        if i != 2:
            journal.ack(e.seq, {"kind": "downgrade", "i": i})
    removed = journal.compact()
    assert removed == 3
    remaining = journal.entries()
    assert [e.key for e in remaining] == ["k2"]
    assert remaining[0].status == "pending"
    # Keys of compacted entries lose their dedup record — compaction is
    # for histories whose clients are gone (see OPERATIONS.md).
    assert journal.entry("k0") is None


def test_live_state_folds_compiles_and_sessions(backend):
    journal = RequestJournal(backend)
    ops = [
        ("c1", "compile", {"name": "q", "v": 1}),
        ("s1", "open_session", {"session_id": "u1"}),
        ("s2", "open_session", {"session_id": "u2"}),
        ("c2", "compile", {"name": "q", "v": 2}),
        ("x1", "close_session", {"session_id": "u1"}),
    ]
    for key, kind, payload in ops:
        e = journal.begin(key, kind, payload)
        journal.ack(e.seq, {"kind": kind})
    state = live_state(journal.entries())
    assert state.compiles == {"q": {"name": "q", "v": 2}}  # last wins
    assert list(state.sessions) == ["u2"]


def test_format_version_mismatch_refuses_the_store(tmp_path):
    from repro.server.store import StoreFormatError

    path = tmp_path / "journal.sqlite"
    store = SQLiteStore(path)
    store._execute_write(
        "UPDATE meta SET value = ? WHERE key = ?",
        (str(JOURNAL_FORMAT_VERSION + 1), "journal_format_version"),
    )
    store.close()
    with pytest.raises(StoreFormatError):
        SQLiteStore(path)


def test_ack_with_bounds_lands_both_atomically():
    store = SQLiteStore(":memory:")
    journal = RequestJournal(store)
    entry = journal.begin("k", "downgrade", {"session_id": "u"})
    journal.ack_many(
        [(entry.seq, {"kind": "downgrade", "authorized": True})],
        bounds=[("u", "Loc", {"payload": 1})],
    )
    assert journal.entry("k").status == "done"
    assert [(u, s, p) for u, s, p in store.ledger_bounds()] == [
        ("u", "Loc", {"payload": 1})
    ]
    # A backend without the atomic hook refuses rather than splitting
    # the transaction silently.
    mem = RequestJournal(MemoryJournalBackend())
    pending = mem.begin("k", "downgrade", {})
    with pytest.raises(ValueError):
        mem.ack(pending.seq, {"kind": "downgrade"}, bounds=[("u", "Loc", {})])


def test_audit_spill_persists_to_the_store():
    from repro.service.api import AuditEvent

    store = SQLiteStore(":memory:")
    journal = RequestJournal(store)
    journal.spill_audit(
        [AuditEvent(seq=0, kind="downgrade", data={"session_id": "u"})]
    )
    assert store.audit_spill_count() == 1
    # The memory backend has no spill table; spilling is a silent drop.
    RequestJournal(MemoryJournalBackend()).spill_audit(
        [AuditEvent(seq=0, kind="x", data={})]
    )


# ---------------------------------------------------------------------------
# Idempotency properties
# ---------------------------------------------------------------------------

_DELIVERIES = st.lists(
    st.integers(min_value=0, max_value=4), min_size=1, max_size=25
)


@settings(max_examples=80, deadline=None)
@given(deliveries=_DELIVERIES)
def test_duplicated_reordered_deliveries_keep_one_row_per_key(deliveries):
    """At-least-once delivery, exactly-once rows: any interleaving of
    duplicate deliveries yields one journal row per key, and every
    delivery after the first ack sees the recorded response."""
    journal = RequestJournal(MemoryJournalBackend())
    responses: dict[int, dict] = {}
    for request_id in deliveries:
        key = f"req/{request_id}"
        entry = journal.begin(key, "downgrade", {"request": request_id})
        if entry.status == "done":
            assert entry.response == responses[request_id]
            continue
        if request_id in responses:
            # Redelivered before the first ack: same pending row.
            assert entry.payload == {"request": request_id}
        outcome = {"kind": "downgrade", "request": request_id}
        journal.ack(entry.seq, outcome)
        responses[request_id] = outcome
    assert len(journal) == len(set(deliveries))
    for request_id in set(deliveries):
        assert journal.recorded_response(f"req/{request_id}") == responses[request_id]


@settings(max_examples=40, deadline=None)
@given(
    deliveries=_DELIVERIES,
    data=st.data(),
)
def test_memory_and_sqlite_backends_agree(deliveries, data):
    """Differential: both backends journal identical histories.

    Sequence *values* may differ (SQLite's AUTOINCREMENT burns numbers
    on duplicate-key inserts); the contract is per-key identity, status
    agreement, ordering, and digest-chain equality.
    """
    mem = RequestJournal(MemoryJournalBackend())
    sql = RequestJournal(SQLiteStore(":memory:"))
    for request_id in deliveries:
        key = f"req/{request_id}"
        entries = [j.begin(key, "downgrade", {"request": request_id}) for j in (mem, sql)]
        assert entries[0].status == entries[1].status
        if entries[0].status == "pending" and data.draw(st.booleans()):
            for j, e in zip((mem, sql), entries):
                j.ack(e.seq, {"request": request_id})
    assert mem.audit_digest() == sql.audit_digest()
    assert [e.key for e in mem.entries()] == [e.key for e in sql.entries()]
