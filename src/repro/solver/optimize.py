"""Box optimization: the νZ (Z3 optimizer) substitute.

Two optimization problems arise in section 5.3:

* **Under-approximation** — find a *maximal* box entirely inside the region
  ``phi``, Pareto-balancing the per-dimension widths (``maximize u_i - l_i``
  jointly; the paper prefers 20x20 over 400x1).
* **Over-approximation** — find the *minimal* box containing the region
  (``minimize u_i - l_i``), which is exactly the region's bounding box.

:func:`maximal_box` seeds from a fat all-true sub-box (best-first search)
and grows each face round-robin with doubling step sizes; round-robin
interleaving is what produces Pareto-balanced growth.  The ``lexicographic``
mode (fully exhaust one face before the next) exists for the ablation that
reproduces the degenerate elongated solutions the paper attributes to
single-objective optimization.

:func:`bounding_box` binary-searches each face of the minimal covering box
with exact existence checks, so over-approximations are optimal (when the
time budget suffices).

A soft wall-clock budget mirrors Z3's optimization timeouts: on expiry the
search returns the best box found so far — still *correct* (verification is
separate), merely less precise, exactly like the paper's B4 benchmark.

Every optimizer call builds **one** evaluation engine (compiled kernels by
default, see :mod:`repro.solver.kernels`) and threads it through all of
its probes: the query is lowered once, and the specialization memo is
shared across the doubling/halving probes — which re-decide heavily
overlapping slabs — instead of being rebuilt per ``decide_forall`` call.
Aggregate :class:`~repro.solver.decide.SolverStats` for the whole
optimization come back on the :class:`OptimizeOutcome`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.lang.ast import BoolExpr
from repro.solver.boxes import Box
from repro.solver.decide import (
    SolverStats,
    decide_forall,
    find_model,
    find_true_box,
    make_engine,
)

__all__ = ["OptimizeOptions", "OptimizeOutcome", "maximal_box", "bounding_box"]


@dataclass(frozen=True)
class OptimizeOptions:
    """Tuning knobs for the optimizers.

    ``time_budget`` is a soft per-call limit in seconds (``None`` = no
    limit): growth stops and the current best is returned when exceeded.
    ``mode`` is ``"balanced"`` (round-robin, Pareto-like) or
    ``"lexicographic"`` (ablation A1).  ``use_kernels`` selects the
    compiled-kernel engine (default) or the tree-walking interpreter;
    ``vector_threshold`` caps vectorized small-box finishing (``None`` =
    engine default, ``0`` = pure Python).
    """

    seed_pops: int = 50_000
    mode: str = "balanced"
    time_budget: float | None = 10.0
    use_kernels: bool = True
    vector_threshold: int | None = None
    #: Pre-kernel split heuristic; benchmark baselines only.
    legacy_splits: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("balanced", "lexicographic"):
            raise ValueError(f"unknown mode {self.mode!r}")


@dataclass(frozen=True)
class OptimizeOutcome:
    """An optimization result plus how it terminated."""

    box: Box | None
    timed_out: bool
    proved_empty: bool = False
    #: Aggregate solver counters across every probe of the optimization.
    stats: SolverStats | None = None


class _Deadline:
    def __init__(self, budget: float | None):
        self.expiry = None if budget is None else time.monotonic() + budget
        self.expired = False

    def over(self) -> bool:
        if self.expiry is not None and time.monotonic() > self.expiry:
            self.expired = True
        return self.expired


@dataclass
class _Search:
    """Everything one optimization run threads through its probes."""

    engine: object
    stats: SolverStats
    vector_threshold: int | None
    deadline: _Deadline

    def forall(self, phi: BoolExpr, box: Box, names: Sequence[str]) -> bool:
        return decide_forall(
            phi,
            box,
            names,
            self.stats,
            engine=self.engine,
            vector_threshold=self.vector_threshold,
        )

    def model(self, phi: BoolExpr, box: Box, names: Sequence[str]):
        return find_model(
            phi,
            box,
            names,
            self.stats,
            engine=self.engine,
            vector_threshold=self.vector_threshold,
        )


def _search_for(
    names: Sequence[str], options: OptimizeOptions, engine=None
) -> _Search:
    return _Search(
        engine=engine
        if engine is not None
        else make_engine(
            names, options.use_kernels, legacy_splits=options.legacy_splits
        ),
        stats=SolverStats(),
        vector_threshold=options.vector_threshold,
        deadline=_Deadline(options.time_budget),
    )


def maximal_box(
    phi: BoolExpr,
    space: Box,
    names: Sequence[str],
    options: OptimizeOptions = OptimizeOptions(),
    *,
    engine=None,
) -> OptimizeOutcome:
    """A maximal box inside the region ``{x in space | phi(x)}``.

    Returns ``box=None`` when the region is empty (``proved_empty=True``)
    or when no all-true seed was found within budget.  Passing a shared
    ``engine`` lets a caller amortize one query lowering (and one
    specialization memo) over many optimizer calls.
    """
    search = _search_for(names, options, engine)
    seeded = find_true_box(
        phi,
        space,
        names,
        max_pops=options.seed_pops,
        stats=search.stats,
        engine=search.engine,
        vector_threshold=options.vector_threshold,
    )
    if seeded.box is None:
        if seeded.exhausted:
            return OptimizeOutcome(
                None, timed_out=False, proved_empty=True, stats=search.stats
            )
        # Budgeted search failed; fall back to a point witness if any.
        witness = search.model(phi, space, names)
        if witness is None:
            return OptimizeOutcome(
                None, timed_out=False, proved_empty=True, stats=search.stats
            )
        seed = Box(tuple((x, x) for x in witness))
    else:
        seed = seeded.box

    if options.mode == "balanced":
        grown = _grow_balanced(phi, seed, space, names, search)
    else:
        grown = _grow_lexicographic(phi, seed, space, names, search)
    return OptimizeOutcome(
        grown, timed_out=search.deadline.expired, stats=search.stats
    )


def _slab(box: Box, space: Box, dim: int, side: str, step: int) -> Box | None:
    """The extension slab of ``box`` along one face, clamped to ``space``.

    Returns ``None`` when the face already touches the space boundary.
    """
    lo, hi = box.bounds[dim]
    slo, shi = space.bounds[dim]
    if side == "hi":
        if hi >= shi:
            return None
        return box.with_dim(dim, hi + 1, min(hi + step, shi))
    if lo <= slo:
        return None
    return box.with_dim(dim, max(lo - step, slo), lo - 1)


def _extend(box: Box, slab: Box, dim: int) -> Box:
    """Merge an accepted slab back into the box along ``dim``."""
    lo, hi = box.bounds[dim]
    slo, shi = slab.bounds[dim]
    return box.with_dim(dim, min(lo, slo), max(hi, shi))


def _grow_balanced(
    phi: BoolExpr,
    box: Box,
    space: Box,
    names: Sequence[str],
    search: _Search,
) -> Box:
    """Round-robin doubling growth of every face until all are stuck."""
    faces = [(dim, side) for dim in range(box.arity) for side in ("lo", "hi")]
    steps = {face: 1 for face in faces}
    alive = set(faces)
    while alive and not search.deadline.over():
        for face in faces:
            if face not in alive:
                continue
            dim, side = face
            step = steps[face]
            slab = _slab(box, space, dim, side, step)
            if slab is None:
                alive.discard(face)
                continue
            if search.forall(phi, slab, names):
                box = _extend(box, slab, dim)
                steps[face] = step * 2
            elif step > 1:
                steps[face] = max(step // 2, 1)
            else:
                alive.discard(face)
            if search.deadline.over():
                break
    return box


def _grow_lexicographic(
    phi: BoolExpr,
    box: Box,
    space: Box,
    names: Sequence[str],
    search: _Search,
) -> Box:
    """Exhaust one face completely before touching the next (ablation)."""
    for dim in range(box.arity):
        for side in ("lo", "hi"):
            if search.deadline.over():
                return box
            grown = _max_extension(phi, box, space, names, dim, side, search)
            if grown is not None:
                box = grown
    return box


def _max_extension(
    phi: BoolExpr,
    box: Box,
    space: Box,
    names: Sequence[str],
    dim: int,
    side: str,
    search: _Search,
) -> Box | None:
    """Binary-search the largest valid extension of one face, if any."""
    lo, hi = box.bounds[dim]
    slo, shi = space.bounds[dim]
    limit = shi - hi if side == "hi" else lo - slo
    if limit <= 0:
        return None
    best = 0
    low, high = 1, limit
    while low <= high:
        mid = (low + high) // 2
        slab = _slab(box, space, dim, side, mid)
        assert slab is not None
        if search.forall(phi, slab, names):
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    if best == 0:
        return None
    accepted = _slab(box, space, dim, side, best)
    assert accepted is not None
    return _extend(box, accepted, dim)


def bounding_box(
    phi: BoolExpr,
    space: Box,
    names: Sequence[str],
    options: OptimizeOptions = OptimizeOptions(),
    *,
    engine=None,
) -> OptimizeOutcome:
    """The minimal box covering ``{x in space | phi(x)}``.

    Exact (the optimal over-approximating interval domain): each of the
    ``2n`` faces is found by binary search with exhaustive existence
    checks.  Returns ``box=None`` with ``proved_empty=True`` for an empty
    region.  On budget expiry the not-yet-tightened faces keep their space
    bounds — a sound but looser cover.
    """
    search = _search_for(names, options, engine)
    witness = search.model(phi, space, names)
    if witness is None:
        return OptimizeOutcome(
            None, timed_out=False, proved_empty=True, stats=search.stats
        )

    bounds: list[tuple[int, int]] = []
    for dim in range(space.arity):
        slo, shi = space.bounds[dim]
        if search.deadline.over():
            bounds.append((slo, shi))
            continue
        low = _search_face(phi, space, names, dim, "lo", witness[dim], search)
        high = _search_face(phi, space, names, dim, "hi", witness[dim], search)
        bounds.append((low, high))
    return OptimizeOutcome(
        Box(tuple(bounds)), timed_out=search.deadline.expired, stats=search.stats
    )


def _search_face(
    phi: BoolExpr,
    space: Box,
    names: Sequence[str],
    dim: int,
    side: str,
    witness_coord: int,
    search: _Search,
) -> int:
    """Binary-search the extreme coordinate of the region along one face."""
    slo, shi = space.bounds[dim]
    if side == "lo":
        low, high = slo, witness_coord
        best = witness_coord
        while low <= high and not search.deadline.over():
            mid = (low + high) // 2
            restricted = space.with_dim(dim, low, mid)
            if search.model(phi, restricted, names) is not None:
                best = mid
                high = mid - 1
            else:
                low = mid + 1
        return best if not search.deadline.over() else slo
    low, high = witness_coord, shi
    best = witness_coord
    while low <= high and not search.deadline.over():
        mid = (low + high) // 2
        restricted = space.with_dim(dim, mid, high)
        if search.model(phi, restricted, names) is not None:
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    return best if not search.deadline.over() else shi
