"""Integer box geometry.

A *box* is a product of non-empty integer intervals — the geometric object
underlying both the interval abstract domain ``A_I`` (section 4.3) and the
solver's branch-and-bound search.  This module keeps boxes purely geometric
(no predicates attached) and provides the exact set algebra the powerset
domain needs: intersection, subtraction into disjoint pieces, and exact
union volume.

Boxes are always non-empty by construction; operations that can produce the
empty set return ``None`` or an empty list instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Box",
    "subtract_box",
    "subtract_boxes",
    "disjoint_pieces",
    "union_volume",
    "boxes_are_disjoint",
]

Bounds = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class Box:
    """A non-empty product of integer intervals ``[lo_i, hi_i]``."""

    bounds: Bounds

    def __post_init__(self) -> None:
        if not isinstance(self.bounds, tuple):
            object.__setattr__(self, "bounds", tuple(tuple(b) for b in self.bounds))
        if not self.bounds:
            raise ValueError("a box needs at least one dimension")
        for index, (lo, hi) in enumerate(self.bounds):
            if lo > hi:
                raise ValueError(f"dimension {index}: empty interval [{lo}, {hi}]")

    @classmethod
    def make(cls, *bounds: tuple[int, int]) -> "Box":
        """Build a box from per-dimension ``(lo, hi)`` pairs."""
        return cls(tuple((int(lo), int(hi)) for lo, hi in bounds))

    @classmethod
    def trusted(cls, bounds: Bounds) -> "Box":
        """Build a box from bounds the caller guarantees are valid.

        Skips ``__post_init__`` validation; for hot paths (the solver's
        splitting loop) that derive bounds from an existing box, where
        non-emptiness is structurally guaranteed.
        """
        box = object.__new__(cls)
        object.__setattr__(box, "bounds", bounds)
        return box

    # -- basic geometry ----------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of dimensions."""
        return len(self.bounds)

    def volume(self) -> int:
        """Number of integer points inside the box."""
        result = 1
        for lo, hi in self.bounds:
            result *= hi - lo + 1
        return result

    def widths(self) -> tuple[int, ...]:
        """Per-dimension point counts."""
        return tuple(hi - lo + 1 for lo, hi in self.bounds)

    def is_point(self) -> bool:
        """Whether the box contains exactly one integer point."""
        return all(lo == hi for lo, hi in self.bounds)

    def any_point(self) -> tuple[int, ...]:
        """The centre-most integer point of the box."""
        return tuple((lo + hi) // 2 for lo, hi in self.bounds)

    def contains(self, point: Sequence[int]) -> bool:
        """Point membership."""
        if len(point) != self.arity:
            raise ValueError(
                f"point has {len(point)} coordinates, box has {self.arity}"
            )
        return all(lo <= x <= hi for (lo, hi), x in zip(self.bounds, point))

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` is entirely inside this box."""
        self._check_arity(other)
        return all(
            lo <= olo and ohi <= hi
            for (lo, hi), (olo, ohi) in zip(self.bounds, other.bounds)
        )

    def iter_points(self) -> Iterator[tuple[int, ...]]:
        """Enumerate all points (tests / tiny boxes only)."""

        def rec(index: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            if index == self.arity:
                yield prefix
                return
            lo, hi = self.bounds[index]
            for value in range(lo, hi + 1):
                yield from rec(index + 1, prefix + (value,))

        yield from rec(0, ())

    # -- algebra -------------------------------------------------------------
    def intersect(self, other: "Box") -> "Box | None":
        """Intersection, or ``None`` when the boxes are disjoint."""
        self._check_arity(other)
        bounds: list[tuple[int, int]] = []
        for (alo, ahi), (blo, bhi) in zip(self.bounds, other.bounds):
            lo, hi = max(alo, blo), min(ahi, bhi)
            if lo > hi:
                return None
            bounds.append((lo, hi))
        return Box(tuple(bounds))

    def with_dim(self, dim: int, lo: int, hi: int) -> "Box":
        """A copy with dimension ``dim`` replaced by ``[lo, hi]``."""
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}] for dimension {dim}")
        bounds = list(self.bounds)
        bounds[dim] = (lo, hi)
        return Box(tuple(bounds))

    def split(self, dim: int) -> tuple["Box", "Box"]:
        """Split in half along ``dim`` (which must have width >= 2).

        Halves are structurally non-empty, so construction skips
        validation — this is the solver's hottest box constructor.
        """
        lo, hi = self.bounds[dim]
        if lo == hi:
            raise ValueError(f"cannot split dimension {dim} of width 1")
        mid = (lo + hi) // 2
        low = list(self.bounds)
        high = list(self.bounds)
        low[dim] = (lo, mid)
        high[dim] = (mid + 1, hi)
        return Box.trusted(tuple(low)), Box.trusted(tuple(high))

    def widest_dim(self) -> int:
        """Index of the dimension with the most points (ties: lowest index)."""
        widths = self.widths()
        return widths.index(max(widths))

    def hull(self, other: "Box") -> "Box":
        """Smallest box containing both (interval join, per dimension)."""
        self._check_arity(other)
        return Box(
            tuple(
                (min(alo, blo), max(ahi, bhi))
                for (alo, ahi), (blo, bhi) in zip(self.bounds, other.bounds)
            )
        )

    def _check_arity(self, other: "Box") -> None:
        if other.arity != self.arity:
            raise ValueError(
                f"dimension mismatch: {self.arity} vs {other.arity}"
            )

    def __repr__(self) -> str:
        dims = ", ".join(f"[{lo},{hi}]" for lo, hi in self.bounds)
        return f"Box({dims})"


def subtract_box(box: Box, other: Box) -> list[Box]:
    """``box`` minus ``other`` as a list of pairwise-disjoint boxes.

    The classic n-dimensional carve: walk the dimensions, slicing off the
    parts of ``box`` that fall outside ``other``'s range in that dimension;
    what remains after all dimensions is exactly ``box ∩ other``.
    """
    overlap = box.intersect(other)
    if overlap is None:
        return [box]
    pieces: list[Box] = []
    remaining = list(box.bounds)
    for dim in range(box.arity):
        lo, hi = remaining[dim]
        olo, ohi = overlap.bounds[dim]
        if lo < olo:
            below = list(remaining)
            below[dim] = (lo, olo - 1)
            pieces.append(Box.trusted(tuple(below)))
        if ohi < hi:
            above = list(remaining)
            above[dim] = (ohi + 1, hi)
            pieces.append(Box.trusted(tuple(above)))
        remaining[dim] = (olo, ohi)
    return pieces


def subtract_boxes(keep: Iterable[Box], remove: Iterable[Box]) -> list[Box]:
    """Disjoint decomposition of ``union(keep) - union(remove)``.

    ``keep`` boxes may overlap each other; the result is always a list of
    pairwise-disjoint boxes covering exactly the set difference.
    """
    pieces = disjoint_pieces(keep)
    for hole in remove:
        pieces = [part for piece in pieces for part in subtract_box(piece, hole)]
    return pieces


def disjoint_pieces(boxes: Iterable[Box]) -> list[Box]:
    """Rewrite a list of (possibly overlapping) boxes as disjoint pieces."""
    result: list[Box] = []
    for box in boxes:
        fresh = [box]
        for existing in result:
            fresh = [part for piece in fresh for part in subtract_box(piece, existing)]
            if not fresh:
                break
        result.extend(fresh)
    return result


def union_volume(boxes: Iterable[Box]) -> int:
    """Exact number of integer points in the union of ``boxes``."""
    return sum(piece.volume() for piece in disjoint_pieces(boxes))


def boxes_are_disjoint(boxes: Sequence[Box]) -> bool:
    """Whether no two boxes share a point."""
    for i, a in enumerate(boxes):
        for b in boxes[i + 1 :]:
            if a.intersect(b) is not None:
                return False
    return True
