"""Tests for conditioned beliefs and probabilistic policies."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.lang.ast import var
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.prob.belief import ConditionedBelief
from repro.prob.policies import (
    knowledge_policy_for_vulnerability,
    probability_below,
    vulnerability_below,
)
from repro.solver.boxes import Box
from tests.strategies import bool_exprs

SPEC = SecretSpec.declare("S", x=(-8, 12), y=(0, 15))
SPACE = Box(SPEC.bounds())
NAMES = SPEC.field_names


def _brute_probability(observations, predicate):
    consistent = [
        p
        for p in SPACE.iter_points()
        if all(eval_bool(o, dict(zip(NAMES, p))) for o in observations)
    ]
    if not consistent:
        return None
    hits = sum(
        1 for p in consistent if eval_bool(predicate, dict(zip(NAMES, p)))
    )
    return Fraction(hits, len(consistent))


class TestConditioning:
    def test_unconditioned_support_is_space(self):
        assert ConditionedBelief(SPEC).support_size() == SPACE.volume()

    def test_observe_true_and_false(self):
        query = var("x") >= 0
        assert ConditionedBelief(SPEC).observe(query, True).support_size() == 13 * 16
        assert ConditionedBelief(SPEC).observe(query, False).support_size() == 8 * 16

    def test_observations_accumulate(self):
        belief = (
            ConditionedBelief(SPEC)
            .observe(var("x") >= 0, True)
            .observe(var("y") <= 3, True)
        )
        assert belief.support_size() == 13 * 4

    @given(bool_exprs(NAMES), bool_exprs(NAMES))
    @settings(max_examples=40, deadline=None)
    def test_probability_matches_brute_force(self, observation, predicate):
        belief = ConditionedBelief(SPEC).observe(observation, True)
        expected = _brute_probability([observation], predicate)
        if expected is None:
            with pytest.raises(ValueError):
                belief.probability_of(predicate)
        else:
            assert belief.probability_of(predicate) == expected

    def test_probability_of_secret(self):
        belief = ConditionedBelief(SPEC)
        assert belief.probability_of_secret((0, 0)) == Fraction(1, SPACE.volume())

    def test_vulnerability_is_reciprocal_support(self):
        belief = ConditionedBelief(SPEC).observe(var("x").eq(0), True)
        assert belief.vulnerability() == Fraction(1, 16)

    def test_consistency_check(self):
        belief = ConditionedBelief(SPEC).observe(var("x") >= 0, True)
        assert belief.is_consistent_with((0, 0))
        assert not belief.is_consistent_with((-1, 0))

    def test_contradictory_observations_raise(self):
        belief = (
            ConditionedBelief(SPEC)
            .observe(var("x") >= 5, True)
            .observe(var("x") <= 0, True)
        )
        with pytest.raises(ValueError, match="contradictory"):
            belief.vulnerability()


class TestBeliefPolicies:
    def test_vulnerability_below(self):
        belief = ConditionedBelief(SPEC)
        assert vulnerability_below(Fraction(1, 100))(belief)
        pinned = belief.observe(var("x").eq(0) & var("y").eq(0), True)
        assert not vulnerability_below(Fraction(1, 100))(pinned)

    def test_probability_below(self):
        belief = ConditionedBelief(SPEC)
        policy = probability_below(var("x") >= 0, Fraction(9, 10), label="x>=0")
        assert policy(belief)
        sure = belief.observe(var("x") >= 0, True)
        assert not policy(sure)

    def test_knowledge_policy_bridge(self):
        from repro.domains.box import IntervalDomain

        policy = knowledge_policy_for_vulnerability(Fraction(1, 100))
        assert policy.name.startswith("size > 100")
        big = IntervalDomain(SPEC, Box.make((-8, 12), (0, 8)))  # 189 secrets
        small = IntervalDomain(SPEC, Box.make((0, 9), (0, 9)))  # 100 secrets
        assert policy(big)
        assert not policy(small)
