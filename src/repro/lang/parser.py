"""Recursive-descent parser for the concrete query syntax.

Grammar (loosest binding first)::

    expr     := iff
    iff      := implies ('<=>' implies)*
    implies  := or ('=>' implies)?              -- right associative
    or       := and ('or' and)*
    and      := neg ('and' neg)*
    neg      := 'not' neg | cmp
    cmp      := arith (relop arith | 'in' '{' int-list '}')?
    arith    := term (('+' | '-') term)*
    term     := unary ('*' unary)*              -- one factor must be constant
    unary    := '-' unary | atom
    atom     := INT | IDENT | 'true' | 'false'
              | 'abs' '(' expr ')'
              | 'min' '(' expr ',' expr ')' | 'max' '(' expr ',' expr ')'
              | 'if' expr 'then' expr 'else' expr
              | '(' expr ')'

The parser is *typed*: every production checks that its operands are in the
right syntactic category (integer vs boolean), so ill-typed programs like
``1 + (x < 2)`` are rejected with a position-carrying :class:`ParseError`
rather than producing a nonsensical AST.
"""

from __future__ import annotations

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    CmpOp,
    Expr,
    Iff,
    Implies,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.lexer import Token, tokenize

__all__ = ["ParseError", "parse", "parse_bool", "parse_int"]

_RELOPS = {
    "LE": CmpOp.LE,
    "LT": CmpOp.LT,
    "GE": CmpOp.GE,
    "GT": CmpOp.GT,
    "EQ": CmpOp.EQ,
    "NE": CmpOp.NE,
}


class ParseError(Exception):
    """Raised on syntax or category (type) errors, with source offset."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} at offset {position}")
        self.position = position


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        token = self.accept(kind)
        if token is None:
            raise ParseError(
                f"expected {kind}, found {self.current.kind} "
                f"({self.current.text!r})",
                self.current.position,
            )
        return token

    # -- category checks --------------------------------------------------
    def _require_int(self, expr: Expr, position: int) -> IntExpr:
        if not isinstance(expr, IntExpr):
            raise ParseError("expected an integer expression", position)
        return expr

    def _require_bool(self, expr: Expr, position: int) -> BoolExpr:
        if not isinstance(expr, BoolExpr):
            raise ParseError("expected a boolean expression", position)
        return expr

    # -- grammar ------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_iff()

    def parse_iff(self) -> Expr:
        position = self.current.position
        left = self.parse_implies()
        while self.accept("IFF"):
            right_pos = self.current.position
            right = self.parse_implies()
            left = Iff(
                self._require_bool(left, position),
                self._require_bool(right, right_pos),
            )
        return left

    def parse_implies(self) -> Expr:
        position = self.current.position
        left = self.parse_or()
        if self.accept("IMPLIES"):
            right_pos = self.current.position
            right = self.parse_implies()  # right associative
            return Implies(
                self._require_bool(left, position),
                self._require_bool(right, right_pos),
            )
        return left

    def parse_or(self) -> Expr:
        position = self.current.position
        first = self.parse_and()
        if self.current.kind != "OR":
            return first
        parts = [self._require_bool(first, position)]
        while self.accept("OR"):
            part_pos = self.current.position
            parts.append(self._require_bool(self.parse_and(), part_pos))
        return Or(tuple(parts))

    def parse_and(self) -> Expr:
        position = self.current.position
        first = self.parse_neg()
        if self.current.kind != "AND":
            return first
        parts = [self._require_bool(first, position)]
        while self.accept("AND"):
            part_pos = self.current.position
            parts.append(self._require_bool(self.parse_neg(), part_pos))
        return And(tuple(parts))

    def parse_neg(self) -> Expr:
        if self.accept("NOT"):
            position = self.current.position
            return Not(self._require_bool(self.parse_neg(), position))
        return self.parse_cmp()

    def parse_cmp(self) -> Expr:
        position = self.current.position
        left = self.parse_arith()
        kind = self.current.kind
        if kind in _RELOPS:
            self.advance()
            right_pos = self.current.position
            right = self.parse_arith()
            return Cmp(
                _RELOPS[kind],
                self._require_int(left, position),
                self._require_int(right, right_pos),
            )
        if kind == "IN":
            self.advance()
            values = self.parse_int_set()
            return InSet(self._require_int(left, position), values)
        return left

    def parse_int_set(self) -> frozenset[int]:
        self.expect("LBRACE")
        values: set[int] = set()
        if self.current.kind != "RBRACE":
            values.add(self.parse_set_member())
            while self.accept("COMMA"):
                values.add(self.parse_set_member())
        self.expect("RBRACE")
        return frozenset(values)

    def parse_set_member(self) -> int:
        sign = -1 if self.accept("MINUS") else 1
        token = self.expect("INT")
        return sign * int(token.text)

    def parse_arith(self) -> Expr:
        position = self.current.position
        left = self.parse_term()
        while self.current.kind in ("PLUS", "MINUS"):
            op = self.advance().kind
            right_pos = self.current.position
            right = self._require_int(self.parse_term(), right_pos)
            left_int = self._require_int(left, position)
            left = Add(left_int, right) if op == "PLUS" else Sub(left_int, right)
        return left

    def parse_term(self) -> Expr:
        position = self.current.position
        left = self.parse_unary()
        while self.current.kind == "STAR":
            self.advance()
            right_pos = self.current.position
            right = self._require_int(self.parse_unary(), right_pos)
            left_int = self._require_int(left, position)
            left = self._make_scale(left_int, right, position)
        return left

    def _make_scale(self, left: IntExpr, right: IntExpr, position: int) -> IntExpr:
        # Linearity: one multiplicand must be a (possibly negated) constant.
        left_const = _constant_of(left)
        right_const = _constant_of(right)
        if left_const is not None:
            return Scale(left_const, right)
        if right_const is not None:
            return Scale(right_const, left)
        raise ParseError(
            "non-linear multiplication: one side of '*' must be a constant",
            position,
        )

    def parse_unary(self) -> Expr:
        if self.accept("MINUS"):
            position = self.current.position
            return Neg(self._require_int(self.parse_unary(), position))
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.current
        if self.accept("INT"):
            return Lit(int(token.text))
        if self.accept("IDENT"):
            return Var(token.text)
        if self.accept("TRUE"):
            return BoolLit(True)
        if self.accept("FALSE"):
            return BoolLit(False)
        if self.accept("ABS"):
            self.expect("LPAREN")
            position = self.current.position
            arg = self._require_int(self.parse_expr(), position)
            self.expect("RPAREN")
            return Abs(arg)
        if token.kind in ("MIN", "MAX"):
            self.advance()
            ctor = Min if token.kind == "MIN" else Max
            self.expect("LPAREN")
            pos_a = self.current.position
            a = self._require_int(self.parse_expr(), pos_a)
            self.expect("COMMA")
            pos_b = self.current.position
            b = self._require_int(self.parse_expr(), pos_b)
            self.expect("RPAREN")
            return ctor(a, b)
        if self.accept("IF"):
            # Branches parse at arithmetic level: a trailing comparison
            # after ``else`` applies to the whole conditional, so
            # ``if c then a else b <= 5`` reads ``(if c then a else b) <= 5``.
            pos_c = self.current.position
            cond = self._require_bool(self.parse_expr(), pos_c)
            self.expect("THEN")
            pos_t = self.current.position
            then_branch = self._require_int(self.parse_arith(), pos_t)
            self.expect("ELSE")
            pos_e = self.current.position
            else_branch = self._require_int(self.parse_arith(), pos_e)
            return IntIte(cond, then_branch, else_branch)
        if self.accept("LPAREN"):
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner
        raise ParseError(
            f"unexpected token {token.kind} ({token.text!r})", token.position
        )


def _constant_of(expr: IntExpr) -> int | None:
    """The integer value of a literal/negated-literal expression, if any."""
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Neg) and isinstance(expr.arg, Lit):
        return -expr.arg.value
    return None


def parse(source: str) -> Expr:
    """Parse a full expression (integer- or boolean-valued)."""
    parser = _Parser(source)
    expr = parser.parse_expr()
    if parser.current.kind != "EOF":
        raise ParseError(
            f"trailing input starting with {parser.current.text!r}",
            parser.current.position,
        )
    return expr


def parse_bool(source: str) -> BoolExpr:
    """Parse a boolean query; the section 5.1 entry point."""
    expr = parse(source)
    if not isinstance(expr, BoolExpr):
        raise ParseError("expected a boolean query, got an integer expression", 0)
    return expr


def parse_int(source: str) -> IntExpr:
    """Parse an integer expression."""
    expr = parse(source)
    if not isinstance(expr, IntExpr):
        raise ParseError("expected an integer expression, got a boolean", 0)
    return expr
