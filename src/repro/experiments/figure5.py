"""Experiments E2/E3 — Figure 5: ind.-set synthesis and verification.

For every benchmark and both approximation directions this driver
synthesizes the (True, False) ind.-set pair, verifies it against its
Figure 4 refinement spec, and reports the paper's four column groups:

* **Size** — ``true_size / false_size`` of the synthesized ind. sets;
* **% diff** — percentage gap from the exact ind. sets of Table 1
  (0 means the synthesis is exact);
* **Verif. time** — median ± SIQR seconds for the machine-check pass;
* **Synth. time** — median ± SIQR seconds for synthesis.

``--domain interval`` reproduces Figure 5a, ``--domain powerset --k 3``
Figure 5b.  The paper measures 11 runs; the default here is 3 (override
with ``--runs 11`` for the full protocol — results are deterministic, the
repetition only stabilizes timings).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.benchsuite.groundtruth import GroundTruth, ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS, BenchmarkProblem
from repro.core.plugin import CompiledQuery, CompileOptions, compile_query
from repro.core.synth import SynthOptions
from repro.experiments.report import TextTable, fmt_pct, fmt_size, fmt_timing

__all__ = [
    "ApproxMeasurement",
    "Figure5Row",
    "measure_benchmark",
    "run_figure5",
    "render_figure5",
    "main",
]

DEFAULT_BENCH_IDS = ("B1", "B2", "B3", "B4", "B5")


@dataclass(frozen=True)
class ApproxMeasurement:
    """One benchmark x one approximation direction."""

    mode: str
    true_size: int
    false_size: int
    true_pct_diff: float
    false_pct_diff: float
    verify_times: tuple[float, ...]
    synth_times: tuple[float, ...]
    verified: bool
    timed_out: bool


@dataclass(frozen=True)
class Figure5Row:
    """All measurements for one benchmark."""

    problem: BenchmarkProblem
    truth: GroundTruth
    under: ApproxMeasurement
    over: ApproxMeasurement


def _pct_diff(approx_size: int, exact_size: int, mode: str) -> float:
    """Distance from ground truth, in percent (0 = exact).

    Under-approximations are smaller than exact, over-approximations
    larger; both normalize by the exact size, like the paper.
    """
    if exact_size == 0:
        return 0.0 if approx_size == 0 else float("inf")
    if mode == "under":
        return (exact_size - approx_size) / exact_size * 100.0
    return (approx_size - exact_size) / exact_size * 100.0


def measure_benchmark(
    problem: BenchmarkProblem,
    truth: GroundTruth,
    *,
    domain: str,
    k: int,
    runs: int,
    synth: SynthOptions = SynthOptions(),
) -> Figure5Row:
    """Synthesize + verify one benchmark ``runs`` times; collect stats."""
    options = CompileOptions(domain=domain, k=k, modes=("under", "over"), synth=synth)
    compiled: CompiledQuery | None = None
    verify_times: dict[str, list[float]] = {"under": [], "over": []}
    synth_times: dict[str, list[float]] = {"under": [], "over": []}
    for _ in range(max(1, runs)):
        compiled = compile_query(problem.bench_id, problem.query, problem.secret, options)
        for mode in ("under", "over"):
            verify_times[mode].append(compiled.reports[mode].verify_time)
            synth_times[mode].append(compiled.reports[mode].synth_time)
    assert compiled is not None

    measurements = {}
    for mode in ("under", "over"):
        indset = compiled.qinfo.under_indset if mode == "under" else compiled.qinfo.over_indset
        assert indset is not None
        true_size = indset[0].size()
        false_size = indset[1].size()
        measurements[mode] = ApproxMeasurement(
            mode=mode,
            true_size=true_size,
            false_size=false_size,
            true_pct_diff=_pct_diff(true_size, truth.true_size, mode),
            false_pct_diff=_pct_diff(false_size, truth.false_size, mode),
            verify_times=tuple(verify_times[mode]),
            synth_times=tuple(synth_times[mode]),
            verified=compiled.reports[mode].verified,
            timed_out=compiled.reports[mode].timed_out,
        )
    return Figure5Row(problem, truth, measurements["under"], measurements["over"])


def run_figure5(
    *,
    domain: str,
    k: int = 3,
    runs: int = 3,
    bench_ids: tuple[str, ...] = DEFAULT_BENCH_IDS,
    synth: SynthOptions = SynthOptions(),
) -> list[Figure5Row]:
    """Measure all requested benchmarks."""
    rows = []
    for bench_id in bench_ids:
        problem = ALL_BENCHMARKS[bench_id]
        truth = ground_truth(problem)
        rows.append(
            measure_benchmark(problem, truth, domain=domain, k=k, runs=runs, synth=synth)
        )
    return rows


def _measurement_cells(m: ApproxMeasurement) -> list[str]:
    return [
        f"{fmt_size(m.true_size)} / {fmt_size(m.false_size)}",
        f"{fmt_pct(m.true_pct_diff)} / {fmt_pct(m.false_pct_diff)}",
        fmt_timing(m.verify_times),
        fmt_timing(m.synth_times),
        "yes" if m.verified else "NO",
    ]


def render_figure5(rows: list[Figure5Row]) -> str:
    """Both half-tables (under / over) in the paper's column layout."""
    sections = []
    for mode in ("under", "over"):
        table = TextTable(
            headers=["#", "Size", "% diff", "Verif. time", "Synth. time", "Verified"],
            rows=[
                [row.problem.bench_id]
                + _measurement_cells(row.under if mode == "under" else row.over)
                for row in rows
            ],
        )
        title = f"{mode.capitalize()}-approximation"
        sections.append(f"{title}\n{table.render()}")
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Reproduce Figure 5")
    parser.add_argument("--domain", choices=("interval", "powerset"), default="interval")
    parser.add_argument("--k", type=int, default=3, help="powerset size")
    parser.add_argument("--runs", type=int, default=3, help="timing repetitions")
    parser.add_argument(
        "--bench",
        nargs="*",
        default=list(DEFAULT_BENCH_IDS),
        help="benchmark ids (default: all)",
    )
    args = parser.parse_args(argv)
    label = (
        "Figure 5a (interval abstract domain)"
        if args.domain == "interval"
        else f"Figure 5b (powersets of intervals, k={args.k})"
    )
    rows = run_figure5(
        domain=args.domain, k=args.k, runs=args.runs, bench_ids=tuple(args.bench)
    )
    print(label)
    print(render_figure5(rows))


if __name__ == "__main__":
    main()
