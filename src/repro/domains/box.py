"""The interval abstract domain ``A_I`` (paper section 4.3).

An :class:`IntervalDomain` abstracts a multi-integer secret by one interval
per field: geometrically, an axis-aligned integer box.  The paper's three
constructors map as follows:

* ``A_I dom pos neg`` — a non-empty box (``box`` attribute);
* ``⊤_I``            — the full secret space (still just a box here, since
  every secret type has explicit global bounds);
* ``⊥_I``            — the empty domain (``box is None``).

The ``pos``/``neg`` proof terms of the Haskell encoding have no run-time
content; their verification role is played by
:meth:`member_formula` + :mod:`repro.refine.checker`, which machine-check
the same facts the Liquid Haskell proofs establish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lang.ast import BoolExpr, BoolLit
from repro.lang.secrets import SecretSpec, SecretValue
from repro.domains.base import AbstractDomain
from repro.domains.interval import AInt
from repro.solver import vectoreval
from repro.solver.boxes import Box
from repro.solver.regions import box_formula

__all__ = [
    "IntervalDomain",
    "stack_intervals",
    "unstack_intervals",
    "intersect_stacked",
]

#: Exact integer sizes stop fitting in int64 products somewhere above
#: 2^62 points; spaces at least this large keep their sizes in pure
#: Python (``Box.volume``) instead of a vectorized ``prod``.
_SAFE_SIZE_LIMIT = 1 << 62


@dataclass(frozen=True)
class IntervalDomain(AbstractDomain):
    """A box of secrets (``A_I``), possibly empty (``box is None``)."""

    spec: SecretSpec
    box: Box | None

    def __post_init__(self) -> None:
        if self.box is not None:
            if self.box.arity != self.spec.arity:
                raise ValueError(
                    f"box arity {self.box.arity} != secret arity "
                    f"{self.spec.arity}"
                )
            space = Box(self.spec.bounds())
            if not space.contains_box(self.box):
                raise ValueError(
                    f"box {self.box} exceeds the global bounds of "
                    f"{self.spec.name!r}"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def top(cls, spec: SecretSpec) -> "IntervalDomain":
        """The full secret space (the paper's ``⊤_I``)."""
        return cls(spec, Box(spec.bounds()))

    @classmethod
    def bottom(cls, spec: SecretSpec) -> "IntervalDomain":
        """The empty domain (the paper's ``⊥_I``)."""
        return cls(spec, None)

    @classmethod
    def from_aints(cls, spec: SecretSpec, intervals: Iterable[AInt]) -> "IntervalDomain":
        """Build from per-field ``AInt``s, the paper's ``A [AInt ...]``."""
        pairs = tuple(interval.as_pair() for interval in intervals)
        if len(pairs) != spec.arity:
            raise ValueError(
                f"{spec.name!r} has {spec.arity} fields, got {len(pairs)} intervals"
            )
        return cls(spec, Box(pairs))

    def aints(self) -> tuple[AInt, ...]:
        """Per-field intervals (raises on the empty domain)."""
        if self.box is None:
            raise ValueError("the empty domain has no intervals")
        return tuple(AInt(lo, hi) for lo, hi in self.box.bounds)

    # -- AbstractDomain methods ---------------------------------------------
    def contains(self, secret: SecretValue) -> bool:
        if self.box is None:
            return False
        point = self.spec.validate_value(secret)
        return self.box.contains(point)

    def is_subset(self, other: AbstractDomain) -> bool:
        self._check_same_spec(other)
        if self.box is None:
            return True
        if isinstance(other, IntervalDomain):
            if other.box is None:
                return False
            return other.box.contains_box(self.box)
        # Generic fallback via the other domain's geometry.
        from repro.domains.powerset import PowersetDomain

        return PowersetDomain.from_interval(self).is_subset(other)

    def intersect(self, other: AbstractDomain) -> "IntervalDomain":
        self._check_same_spec(other)
        if not isinstance(other, IntervalDomain):
            raise TypeError(
                "IntervalDomain can only intersect IntervalDomain; "
                "lift to PowersetDomain for mixed intersections"
            )
        if self.box is None or other.box is None:
            return IntervalDomain.bottom(self.spec)
        return IntervalDomain(self.spec, self.box.intersect(other.box))

    def size(self) -> int:
        cached = self.__dict__.get("_size_cache")
        if cached is None:
            cached = 0 if self.box is None else self.box.volume()
            object.__setattr__(self, "_size_cache", cached)
        return cached

    def is_empty(self) -> bool:
        return self.box is None

    def member_formula(self) -> BoolExpr:
        if self.box is None:
            return BoolLit(False)
        return box_formula(self.box, self.spec.field_names)

    # -- conveniences ------------------------------------------------------
    def boxes(self) -> Sequence[Box]:
        """The domain as a list of disjoint boxes (empty list for ⊥)."""
        return [] if self.box is None else [self.box]

    def __repr__(self) -> str:
        if self.box is None:
            return f"IntervalDomain({self.spec.name}, ⊥)"
        dims = ", ".join(
            f"{name}∈[{lo},{hi}]"
            for name, (lo, hi) in zip(self.spec.field_names, self.box.bounds)
        )
        return f"IntervalDomain({self.spec.name}, {dims})"


# ---------------------------------------------------------------------------
# Tensor codec: fleets of interval domains as lo/hi arrays
# ---------------------------------------------------------------------------


def stack_intervals(domains: Sequence[IntervalDomain]) -> tuple:
    """Encode many interval domains as ``(lo, hi)`` int64 arrays.

    Both arrays have shape ``[n, arity]``; an empty domain becomes the
    canonical empty row ``lo=1, hi=0`` (any per-dimension ``lo > hi``
    decodes back to ⊥).  This is the SoA form one broadcasted
    intersection runs on — the interval counterpart of the stacked
    fronts in :func:`repro.solver.vectoreval.make_stacked_grids`.
    """
    np = vectoreval.require_numpy()
    count = len(domains)
    arity = domains[0].spec.arity if count else 0
    lo = np.empty((count, arity), dtype=np.int64)
    hi = np.empty((count, arity), dtype=np.int64)
    for row, domain in enumerate(domains):
        if domain.box is None:
            lo[row] = 1
            hi[row] = 0
        else:
            bounds = domain.box.bounds
            lo[row] = [b[0] for b in bounds]
            hi[row] = [b[1] for b in bounds]
    return lo, hi


def unstack_intervals(spec: SecretSpec, lo, hi) -> list[IntervalDomain]:
    """Decode ``(lo, hi)`` arrays back to interval domains.

    Rows with any ``lo > hi`` decode to ⊥ — exactly the emptiness rule
    ``Box.intersect`` applies — so a stacked intersection round-trips to
    the same domains the scalar path builds.
    """
    out: list[IntervalDomain] = []
    for row_lo, row_hi in zip(lo.tolist(), hi.tolist()):
        if any(lo_d > hi_d for lo_d, hi_d in zip(row_lo, row_hi)):
            out.append(IntervalDomain(spec, None))
        else:
            out.append(IntervalDomain(spec, Box(tuple(zip(row_lo, row_hi)))))
    return out


def intersect_stacked(
    priors: Sequence[IntervalDomain], other: IntervalDomain
) -> list[IntervalDomain]:
    """Intersect many priors with one domain in a single broadcast.

    Bit-identical to ``[prior.intersect(other) for prior in priors]``:
    the clamped bounds, the emptiness rule, and the resulting objects'
    equality all match the scalar path.  Sizes are computed in the same
    pass (one vectorized product) and pinned on the results whenever the
    space is small enough for exact int64 products.
    """
    np = vectoreval.require_numpy()
    if not priors:
        return []
    spec = other.spec
    if other.box is None:
        bottom = IntervalDomain.bottom(spec)
        return [bottom] * len(priors)
    lo, hi = stack_intervals(priors)
    np.maximum(lo, np.asarray([b[0] for b in other.box.bounds]), out=lo)
    np.minimum(hi, np.asarray([b[1] for b in other.box.bounds]), out=hi)
    out = unstack_intervals(spec, lo, hi)
    if spec.space_size() < _SAFE_SIZE_LIMIT:
        widths = np.clip(hi - lo + 1, 0, None)
        empty = (widths == 0).any(axis=1)
        sizes = np.where(empty, 0, widths.prod(axis=1)).tolist()
        for domain, size in zip(out, sizes):
            object.__setattr__(domain, "_size_cache", size)
    return out
