"""Deterministic replay of a request journal — the conformance check.

A journaled :class:`~repro.server.gateway.DeclassificationServer`
appends every state-changing request before executing it and digests a
*deterministic* outcome encoding after the durable fold
(:mod:`repro.server.journal`).  This module closes the loop: a
:class:`ReplaySession` re-executes that history against a fresh,
unjournaled twin — inline shards, no wall clock, no process pools — and
checks that every decision comes out **bit-identical**:

* each acknowledged entry's re-executed outcome must digest to exactly
  its recorded ``outcome_digest`` (a mismatch is a
  :class:`ReplayDivergence`, pinpointed by sequence number);
* the chained digest over the replayed history must equal the chain over
  the recorded one — the journal's tamper-evident
  :meth:`~repro.server.journal.RequestJournal.audit_digest`;
* refusals (unauthorized downgrades) are surfaced in order, so a
  post-incident review can see *which* requests the budget floor
  rejected and confirm the replayed run refuses the very same ones;
* trace trees are part of the contract: the twin derives each
  downgrade's trace id from the entry's key and sequence number —
  exactly as the recorded process did — and the report carries the
  digest over its canonical trees
  (:meth:`~repro.obs.trace.Tracer.digest`).  Pass the source gateway's
  ``hub.tracer.digest()`` as ``trace_digest`` and ``conforms`` also
  asserts the replayed trees are byte-identical to the recorded ones.

Restart boundaries are part of the history: each ``configure`` entry
marks a process generation, and replay rebuilds a fresh server there —
re-registering the then-live queries and re-opening the then-live
sessions — while the ledger persists on one shared in-memory store, just
as the real store survives real restarts.  A journal recorded across N
crashes therefore replays as N generations converging on one ledger.

Pending entries (journaled but never acknowledged — the crash windows)
carry no recorded digest to compare against; replay applies them by
default, mirroring what
:meth:`~repro.server.gateway.DeclassificationServer.recover_from_journal`
does on a real boot, and counts them separately.

Replay is deliberately dependency-free beyond the runtime itself: feed
it a :class:`~repro.server.journal.RequestJournal`, any backend, or a
plain list of entries (e.g. decoded from a journal backup), and call
:func:`replay_journal` — or :meth:`ReplaySession.run` from async code.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.plugin import CompileOptions
from repro.obs.trace import Tracer
from repro.server.gateway import (
    DeclassificationServer,
    ServerConfig,
    _configure_outcome,
)
from repro.server.journal import (
    JournalBackend,
    JournalEntry,
    RequestJournal,
    chain_digest,
)
from repro.server.ledger import DecayPolicy
from repro.server.store import SQLiteStore
from repro.service.serialize import (
    options_from_json,
    payload_digest,
    policy_from_json,
)

__all__ = [
    "ReplayDivergence",
    "ReplayRefusal",
    "ReplayReport",
    "ReplaySession",
    "replay_journal",
]


@dataclass(frozen=True)
class ReplayDivergence:
    """One acknowledged entry whose re-execution digested differently."""

    seq: int
    kind: str
    key: str
    recorded: str
    actual: str


@dataclass(frozen=True)
class ReplayRefusal:
    """One unauthorized downgrade observed during replay, in order."""

    seq: int
    session_id: str
    query_name: str
    reason: str


@dataclass(frozen=True)
class ReplayReport:
    """What a full replay established about a journal.

    ``conforms`` is the headline: every acknowledged outcome re-executed
    bit-identically *and* the chained digests match.  The rest is the
    evidence an operator (or the conformance test) drills into.
    """

    entries: int
    replayed: int
    matched: int
    pending_applied: int
    pending_skipped: int
    restarts: int
    divergences: tuple[ReplayDivergence, ...] = ()
    refusals: tuple[ReplayRefusal, ...] = ()
    recorded_digest: str = ""
    replayed_digest: str = ""
    recorded_trace_digest: str = ""
    replayed_trace_digest: str = ""

    @property
    def conforms(self) -> bool:
        """True when the replayed history is bit-identical to the record.

        Covers outcomes (per-entry digests + chained digest) and, when a
        recorded trace digest was supplied, the canonical trace trees.
        """
        return (
            not self.divergences
            and self.recorded_digest == self.replayed_digest
            and (
                not self.recorded_trace_digest
                or self.recorded_trace_digest == self.replayed_trace_digest
            )
        )


@dataclass
class _Generation:
    """Live state carried across a restart boundary during replay."""

    compiles: dict[str, dict[str, Any]] = field(default_factory=dict)
    sessions: dict[str, dict[str, Any]] = field(default_factory=dict)


class ReplaySession:
    """Re-execute a journal against a fresh twin and compare outcomes.

    The twin is built from each ``configure`` entry's payload — the same
    policies, floor, decay, mode, and options the recorded process ran
    with — but always inline and unjournaled: replay must be free of
    process pools, timers, and the journal itself, so the only thing
    that can vary is the decision logic under test.
    """

    def __init__(
        self,
        source: RequestJournal | JournalBackend | Sequence[JournalEntry],
        *,
        apply_pending: bool = True,
        trace_digest: str | None = None,
    ):
        if isinstance(source, RequestJournal):
            entries: Iterable[JournalEntry] = source.entries()
        elif isinstance(source, JournalBackend):
            entries = RequestJournal(source).entries()
        else:
            entries = source
        self.entries = sorted(entries, key=lambda e: e.seq)
        self.apply_pending = apply_pending
        self.trace_digest = trace_digest
        # Accumulates every generation's spans; sized so no replayed
        # trace is evicted mid-run (one trace per entry is an upper
        # bound), and exposed so tests can diff individual trees.
        self.tracer = Tracer(capacity=max(1024, len(self.entries) + 1))
        if self.entries and self.entries[0].kind != "configure":
            raise ValueError(
                "journal does not start with a configure entry; "
                "replay cannot reconstruct the server it recorded"
            )

    async def run(self) -> ReplayReport:
        """Replay every entry; returns the conformance report."""
        store = SQLiteStore(":memory:")
        state = _Generation()
        server: DeclassificationServer | None = None
        recorded: list[str] = []
        replayed: list[str] = []
        divergences: list[ReplayDivergence] = []
        refusals: list[ReplayRefusal] = []
        counts = {"replayed": 0, "matched": 0, "applied": 0, "skipped": 0}
        restarts = -1  # the first configure entry is boot, not a restart

        for index, entry in enumerate(self.entries):
            if entry.kind == "configure":
                if server is not None:
                    self._collect_spans(server)
                    server.shutdown()
                server = await self._boot(entry.payload, store, state)
                # Mirror recovery's knowledge refold: the recorded
                # process rebuilt each live session's knowledge from the
                # acked authorized history when it booted, so the twin
                # must too, or post-restart downgrades diverge.
                server._refold_knowledge(self.entries[:index], state)
                restarts += 1
                actual: dict[str, Any] | None = _configure_outcome(entry.payload)
            elif server is None:  # pragma: no cover - guarded in __init__
                raise ValueError("entry precedes the first configure entry")
            elif entry.status == "pending" and not self.apply_pending:
                counts["skipped"] += 1
                continue
            else:
                try:
                    actual = await server.apply_entry(
                        entry.kind,
                        entry.payload,
                        idempotency_key=entry.key,
                        trace_seq=entry.seq,
                    )
                except (ValueError, KeyError) as exc:
                    actual = {"kind": "error", "error": type(exc).__name__}
            self._track(state, entry)
            if entry.kind == "downgrade" and actual is not None:
                if actual.get("authorized") is False:
                    refusals.append(
                        ReplayRefusal(
                            seq=entry.seq,
                            session_id=entry.payload.get("session_id", ""),
                            query_name=entry.payload.get("query_name", ""),
                            reason=str(actual.get("reason", "")),
                        )
                    )
            digest = payload_digest(actual)
            if entry.status == "done":
                counts["replayed"] += 1
                recorded.append(entry.outcome_digest or "")
                replayed.append(digest)
                if digest == entry.outcome_digest:
                    counts["matched"] += 1
                else:
                    divergences.append(
                        ReplayDivergence(
                            seq=entry.seq,
                            kind=entry.kind,
                            key=entry.key,
                            recorded=entry.outcome_digest or "",
                            actual=digest,
                        )
                    )
            else:
                counts["applied"] += 1

        if server is not None:
            self._collect_spans(server)
            server.shutdown()
        return ReplayReport(
            entries=len(self.entries),
            replayed=counts["replayed"],
            matched=counts["matched"],
            pending_applied=counts["applied"],
            pending_skipped=counts["skipped"],
            restarts=max(restarts, 0),
            divergences=tuple(divergences),
            refusals=tuple(refusals),
            recorded_digest=chain_digest(recorded),
            replayed_digest=chain_digest(replayed),
            recorded_trace_digest=self.trace_digest or "",
            replayed_trace_digest=self.tracer.digest(),
        )

    def _collect_spans(self, server: DeclassificationServer) -> None:
        """Fold one generation's spans into the session-wide tracer.

        Each generation's twin has its own hub; the conformance digest
        is over the whole history, so spans accumulate here before the
        generation is shut down.
        """
        tracer = server.hub.tracer
        for trace_id in tracer.trace_ids():
            self.tracer.absorb(span.to_json() for span in tracer.spans(trace_id))

    async def _boot(
        self,
        payload: dict[str, Any],
        store: SQLiteStore,
        state: _Generation,
    ) -> DeclassificationServer:
        """Build one process generation's twin and rehydrate live state.

        The store is shared across generations — exactly like the real
        SQLite file surviving a crash — so ledger bounds recorded before
        a restart keep constraining downgrades after it.
        """
        server = DeclassificationServer(
            policy_from_json(payload["policy"]),
            budget_floor=(
                None
                if payload["floor"] is None
                else policy_from_json(payload["floor"])
            ),
            budget_decay=(
                None
                if payload["decay"] is None
                else DecayPolicy.from_json(payload["decay"])
            ),
            store=store,
            options=(
                CompileOptions()
                if payload["options"] is None
                else options_from_json(payload["options"])
            ),
            config=ServerConfig(
                inline_compiles=True,
                inline_serving=True,
                serving_shards=0,
                mode=payload["mode"],
                check_both=payload["check_both"],
            ),
        )
        for compile_payload in state.compiles.values():
            await server.apply_entry("compile", compile_payload)
        for session_payload in state.sessions.values():
            await server.apply_entry("open_session", session_payload)
        return server

    @staticmethod
    def _track(state: _Generation, entry: JournalEntry) -> None:
        """Fold one entry into the live state a restart must rebuild."""
        if entry.kind == "compile":
            state.compiles[entry.payload["name"]] = entry.payload
        elif entry.kind == "open_session":
            state.sessions[entry.payload["session_id"]] = entry.payload
        elif entry.kind == "close_session":
            state.sessions.pop(entry.payload.get("session_id"), None)


def replay_journal(
    source: RequestJournal | JournalBackend | Sequence[JournalEntry],
    *,
    apply_pending: bool = True,
    trace_digest: str | None = None,
) -> ReplayReport:
    """Synchronous one-call replay (wraps :meth:`ReplaySession.run`)."""
    return asyncio.run(
        ReplaySession(
            source, apply_pending=apply_pending, trace_digest=trace_digest
        ).run()
    )
