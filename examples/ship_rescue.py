#!/usr/bin/env python3
"""Coordinating a rescue without revealing the ship (benchmark B2).

An island authority asks a commercial ship a sequence of questions —
"can you aid the island at (x, y)?" — which leak the ship's position and
capacity.  The ship's operator enforces a declassification budget, and
mid-scenario the authority escalates to a *stricter* policy; the dynamic
layer audits already-leaked knowledge before accepting the switch.

Also demonstrates the k-ary extension: a coarse "capacity band" query
with three outputs, one verified ind. set per output.

Run:  python examples/ship_rescue.py
"""

from repro import (
    CompileOptions,
    IntervalDomain,
    ProtectedSecret,
    QueryRegistry,
    SecureRuntime,
    SecretSpec,
    parse_bool,
    size_above,
)
from repro.core.kary import compile_kary_query
from repro.lang.parser import parse_int
from repro.monad.anosy import AnosyT
from repro.monad.dynamic import DynamicAnosy


def main() -> None:
    ship = SecretSpec.declare("Ship", capacity=(0, 99), x=(0, 502), y=(0, 502))
    secret_ship = ProtectedSecret.seal(ship, ship.make(capacity=70, x=180, y=240))

    registry = QueryRegistry()
    options = CompileOptions(domain="powerset", k=3, modes=("under",))
    islands = [(200, 200), (150, 260), (320, 100)]
    for index, (ix, iy) in enumerate(islands):
        query = parse_bool(
            f"abs(x - {ix}) + abs(y - {iy}) <= 100 and capacity >= 50"
        )
        registry.compile_and_register(f"can_aid_{index}", query, ship, options)

    session = DynamicAnosy(AnosyT(SecureRuntime(), size_above(1000), registry))
    print(f"initial policy: {session.current_policy.name}")

    for index in range(len(islands)):
        name = f"can_aid_{index}"
        decision = session.try_downgrade(secret_ship, name)
        knowledge = session.session.knowledge_of(secret_ship)
        size = knowledge.size() if knowledge else "-"
        print(f"  {name}: authorized={decision.authorized} "
              f"answer={decision.response} knowledge={size}")
        if index == 0:
            # The authority escalates: at least 100k candidate states must remain.
            switch = session.switch_policy(size_above(100_000))
            print(
                f"  policy switch to '{size_above(100_000).name}': "
                f"accepted={switch.accepted} "
                f"(violating secrets: {len(switch.violations)})"
            )

    # -- The k-ary extension: declassify a capacity band, not a bit -------------
    print("\nk-ary query: capacity band (0: <40, 1: 40..79, 2: >=80)")
    band = parse_int(
        "if capacity >= 80 then 2 else (if capacity >= 40 then 1 else 0)"
    )
    compiled = compile_kary_query("capacity_band", band, ship)
    print(f"  outputs: {compiled.qinfo.outputs}, all verified: {compiled.verified}")
    observed = compiled.qinfo.run(secret_ship.unprotect_tcb())
    posteriors = compiled.qinfo.underapprox(IntervalDomain.top(ship))
    print(f"  observed band: {observed}")
    for output, posterior in sorted(posteriors.items()):
        print(f"  knowledge if output were {output}: {posterior.size()} states")


if __name__ == "__main__":
    main()
