"""Unit tests for the three-valued logic."""

import pytest

from repro.lang.ternary import FALSE, TRUE, UNKNOWN, Ternary, from_bool


class TestNegation:
    def test_negate_swaps_true_false(self):
        assert TRUE.negate() is FALSE
        assert FALSE.negate() is TRUE

    def test_negate_preserves_unknown(self):
        assert UNKNOWN.negate() is UNKNOWN

    def test_double_negation(self):
        for value in Ternary:
            assert value.negate().negate() is value


class TestConjunction:
    def test_false_dominates(self):
        for value in Ternary:
            assert FALSE.conj(value) is FALSE
            assert value.conj(FALSE) is FALSE

    def test_true_is_identity(self):
        for value in Ternary:
            assert TRUE.conj(value) is value
            assert value.conj(TRUE) is value

    def test_unknown_absorbs(self):
        assert UNKNOWN.conj(UNKNOWN) is UNKNOWN


class TestDisjunction:
    def test_true_dominates(self):
        for value in Ternary:
            assert TRUE.disj(value) is TRUE
            assert value.disj(TRUE) is TRUE

    def test_false_is_identity(self):
        for value in Ternary:
            assert FALSE.disj(value) is value
            assert value.disj(FALSE) is value

    def test_de_morgan(self):
        for a in Ternary:
            for b in Ternary:
                assert a.conj(b).negate() is a.negate().disj(b.negate())


class TestConversions:
    def test_from_bool(self):
        assert from_bool(True) is TRUE
        assert from_bool(False) is FALSE

    def test_decided(self):
        assert TRUE.decided and FALSE.decided
        assert not UNKNOWN.decided

    def test_as_bool(self):
        assert TRUE.as_bool() is True
        assert FALSE.as_bool() is False

    def test_as_bool_raises_on_unknown(self):
        with pytest.raises(ValueError):
            UNKNOWN.as_bool()
