"""Benchmark S2 — the serving runtime: shards, warm store, batched ticks.

Three claims of the ``repro.server`` architecture, measured and gated:

* **warm store beats cold compiles** — a restarted server answering the
  same compile workload from its persistent store is ≥ 3x the
  per-request cold-compile throughput (in practice orders of magnitude),
  with **zero** shard jobs submitted (the kill-and-restart story);
* **shards scale with cores** — cold compile throughput at 1/2/4 shards
  on the 4-D powerset workload scales near-linearly in the cores
  actually available: we gate *parallel efficiency*
  (speedup ÷ min(shards, cpu)) rather than raw speedup.  On a runner
  with fewer than 4 cores the efficiency number is measured and
  reported but **not** asserted (``gates.parallel_efficiency_enforced``
  / ``gates.parallel_efficiency_skip_reason`` in the artifact record
  why) — a 1-CPU box has no cores to convert shards into speedup;
* **ticks batch serving** — concurrent downgrades through the gateway
  collapse into far fewer batch passes than requests; the same workload
  is also measured on the per-shard serving tier (``serving_sharded``,
  reported, not gated);
* **degradation is graceful** — the same sharded workload with 1 of 4
  serving shards breaker-tripped (its users served on the gateway-local
  fallback path) keeps ≥ half the healthy sharded throughput
  (``degraded_rps``; gated only on runners with ≥ 4 cores, where the
  sharded baseline actually uses the cores it loses);
* **vectorized fleet ticks beat the scalar loop** — the structure-of-
  arrays warm path (one stacked intersection + one vectorized verdict +
  one batched query kernel per tick) serves the same fleet ≥ 10x faster
  than the per-session scalar reference (``served_rps_vectorized``;
  the speedup is re-measured everywhere but, like the other ratio
  gates, only asserted on ≥ 4-core runners where timing noise from a
  contended CI core can't flip it);
* **journaling is cheap** — the same sharded workload with every
  request write-ahead journaled to a file-backed SQLite store (appends
  and acks batched per tick) keeps ≥ 0.7x the unjournaled sharded
  throughput (``serving_journaled``; soft-reported below 4 cores like
  the other ratio gates);
* **observation is cheap** — the same sharded workload with the full
  telemetry surface on (metric counters on every layer, replay-stable
  trace spans piggybacked on shard batch responses) keeps ≥ 0.9x the
  unobserved sharded throughput (``serving_observed``; the ratio
  baselines run with ``observe=False`` so it isolates instrumentation
  overhead; soft-reported below 4 cores like the other ratio gates).

Results land in ``BENCH_server.json`` at the repository root (uploaded
as a CI artifact alongside ``BENCH_solver.json``).
"""

import asyncio
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.plugin import CompileOptions
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server.gateway import DeclassificationServer, ServerConfig
from repro.server.store import SQLiteStore
from repro.service.api import CompileRequest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: The 4-D ship-style space: past the region-oracle cap, so every compile
#: pays the worklist/front machinery — a realistic "expensive query".
SPEC = SecretSpec.declare("Ship", x=(0, 63), y=(0, 63), z=(0, 31), w=(0, 31))
OPTIONS = CompileOptions(domain="powerset", k=6, modes=("under", "over"))

QUERIES = [
    (
        f"zone{i}",
        f"abs(x - {12 + 4 * i}) + abs(y - {16 + 3 * i}) "
        f"+ abs(z - {6 + (i % 5)}) + w <= {38 + 2 * i}",
    )
    for i in range(12)
]

SHARD_COUNTS = (1, 2, 4)
SERVING_SHARDS = 4
MIN_WARM_SPEEDUP = 3.0
MIN_PARALLEL_EFFICIENCY = 0.55
MIN_DEGRADED_FRACTION = 0.5
MIN_VECTORIZED_SPEEDUP = 10.0
MIN_JOURNALED_FRACTION = 0.7
MIN_OBSERVED_FRACTION = 0.9

#: shard count → measurements, aggregated by the report test.
RESULTS: dict[int, dict] = {}


def _server(shards: int, store: SQLiteStore | None) -> DeclassificationServer:
    return DeclassificationServer(
        size_above(100),
        store=store,
        options=OPTIONS,
        config=ServerConfig(shards=shards, max_pending_compiles=len(QUERIES)),
    )


async def _register_all(server: DeclassificationServer) -> float:
    start = time.perf_counter()
    await asyncio.gather(
        *(
            server.register_query(CompileRequest(name, text, SPEC))
            for name, text in QUERIES
        )
    )
    return time.perf_counter() - start


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_cold_and_warm_compile_throughput(shards, tmp_path):
    store_path = tmp_path / f"store-{shards}.db"

    with SQLiteStore(store_path) as store:
        cold_server = _server(shards, store)
        cold_time = asyncio.run(_register_all(cold_server))
        assert cold_server.pool.total_submitted() == len(QUERIES)
        cold_server.shutdown()

    # Kill and restart on the same store: the whole workload must be
    # answered from the warm start with zero recompiles.
    with SQLiteStore(store_path) as store:
        warm_server = _server(shards, store)
        assert warm_server.stats.warm_entries == len(QUERIES)
        warm_time = asyncio.run(_register_all(warm_server))
        assert warm_server.pool.total_submitted() == 0, "warm start recompiled!"
        assert warm_server.stats.compile_cache_hits == len(QUERIES)
        warm_server.shutdown()

    RESULTS[shards] = {
        "cold_seconds": cold_time,
        "cold_rps": len(QUERIES) / cold_time,
        "warm_seconds": warm_time,
        "warm_rps": len(QUERIES) / warm_time,
        "warm_recompiles": 0,
    }
    print(
        f"\n{shards} shard(s): cold {len(QUERIES) / cold_time:6.1f} req/s, "
        f"warm {len(QUERIES) / warm_time:8.1f} req/s"
    )


def test_batched_downgrade_throughput():
    n_sessions = 400

    async def scenario():
        server = _server(1, None)
        server.pool.inline = True  # serving path under test, not compiles
        await server.register_query(CompileRequest(*QUERIES[0], SPEC))
        rng_state = 1234567
        for i in range(n_sessions):
            rng_state = (1103515245 * rng_state + 12345) % (1 << 31)
            server.open_session(
                f"u{i}",
                (
                    SPEC,
                    (
                        rng_state % 64,
                        (rng_state >> 8) % 64,
                        (rng_state >> 16) % 32,
                        (rng_state >> 20) % 32,
                    ),
                ),
            )
        await server.start()
        start = time.perf_counter()
        results = await asyncio.gather(
            *(server.downgrade(f"u{i}", QUERIES[0][0]) for i in range(n_sessions))
        )
        elapsed = time.perf_counter() - start
        await server.stop()
        server.shutdown()
        assert len(results) == n_sessions
        # Ticks batched: far fewer batch passes than requests.
        batches = sum(1 for e in server.service.audit if e.kind == "batch")
        assert batches < n_sessions / 4
        return n_sessions / elapsed, batches

    served_rps, batches = asyncio.run(scenario())
    RESULTS["serving"] = {
        "sessions": n_sessions,
        "served_rps": served_rps,
        "batch_passes": batches,
    }
    print(f"\nserving: {served_rps:,.0f} downgrades/s in {batches} batch passes")


async def _sharded_serving_scenario(
    n_sessions: int, *, trip_shards=(), store=None, observe=False
):
    """One sharded serving run; optionally trip breakers before serving.

    With *store* set, every request is write-ahead journaled to it —
    the ``serving_journaled`` configuration, identical except for the
    journal so the ratio isolates journaling overhead.  *observe*
    defaults off so every ratio shares the uninstrumented baseline;
    the ``serving_observed`` row flips it on, and that single toggle is
    the instrumentation overhead being measured.
    """
    from repro.server.journal import RequestJournal

    server = DeclassificationServer(
        size_above(100),
        store=store,
        journal=None if store is None else RequestJournal(store),
        options=OPTIONS,
        config=ServerConfig(
            shards=1,
            max_pending_compiles=len(QUERIES),
            inline_compiles=True,
            serving_shards=SERVING_SHARDS,
            observe=observe,
        ),
    )
    await server.register_query(CompileRequest(*QUERIES[0], SPEC))
    rng_state = 7654321
    for i in range(n_sessions):
        rng_state = (1103515245 * rng_state + 12345) % (1 << 31)
        server.open_session(
            f"u{i}",
            (
                SPEC,
                (
                    rng_state % 64,
                    (rng_state >> 8) % 64,
                    (rng_state >> 16) % 32,
                    (rng_state >> 20) % 32,
                ),
            ),
            user_id=f"user{i}",
        )
    for shard in trip_shards:
        # The operator/benchmark override: pin the shard out of rotation
        # far past the run, so its users ride the degraded path.
        server.supervisor.breaker("serving", shard).trip(cooldown=3600.0)
    await server.start()
    start = time.perf_counter()
    results = await asyncio.gather(
        *(server.downgrade(f"u{i}", QUERIES[0][0]) for i in range(n_sessions))
    )
    elapsed = time.perf_counter() - start
    await server.stop()
    degraded_batches = server.stats.degraded_batches
    journaled = 0 if server.journal is None else len(server.journal)
    server.shutdown()
    assert len(results) == n_sessions
    assert all(r.authorized for r in results)
    return n_sessions / elapsed, degraded_batches, journaled


def test_sharded_serving_throughput():
    """The serving-shard tier: downgrade batches on worker processes.

    Measured and reported (not hard-gated: process startup dominates on
    tiny CI boxes): the same downgrade workload as the tick-batching
    benchmark, executed on four serving shards routed by user id.
    """
    n_sessions = 200
    served_rps, _, _ = asyncio.run(_sharded_serving_scenario(n_sessions))
    RESULTS["serving_sharded"] = {
        "sessions": n_sessions,
        "serving_shards": SERVING_SHARDS,
        "served_rps": served_rps,
    }
    print(
        f"\nsharded serving: {served_rps:,.0f} downgrades/s "
        f"on {SERVING_SHARDS} shards"
    )


def test_degraded_serving_throughput():
    """Graceful degradation: 1 of 4 serving shards down, still serving.

    The tripped shard's users fall over to the gateway-local path; every
    request is still answered and enforced.  Reported always; gated
    (≥ ``MIN_DEGRADED_FRACTION`` of healthy sharded throughput) only on
    ≥ 4-core runners, in the report test.
    """
    n_sessions = 200
    served_rps, degraded_batches, _ = asyncio.run(
        _sharded_serving_scenario(n_sessions, trip_shards=(0,))
    )
    assert degraded_batches > 0, "no traffic rode the degraded path"
    RESULTS["serving_degraded"] = {
        "sessions": n_sessions,
        "serving_shards": SERVING_SHARDS,
        "shards_down": 1,
        "served_rps": served_rps,
        "degraded_batches": degraded_batches,
    }
    print(
        f"\ndegraded serving: {served_rps:,.0f} downgrades/s with 1 of "
        f"{SERVING_SHARDS} shards down ({degraded_batches} degraded batches)"
    )


def test_journaled_serving_throughput(tmp_path):
    """Write-ahead journaling on the sharded serving path, measured.

    Same workload as ``serving_sharded`` with a file-backed SQLite
    store journaling every request (appends and acks land in batched
    per-tick transactions, acks fused with the ledger mirror when one
    exists).  Reported always; gated at ≥ ``MIN_JOURNALED_FRACTION`` of
    the unjournaled sharded throughput on ≥ 4-core runners.
    """
    n_sessions = 200
    with SQLiteStore(tmp_path / "journal.db") as store:
        served_rps, _, journaled = asyncio.run(
            _sharded_serving_scenario(n_sessions, store=store)
        )
    # Every request made it into the journal: one configure, one
    # compile, one open per session, one downgrade per request.
    assert journaled == 2 + 2 * n_sessions, "journal missed requests"
    RESULTS["serving_journaled"] = {
        "sessions": n_sessions,
        "serving_shards": SERVING_SHARDS,
        "served_rps": served_rps,
        "journal_entries": journaled,
    }
    print(
        f"\njournaled serving: {served_rps:,.0f} downgrades/s "
        f"({journaled} journal entries)"
    )


def test_observed_serving_throughput():
    """The full telemetry surface on, same workload: observation is cheap.

    Identical to ``serving_sharded`` except ``observe=True``: every
    layer counts its decisions, the gateway derives trace ids for the
    batch, and serving shards piggyback metric deltas and trace spans
    on their batch responses.  Reported always; gated at
    ≥ ``MIN_OBSERVED_FRACTION`` of the unobserved sharded throughput on
    ≥ 4-core runners, in the report test.
    """
    n_sessions = 200
    served_rps, _, _ = asyncio.run(
        _sharded_serving_scenario(n_sessions, observe=True)
    )
    RESULTS["serving_observed"] = {
        "sessions": n_sessions,
        "serving_shards": SERVING_SHARDS,
        "served_rps": served_rps,
    }
    print(
        f"\nobserved serving: {served_rps:,.0f} downgrades/s "
        f"with full telemetry on"
    )


def test_vectorized_fleet_throughput():
    """Scalar loop vs SoA warm path on identical fleet ticks.

    Measures :meth:`SessionManager.downgrade_batch` directly (no event
    loop, no shard codec: the tick itself is the claim) on a fleet of
    3000 sessions alternating between two compiled zone queries, after a
    warm-up tick per query so both paths start from mixed priors with
    pinned kernels.  Asserts bit-identical decisions along the way —
    a fast path that drifts from the reference measures nothing.
    """
    from repro.core.plugin import QueryRegistry
    from repro.service.session import SessionManager

    n_sessions, ticks = 3000, 6
    registry = QueryRegistry()
    for name, text in QUERIES[:2]:
        registry.compile_and_register(name, text, SPEC, options=OPTIONS)
    rng_state = 24681012
    secrets = {}
    for i in range(n_sessions):
        rng_state = (1103515245 * rng_state + 12345) % (1 << 31)
        secrets[f"u{i}"] = (
            SPEC,
            (
                rng_state % 64,
                (rng_state >> 8) % 64,
                (rng_state >> 16) % 32,
                (rng_state >> 20) % 32,
            ),
        )

    def run(vectorized):
        manager = SessionManager(
            registry=registry, policy=size_above(100), vectorized=vectorized
        )
        manager.open_sessions(secrets)
        for name, _ in QUERIES[:2]:  # warm-up: mixed priors, pinned kernels
            manager.downgrade_batch(name)
        outcomes = []
        start = time.perf_counter()
        for tick in range(ticks):
            outcomes.append(manager.downgrade_batch(QUERIES[tick % 2][0]))
        elapsed = time.perf_counter() - start
        return outcomes, ticks * n_sessions / elapsed

    scalar_outcomes, scalar_rps = run(False)
    vectorized_outcomes, vectorized_rps = run(True)
    assert scalar_outcomes == vectorized_outcomes, "fast path drifted"

    RESULTS["serving_vectorized"] = {
        "sessions": n_sessions,
        "ticks": ticks,
        "served_rps_scalar": scalar_rps,
        "served_rps_vectorized": vectorized_rps,
        "vectorized_speedup": vectorized_rps / scalar_rps,
    }
    print(
        f"\nfleet ticks: scalar {scalar_rps:,.0f}/s, "
        f"vectorized {vectorized_rps:,.0f}/s "
        f"({vectorized_rps / scalar_rps:.1f}x)"
    )


def test_report_and_gates():
    assert set(SHARD_COUNTS) <= set(RESULTS), "run the whole module"
    cpu = os.cpu_count() or 1

    base = RESULTS[1]
    warm_speedup = base["warm_rps"] / base["cold_rps"]
    scaling = RESULTS[4]["cold_rps"] / base["cold_rps"]
    ideal = min(4, cpu)
    efficiency = scaling / ideal

    # Parallel efficiency divides by min(shards, cpu), but on a box with
    # fewer than 4 cores the 4-shard run adds pure process overhead with
    # no cores to spend it on: the gate is meaningless noise there (the
    # standard 1-CPU CI runner).  Soft-report instead of asserting, and
    # say so in the artifact so a reader of BENCH_server.json knows the
    # number was measured but not enforced.
    efficiency_enforced = cpu >= 4
    efficiency_skip_reason = (
        None
        if efficiency_enforced
        else f"cpu_count={cpu} < 4: 4-shard efficiency reported, not gated"
    )

    # Same reasoning for the degraded gate: with fewer cores than shards
    # the healthy baseline is already contended, so the degraded/healthy
    # ratio measures scheduler noise rather than the fallback path.
    sharded_rps = RESULTS.get("serving_sharded", {}).get("served_rps", 0.0)
    degraded_rps = RESULTS.get("serving_degraded", {}).get("served_rps", 0.0)
    degraded_fraction = degraded_rps / sharded_rps if sharded_rps else 0.0
    degraded_enforced = cpu >= 4
    degraded_skip_reason = (
        None
        if degraded_enforced
        else f"cpu_count={cpu} < 4: degraded throughput reported, not gated"
    )

    # Journaling overhead is also a ratio against the sharded baseline,
    # with the same contended-core caveat.
    journaled_rps = RESULTS.get("serving_journaled", {}).get("served_rps", 0.0)
    journaled_fraction = journaled_rps / sharded_rps if sharded_rps else 0.0
    journaled_enforced = cpu >= 4
    journaled_skip_reason = (
        None
        if journaled_enforced
        else f"cpu_count={cpu} < 4: journaled throughput reported, not gated"
    )

    # Observation overhead is a ratio against the same sharded baseline,
    # with the same contended-core caveat.
    observed_rps = RESULTS.get("serving_observed", {}).get("served_rps", 0.0)
    observed_fraction = observed_rps / sharded_rps if sharded_rps else 0.0
    observed_enforced = cpu >= 4
    observed_skip_reason = (
        None
        if observed_enforced
        else f"cpu_count={cpu} < 4: observed throughput reported, not gated"
    )

    # The vectorized/scalar ratio is a single-core property, but on a
    # contended 1-CPU CI box the scalar baseline's timing jitter can
    # swing the ratio by itself: measure and report everywhere, assert
    # only where there's headroom.
    vectorized_speedup = RESULTS.get("serving_vectorized", {}).get(
        "vectorized_speedup", 0.0
    )
    vectorized_enforced = cpu >= 4
    vectorized_skip_reason = (
        None
        if vectorized_enforced
        else f"cpu_count={cpu} < 4: vectorized speedup reported, not gated"
    )

    payload = {
        "workload": {
            "description": "4-D powerset compiles (k=6, under+over, verified)",
            "queries": len(QUERIES),
            "secret_space": SPEC.space_size(),
            "domain": OPTIONS.domain,
            "k": OPTIONS.k,
        },
        "cpu_count": cpu,
        "shards": {str(s): RESULTS[s] for s in SHARD_COUNTS},
        "serving": RESULTS.get("serving", {}),
        "serving_sharded": RESULTS.get("serving_sharded", {}),
        "serving_degraded": RESULTS.get("serving_degraded", {}),
        "serving_journaled": RESULTS.get("serving_journaled", {}),
        "serving_observed": RESULTS.get("serving_observed", {}),
        "serving_vectorized": RESULTS.get("serving_vectorized", {}),
        "warm_speedup_vs_cold": warm_speedup,
        "scaling_1_to_4_shards": scaling,
        "parallel_efficiency": efficiency,
        "degraded_fraction": degraded_fraction,
        "journaled_fraction": journaled_fraction,
        "observed_fraction": observed_fraction,
        "vectorized_speedup": vectorized_speedup,
        "gates": {
            "min_warm_speedup": MIN_WARM_SPEEDUP,
            "min_parallel_efficiency": MIN_PARALLEL_EFFICIENCY,
            "parallel_efficiency_enforced": efficiency_enforced,
            "parallel_efficiency_skip_reason": efficiency_skip_reason,
            "min_degraded_fraction": MIN_DEGRADED_FRACTION,
            "degraded_enforced": degraded_enforced,
            "degraded_skip_reason": degraded_skip_reason,
            "min_journaled_fraction": MIN_JOURNALED_FRACTION,
            "journaled_enforced": journaled_enforced,
            "journaled_skip_reason": journaled_skip_reason,
            "min_observed_fraction": MIN_OBSERVED_FRACTION,
            "observed_enforced": observed_enforced,
            "observed_skip_reason": observed_skip_reason,
            "min_vectorized_speedup": MIN_VECTORIZED_SPEEDUP,
            "vectorized_enforced": vectorized_enforced,
            "vectorized_skip_reason": vectorized_skip_reason,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"\nwarm/cold {warm_speedup:,.0f}x; 1→4 shards {scaling:.2f}x "
        f"on {cpu} core(s) (efficiency {efficiency:.2f}); "
        f"wrote {BENCH_PATH.name}"
    )

    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm store only {warm_speedup:.1f}x over cold compiles "
        f"(gate {MIN_WARM_SPEEDUP}x)"
    )
    if degraded_enforced:
        assert degraded_fraction >= MIN_DEGRADED_FRACTION, (
            f"1-of-{SERVING_SHARDS}-shards-down serving at "
            f"{degraded_fraction:.2f} of healthy throughput "
            f"(gate {MIN_DEGRADED_FRACTION})"
        )
    else:
        print(f"degraded-throughput gate skipped: {degraded_skip_reason}")
    if journaled_enforced:
        assert journaled_fraction >= MIN_JOURNALED_FRACTION, (
            f"journaled serving at {journaled_fraction:.2f} of unjournaled "
            f"sharded throughput (gate {MIN_JOURNALED_FRACTION})"
        )
    else:
        print(f"journaled-throughput gate skipped: {journaled_skip_reason}")
    if observed_enforced:
        assert observed_fraction >= MIN_OBSERVED_FRACTION, (
            f"observed serving at {observed_fraction:.2f} of unobserved "
            f"sharded throughput (gate {MIN_OBSERVED_FRACTION})"
        )
    else:
        print(f"observed-throughput gate skipped: {observed_skip_reason}")
    if vectorized_enforced:
        assert vectorized_speedup >= MIN_VECTORIZED_SPEEDUP, (
            f"vectorized fleet ticks only {vectorized_speedup:.1f}x over "
            f"the scalar loop (gate {MIN_VECTORIZED_SPEEDUP}x)"
        )
    else:
        print(f"vectorized-speedup gate skipped: {vectorized_skip_reason}")
    if not efficiency_enforced:
        print(f"parallel-efficiency gate skipped: {efficiency_skip_reason}")
        return
    assert efficiency >= MIN_PARALLEL_EFFICIENCY, (
        f"1→4 shard scaling {scaling:.2f}x on {cpu} cores is "
        f"{efficiency:.2f} of ideal (gate {MIN_PARALLEL_EFFICIENCY})"
    )
