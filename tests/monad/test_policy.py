"""Tests for quantitative policy combinators."""

from repro.domains.box import IntervalDomain
from repro.lang.secrets import SecretSpec
from repro.monad.policy import (
    all_of,
    any_of,
    check_monotone_on,
    size_above,
    size_at_least,
)
from repro.solver.boxes import Box

SPEC = SecretSpec.declare("S", x=(0, 9), y=(0, 9))


def _domain(width):
    return IntervalDomain(SPEC, Box.make((0, width - 1), (0, 9)))


class TestSizePolicies:
    def test_size_above(self):
        policy = size_above(100)
        assert not policy(_domain(10))  # size exactly 100 is not > 100
        assert policy(IntervalDomain.top(SPEC)) is False  # top is 100 too
        assert policy(_domain(10)) is False
        assert size_above(99)(_domain(10)) is True

    def test_size_at_least(self):
        policy = size_at_least(100)
        assert policy(_domain(10)) is True
        assert not policy(_domain(9))

    def test_bottom_fails_positive_thresholds(self):
        assert not size_above(0)(IntervalDomain.bottom(SPEC))
        assert not size_at_least(1)(IntervalDomain.bottom(SPEC))

    def test_names(self):
        assert size_above(100).name == "size > 100"
        assert size_at_least(5).name == "size >= 5"


class TestCombinators:
    def test_all_of(self):
        policy = all_of(size_at_least(10), size_at_least(50))
        assert policy(_domain(5))
        assert not policy(_domain(4))

    def test_any_of(self):
        policy = any_of(size_at_least(1000), size_at_least(10))
        assert policy(_domain(1))
        assert not any_of(size_at_least(1000))(_domain(1))

    def test_combined_names(self):
        assert "and" in all_of(size_above(1), size_above(2)).name
        assert "or" in any_of(size_above(1), size_above(2)).name


class TestMonotonicity:
    def test_size_policies_are_monotone(self):
        chain = [_domain(w) for w in (1, 3, 5, 10)]
        assert check_monotone_on(size_above(25), chain)
        assert check_monotone_on(size_at_least(30), chain)

    def test_non_monotone_policy_detected(self):
        from repro.monad.policy import QuantitativePolicy

        # "size is even" flips back and forth along the chain.
        wobbly = QuantitativePolicy("wobbly", lambda d: (d.size() // 10) % 2 == 0)
        chain = [_domain(w) for w in (1, 2, 3, 4)]
        assert not check_monotone_on(wobbly, chain)


class TestVerdictOnSizes:
    """The size-encoding interpreter behind vectorized fleet verdicts."""

    def test_matches_predicate_on_scalars(self):
        from repro.monad.policy import verdict_on_sizes

        policies = [
            size_above(100),
            size_at_least(100),
            all_of(size_above(10), size_at_least(50)),
            any_of(size_above(1000), size_at_least(10)),
        ]
        for policy in policies:
            for width in (1, 5, 9, 10):
                domain = _domain(width)
                got = verdict_on_sizes(policy, domain.size())
                assert got is not None
                assert bool(got) == policy(domain), (policy.name, width)

    def test_vectorized_over_numpy_arrays(self):
        np = __import__("pytest").importorskip("numpy")
        from repro.monad.policy import verdict_on_sizes

        sizes = np.asarray([0, 10, 100, 5000], dtype=np.int64)
        policy = all_of(size_above(9), size_at_least(100))
        got = verdict_on_sizes(policy, sizes)
        assert got.tolist() == [False, False, True, True]

    def test_opaque_policy_returns_none(self):
        from repro.monad.policy import QuantitativePolicy, verdict_on_sizes

        opaque = QuantitativePolicy("opaque", lambda d: True)
        assert verdict_on_sizes(opaque, 10) is None

    def test_combined_with_opaque_part_returns_none(self):
        from repro.monad.policy import QuantitativePolicy, verdict_on_sizes

        opaque = QuantitativePolicy("opaque", lambda d: True)
        assert verdict_on_sizes(all_of(size_above(1), opaque), 10) is None
