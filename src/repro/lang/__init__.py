"""The ANOSY query language: AST/DSL, parser, evaluator, validator.

Public surface:

* :mod:`repro.lang.ast` — the expression AST, which doubles as a Python DSL
  (``abs(x - 200) + abs(y - 200) <= 100``).
* :func:`repro.lang.parser.parse_bool` — the textual surface syntax.
* :class:`repro.lang.secrets.SecretSpec` — secret type declarations.
* :func:`repro.lang.validate.validate_query` — the section 5.1 fragment check.
"""

from repro.lang.ast import (
    BoolExpr,
    BoolLit,
    Expr,
    IntExpr,
    Lit,
    Var,
    lit,
    var,
)
from repro.lang.canonical import (
    canonicalize,
    expr_from_json,
    expr_to_json,
    spec_fingerprint,
    spec_from_json,
    spec_to_json,
    stable_hash,
)
from repro.lang.eval import eval_bool, eval_int
from repro.lang.parser import ParseError, parse, parse_bool, parse_int
from repro.lang.pretty import pretty
from repro.lang.secrets import FieldSpec, SecretSpec
from repro.lang.ternary import Ternary
from repro.lang.transform import fold_constants, free_vars, nnf, substitute
from repro.lang.validate import QueryValidationError, validate_query

__all__ = [
    "BoolExpr",
    "BoolLit",
    "Expr",
    "IntExpr",
    "Lit",
    "Var",
    "lit",
    "var",
    "canonicalize",
    "expr_from_json",
    "expr_to_json",
    "spec_fingerprint",
    "spec_from_json",
    "spec_to_json",
    "stable_hash",
    "eval_bool",
    "eval_int",
    "ParseError",
    "parse",
    "parse_bool",
    "parse_int",
    "pretty",
    "FieldSpec",
    "SecretSpec",
    "Ternary",
    "fold_constants",
    "free_vars",
    "nnf",
    "substitute",
    "QueryValidationError",
    "validate_query",
]
