"""SMT-LIB 2 emission.

The paper hands its synthesis constraints to Z3 (section 5.3).  This
environment has no SMT solver, so :mod:`repro.solver` decides everything
natively — but we still emit the *exact* scripts the paper describes, for
two reasons: they document the synthesis obligations precisely, and anyone
with Z3 on hand can cross-check our synthesized bounds externally
(``z3 script.smt2``).

Two flavours are produced:

* :func:`synthesis_script` — the hole-filling optimization problem with
  ``(maximize (- u_i l_i))`` / ``(minimize ...)`` directives, as in
  section 2.3 and 5.3;
* :func:`forall_script` — a single verification obligation
  ``(assert (not (=> (in-dom x) (query x))))`` whose UNSAT answer certifies
  a synthesized domain.
"""

from __future__ import annotations

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolLit,
    Cmp,
    CmpOp,
    Expr,
    Iff,
    Implies,
    InSet,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box

__all__ = ["to_smt", "synthesis_script", "forall_script"]

_CMP_SYMBOL = {
    CmpOp.LE: "<=",
    CmpOp.LT: "<",
    CmpOp.GE: ">=",
    CmpOp.GT: ">",
    CmpOp.EQ: "=",
}


def to_smt(expr: Expr) -> str:
    """Render an expression as an SMT-LIB 2 term."""
    match expr:
        case Lit(value):
            return str(value) if value >= 0 else f"(- {-value})"
        case Var(name):
            return name
        case Add(left, right):
            return f"(+ {to_smt(left)} {to_smt(right)})"
        case Sub(left, right):
            return f"(- {to_smt(left)} {to_smt(right)})"
        case Neg(arg):
            return f"(- {to_smt(arg)})"
        case Scale(coeff, arg):
            return f"(* {to_smt(Lit(coeff))} {to_smt(arg)})"
        case Abs(arg):
            inner = to_smt(arg)
            return f"(ite (< {inner} 0) (- {inner}) {inner})"
        case Min(left, right):
            a, b = to_smt(left), to_smt(right)
            return f"(ite (<= {a} {b}) {a} {b})"
        case Max(left, right):
            a, b = to_smt(left), to_smt(right)
            return f"(ite (>= {a} {b}) {a} {b})"
        case IntIte(cond, then_branch, else_branch):
            return (
                f"(ite {to_smt(cond)} {to_smt(then_branch)} "
                f"{to_smt(else_branch)})"
            )
        case BoolLit(value):
            return "true" if value else "false"
        case Cmp(op, left, right):
            if op is CmpOp.NE:
                return f"(not (= {to_smt(left)} {to_smt(right)}))"
            return f"({_CMP_SYMBOL[op]} {to_smt(left)} {to_smt(right)})"
        case And(args):
            return f"(and {' '.join(to_smt(a) for a in args)})"
        case Or(args):
            return f"(or {' '.join(to_smt(a) for a in args)})"
        case Not(arg):
            return f"(not {to_smt(arg)})"
        case Implies(antecedent, consequent):
            return f"(=> {to_smt(antecedent)} {to_smt(consequent)})"
        case Iff(left, right):
            return f"(= {to_smt(left)} {to_smt(right)})"
        case InSet(arg, values):
            inner = to_smt(arg)
            if not values:
                return "false"
            members = " ".join(f"(= {inner} {to_smt(Lit(v))})" for v in sorted(values))
            return f"(or {members})" if len(values) > 1 else members
        case _:
            raise TypeError(f"unknown AST node: {expr!r}")


def _quantified_vars(secret: SecretSpec) -> str:
    return " ".join(f"({name} Int)" for name in secret.field_names)


def _space_guard(secret: SecretSpec) -> str:
    parts = [
        f"(and (<= {f.lo} {name}) (<= {name} {f.hi}))"
        for name, f in zip(secret.field_names, secret.fields)
    ]
    return f"(and {' '.join(parts)})" if len(parts) > 1 else parts[0]


def synthesis_script(
    query: Expr, secret: SecretSpec, *, mode: str = "under", polarity: bool = True
) -> str:
    """The section 5.3 hole-filling problem as a νZ optimization script.

    ``mode='under'`` maximizes the widths of a box forced inside the
    (possibly negated) query region; ``mode='over'`` minimizes the widths of
    a box forced to contain it.
    """
    if mode not in ("under", "over"):
        raise ValueError(f"mode must be 'under' or 'over', got {mode!r}")
    names = secret.field_names
    target = to_smt(query if polarity else Not(query))  # type: ignore[arg-type]

    lines = ["(set-logic ALL)", "(set-option :opt.priority pareto)"]
    for name in names:
        lines.append(f"(declare-const l_{name} Int)")
        lines.append(f"(declare-const u_{name} Int)")
    for name, fspec in zip(names, secret.fields):
        lines.append(f"(assert (<= {fspec.lo} l_{name}))")
        lines.append(f"(assert (<= u_{name} {fspec.hi}))")
        lines.append(f"(assert (<= l_{name} u_{name}))")

    membership = " ".join(
        f"(and (<= l_{name} {name}) (<= {name} u_{name}))" for name in names
    )
    in_dom = f"(and {membership})" if len(names) > 1 else membership
    guard = _space_guard(secret)
    if mode == "under":
        body = f"(=> (and {guard} {in_dom}) {target})"
    else:
        body = f"(=> (and {guard} {target}) {in_dom})"
    lines.append(f"(assert (forall ({_quantified_vars(secret)}) {body}))")

    directive = "maximize" if mode == "under" else "minimize"
    for name in names:
        lines.append(f"({directive} (- u_{name} l_{name}))")
    lines.append("(check-sat)")
    lines.append("(get-objectives)")
    lines.append("(get-model)")
    return "\n".join(lines) + "\n"


def forall_script(query: Expr, secret: SecretSpec, box: Box) -> str:
    """A verification obligation: UNSAT iff ``box`` is inside the region."""
    names = secret.field_names
    lines = ["(set-logic ALL)"]
    for name in names:
        lines.append(f"(declare-const {name} Int)")
    for name, (lo, hi) in zip(names, box.bounds):
        lines.append(f"(assert (<= {lo} {name}))")
        lines.append(f"(assert (<= {name} {hi}))")
    lines.append(f"(assert (not {to_smt(query)}))")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
