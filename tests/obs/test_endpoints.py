"""The edge's observability surface: /metrics, /statusz, access log.

Boots a journaled gateway behind an :class:`HttpEdge`, drives real
traffic over HTTP, then scrapes ``/metrics`` (validated with the small
parser in tests/obs/prom.py — the same check the CI ``metrics`` job
runs), reads ``/statusz``, and checks the structured access log stamps
each line with the trace id the gateway bound to its idempotency key.
"""

import json
import urllib.request

import pytest
from prom import parse_exposition

from repro.core.plugin import CompileOptions
from repro.lang.canonical import spec_to_json
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server.edge import HttpEdge
from repro.server.gateway import DeclassificationServer, ServerConfig
from repro.server.journal import MemoryJournalBackend, RequestJournal

SPEC = SecretSpec.declare("ObsLoc", x=(0, 199), y=(0, 199))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))


@pytest.fixture(scope="module")
def stack():
    """One edge + its gateway + the captured access-log lines."""
    lines: list[str] = []
    server = DeclassificationServer(
        size_above(100),
        options=OPTIONS,
        budget_floor=size_above(4000),
        config=ServerConfig(inline_compiles=True),
        journal=RequestJournal(MemoryJournalBackend()),
    )
    with HttpEdge(server, access_log=lines.append) as edge:
        yield edge, server, lines


def call(edge, method, path, body=None, key=None):
    host, port = edge.address
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method
    )
    request.add_header("Content-Type", "application/json")
    if key is not None:
        request.add_header("Idempotency-Key", key)
    with urllib.request.urlopen(request, timeout=30) as response:
        raw = response.read()
        kind = response.headers.get("Content-Type", "")
        return (
            response.status,
            json.loads(raw) if kind.startswith("application/json") else raw,
            kind,
        )


@pytest.fixture(scope="module")
def traffic(stack):
    """Drive one full lifecycle through the edge; return the edge."""
    edge, _, _ = stack
    status, _, _ = call(
        edge,
        "POST",
        "/v1/queries",
        {"name": "west", "query": "x <= 99", "secret": spec_to_json(SPEC)},
        key="compile/west",
    )
    assert status == 200
    status, _, _ = call(
        edge,
        "POST",
        "/v1/sessions",
        {
            "session_id": "s1",
            "secret": {"spec": spec_to_json(SPEC), "value": [30, 40]},
            "user_id": "alice",
        },
        key="open/s1",
    )
    assert status == 201
    status, result, _ = call(
        edge,
        "POST",
        "/v1/downgrades",
        {"session_id": "s1", "query_name": "west"},
        key="dg/1",
    )
    assert status == 200 and result["authorized"] is True
    return edge


def test_metrics_scrape_is_valid_exposition(stack, traffic):
    edge = traffic
    status, raw, kind = call(edge, "GET", "/metrics")
    assert status == 200
    assert kind.startswith("text/plain")
    families = parse_exposition(raw.decode("utf-8"))
    # Series from every layer the tentpole threads through.
    assert ("anosy_gateway_compiles_total", frozenset({("outcome", "compiled")})) in families[
        "anosy_gateway_compiles_total"
    ].samples
    downgrades = families["anosy_gateway_downgrades_total"].samples
    assert downgrades[
        ("anosy_gateway_downgrades_total", frozenset({("kind", "ok")}))
    ] >= 1
    assert families["anosy_serve_path_total"].kind == "counter"
    assert families["anosy_journal_append_seconds"].kind == "histogram"
    assert families["anosy_gateway_tick_seconds"].kind == "histogram"
    assert families["anosy_sessions_open"].samples[
        ("anosy_sessions_open", frozenset())
    ] == 1
    assert families["anosy_gateway_queue_depth"].kind == "gauge"
    edge_hits = families["anosy_edge_requests_total"].samples
    assert edge_hits[
        (
            "anosy_edge_requests_total",
            frozenset(
                {("method", "POST"), ("route", "/v1/downgrades"), ("status", "200")}
            ),
        )
    ] == 1


def test_statusz_reports_runtime_shape(stack, traffic):
    edge = traffic
    status, body, _ = call(edge, "GET", "/statusz")
    assert status == 200
    assert body["observe"] is True
    assert body["queue_depth"] == 0
    assert body["degraded"]["fraction"] == 0.0
    assert body["journal"]["pending"] == 0
    assert body["journal"]["entries"] >= 3
    assert body["stats"]["downgrades_served"] >= 1
    assert body["traces"]["retained"] >= 1
    assert isinstance(body["breakers"], dict)


def test_healthz_carries_degradation_signals(stack, traffic):
    status, body, _ = call(traffic, "GET", "/v1/healthz")
    assert status == 200
    assert body == {
        "status": "ok",
        "degraded_fraction": 0.0,
        "breakers_open": 0,
        "journal_pending": 0,
    }


def test_access_log_lines_carry_trace_ids(stack, traffic):
    _, server, lines = stack
    records = [json.loads(line) for line in lines]
    downgrade = next(
        r for r in records if r["route"] == "/v1/downgrades"
    )
    assert downgrade["method"] == "POST" and downgrade["status"] == 200
    assert downgrade["ms"] >= 0
    assert downgrade["idempotency_key"] == "dg/1"
    assert downgrade["trace_id"] == server.hub.trace_for_key("dg/1")
    assert downgrade["trace_id"] is not None
    # The trace the log points at is a real recorded tree.
    tree = server.hub.tracer.tree(downgrade["trace_id"])
    assert tree is not None and tree["name"] == "downgrade"
    # Requests without a key log a null trace id, never a fabricated one.
    plain = next(r for r in records if r["route"] == "/metrics")
    assert plain["idempotency_key"] is None
    assert plain["trace_id"] is None


def test_metrics_endpoint_is_empty_when_observation_is_off():
    server = DeclassificationServer(
        size_above(100),
        options=OPTIONS,
        config=ServerConfig(inline_compiles=True, observe=False),
    )
    with HttpEdge(server) as edge:
        status, raw, kind = call(edge, "GET", "/metrics")
        assert status == 200 and raw == b"" and kind.startswith("text/plain")
        status, body, _ = call(edge, "GET", "/statusz")
        assert status == 200 and body["observe"] is False
