"""The synthesis cache: compile once, serve many.

ANOSY's runtime claim is that posterior computation is free *because all
the expensive work happened at compile time*.  That claim is only useful
if the compile-time work itself is not repeated: a service registering the
same query for its Nth tenant should pay a dictionary lookup, not another
optimizer run.  :class:`SynthesisCache` provides exactly that seam.

Keys are content hashes over the *canonicalized* query AST (so
alpha-equivalent reorderings like ``a and b`` vs ``b and a`` share one
entry), the secret declaration, and every synthesis-relevant option.
Values are complete :class:`~repro.core.plugin.CompiledQuery` artifacts,
including proof certificates, and the whole cache round-trips through JSON
for warm starts (:meth:`save`/:meth:`load`).

The cache is deliberately *not* ambient: :func:`~repro.core.plugin.compile_query`
takes it as an explicit argument, so callers who want cold-compile numbers
(the Figure 5 measurements) simply pass none.

Persistence is pluggable: a :class:`CacheBackend` (e.g. the SQLite
:class:`~repro.server.store.SQLiteStore`) can be attached, making every
``put`` write through and warm-starting the in-memory table on attach —
the seam the sharded server runtime uses to survive restarts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Protocol

from repro.core.plugin import CompiledQuery, CompileOptions
from repro.lang.ast import BoolExpr
from repro.lang.canonical import canonicalize, expr_to_json, spec_to_json
from repro.lang.secrets import SecretSpec
from repro.service.serialize import compiled_query_from_json, compiled_query_to_json

__all__ = ["CacheBackend", "CacheStats", "SynthesisCache", "cache_key"]

#: Bumped whenever the artifact encoding changes incompatibly.
CACHE_FORMAT_VERSION = 2


def cache_key(
    query: BoolExpr, secret: SecretSpec, options: CompileOptions
) -> str:
    """The content hash identifying one synthesis problem.

    Everything that can change the synthesized artifact participates:
    the canonical query, the secret bounds, the abstract domain and its
    ``k``, the approximation modes (as a set — order is presentational),
    whether verification ran, and the optimizer knobs.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "query": expr_to_json(canonicalize(query)),
        "secret": spec_to_json(secret),
        "options": {
            "domain": options.domain,
            "k": options.k,
            "modes": sorted(options.modes),
            "verify": options.verify,
            "synth": {
                "time_budget": options.synth.time_budget,
                "seed_pops": options.synth.seed_pops,
                "growth": options.synth.growth,
                # The solver engine cannot change *verified* artifacts, but
                # witness-dependent tie-breaks (e.g. which maximal box a
                # degenerate region grows from) may differ between engines
                # and thresholds, so both participate in the key.
                "use_kernels": options.synth.use_kernels,
                "vector_threshold": options.synth.vector_threshold,
                # Fused probes are decision-identical per round, but
                # incremental seeding changes which (equally valid)
                # maximal boxes later iterations find, so both ride the
                # key alongside the engine knobs.
                "fused_probes": options.synth.fused_probes,
                "incremental_seed": options.synth.incremental_seed,
                "legacy_splits": options.synth.legacy_splits,
            },
        },
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CacheBackend(Protocol):
    """Durable key → JSON-payload storage behind a :class:`SynthesisCache`.

    Payloads are :func:`~repro.service.serialize.compiled_query_to_json`
    encodings; keys are :func:`cache_key` content hashes.  The protocol is
    deliberately dumb — encoding/decoding stays in the cache, so a backend
    never needs to import the artifact model.
    """

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for a key, or ``None``."""
        ...  # pragma: no cover - protocol

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Durably store a payload under its key (last write wins)."""
        ...  # pragma: no cover - protocol

    def keys(self) -> Iterator[str]:
        """Iterate over the stored keys."""
        ...  # pragma: no cover - protocol

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Iterate over ``(key, payload)`` pairs in one bulk read.

        Warm starts decode every entry; one scan beats a ``get`` round
        trip per key.
        """
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`SynthesisCache`."""

    hits: int
    misses: int

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0


@dataclass
class SynthesisCache:
    """A content-addressed store of compiled query artifacts.

    With a ``backend`` attached, entries are write-through persisted and
    the in-memory table is warm-started from the backend on construction
    (decoding is eager, so a restarted process serves its first request
    from memory, not from disk).
    """

    _entries: dict[str, CompiledQuery] = field(default_factory=dict)
    _hits: int = 0
    _misses: int = 0
    backend: CacheBackend | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.backend is not None:
            self.preload()

    # -- lookup ------------------------------------------------------------
    def key_for(
        self, query: BoolExpr, secret: SecretSpec, options: CompileOptions
    ) -> str:
        """Compute the cache key for a synthesis problem."""
        return cache_key(query, secret, options)

    def get(self, key: str) -> CompiledQuery | None:
        """Look up an artifact, counting the hit or miss.

        A key absent from memory but present in the backend (written by a
        concurrent process since the preload) counts as a hit and is
        promoted into memory.
        """
        entry = self._entries.get(key)
        if entry is None and self.backend is not None:
            payload = self.backend.get(key)
            if payload is not None:
                entry = compiled_query_from_json(payload)
                self._entries[key] = entry
        if entry is None:
            self._misses += 1
        else:
            self._hits += 1
        return entry

    def put(self, key: str, compiled: CompiledQuery) -> None:
        """Store an artifact under its key (last write wins)."""
        self._entries[key] = compiled
        if self.backend is not None:
            self.backend.put(key, compiled_query_to_json(compiled))

    def preload(self) -> int:
        """Decode every backend entry into memory; returns the count."""
        assert self.backend is not None, "preload() requires a backend"
        count = 0
        for key, payload in list(self.backend.items()):
            if key in self._entries or payload is None:
                continue
            self._entries[key] = compiled_query_from_json(payload)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Uncounted presence test, consulting the backend too.

        A key another process persisted since the preload is promoted
        into memory here, so callers probing before a compile (the
        gateway's miss path) never re-synthesize what the fleet already
        paid for.
        """
        if key in self._entries:
            return True
        if self.backend is not None:
            payload = self.backend.get(key)
            if payload is not None:
                self._entries[key] = compiled_query_from_json(payload)
                return True
        return False

    def keys(self) -> Iterator[str]:
        """The stored keys."""
        return iter(self._entries)

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss counters."""
        return CacheStats(hits=self._hits, misses=self._misses)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0

    # -- persistence -------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """Encode the full cache (entries only; counters are per-process)."""
        return {
            "version": CACHE_FORMAT_VERSION,
            "entries": {
                key: compiled_query_to_json(compiled)
                for key, compiled in self._entries.items()
            },
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SynthesisCache":
        """Decode a cache encoded by :meth:`to_json`."""
        version = data.get("version")
        if version != CACHE_FORMAT_VERSION:
            raise ValueError(
                f"cache format version {version!r} != {CACHE_FORMAT_VERSION}"
            )
        cache = cls()
        for key, entry in data["entries"].items():
            cache._entries[key] = compiled_query_from_json(entry)
        return cache

    def save(self, path: str | Path) -> None:
        """Persist the cache to a JSON file (atomic enough for warm starts)."""
        Path(path).write_text(json.dumps(self.to_json(), sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "SynthesisCache":
        """Warm-start a cache from a JSON file written by :meth:`save`."""
        return cls.from_json(json.loads(Path(path).read_text()))
