"""Tests for the box optimizers (the νZ substitute)."""

from hypothesis import given, settings

from repro.lang.ast import var
from repro.lang.eval import eval_bool
from repro.solver.boxes import Box
from repro.solver.decide import decide_forall
from repro.solver.optimize import OptimizeOptions, bounding_box, maximal_box
from tests.strategies import bool_exprs

SPACE = Box.make((-8, 12), (0, 15))
NAMES = ("x", "y")


def _region(formula, box):
    return {
        point
        for point in box.iter_points()
        if eval_bool(formula, dict(zip(NAMES, point)))
    }


class TestMaximalBox:
    @given(bool_exprs(NAMES))
    @settings(max_examples=80, deadline=None)
    def test_result_inside_region(self, formula):
        outcome = maximal_box(formula, SPACE, NAMES)
        region = _region(formula, SPACE)
        if outcome.box is None:
            assert outcome.proved_empty
            assert not region
        else:
            assert set(outcome.box.iter_points()) <= region

    @given(bool_exprs(NAMES))
    @settings(max_examples=50, deadline=None)
    def test_no_face_can_grow_by_one(self, formula):
        outcome = maximal_box(formula, SPACE, NAMES)
        if outcome.box is None or outcome.timed_out:
            return
        box = outcome.box
        for dim in range(box.arity):
            lo, hi = box.bounds[dim]
            slo, shi = SPACE.bounds[dim]
            if hi < shi:
                slab = box.with_dim(dim, hi + 1, hi + 1)
                assert not decide_forall(formula, slab, NAMES)
            if lo > slo:
                slab = box.with_dim(dim, lo - 1, lo - 1)
                assert not decide_forall(formula, slab, NAMES)

    def test_diamond_pareto_square(self, nearby):
        space = Box.make((0, 399), (0, 399))
        outcome = maximal_box(nearby, space, NAMES)
        # The maximal Pareto-balanced box inside a radius-100 Manhattan
        # ball is the inscribed 101x101 square.
        assert outcome.box is not None
        assert outcome.box.widths() == (101, 101)
        assert outcome.box.volume() == 10201

    def test_empty_region(self):
        outcome = maximal_box(var("x").eq(99), SPACE, NAMES)
        assert outcome.box is None
        assert outcome.proved_empty

    def test_lexicographic_mode_runs(self, nearby):
        space = Box.make((0, 399), (0, 399))
        options = OptimizeOptions(mode="lexicographic")
        outcome = maximal_box(nearby, space, NAMES, options)
        assert outcome.box is not None
        assert decide_forall(nearby, outcome.box, NAMES)


class TestBoundingBox:
    @given(bool_exprs(NAMES))
    @settings(max_examples=80, deadline=None)
    def test_exact_bounding_box(self, formula):
        outcome = bounding_box(formula, SPACE, NAMES)
        region = _region(formula, SPACE)
        if outcome.box is None:
            assert outcome.proved_empty
            assert not region
            return
        # Correct: covers the region.
        assert region <= set(outcome.box.iter_points())
        # Optimal: every face touches the region.
        for dim in range(2):
            lows = {p[dim] for p in region}
            assert outcome.box.bounds[dim] == (min(lows), max(lows))

    def test_diamond_bounding_box(self, nearby):
        space = Box.make((0, 399), (0, 399))
        outcome = bounding_box(nearby, space, NAMES)
        assert outcome.box == Box.make((100, 300), (100, 300))

    def test_empty_region(self):
        outcome = bounding_box(var("y").eq(-1), SPACE, NAMES)
        assert outcome.box is None
        assert outcome.proved_empty
