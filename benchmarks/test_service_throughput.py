"""Benchmark S1 — the service layer: compiled-query caching + batch serving.

Two claims the service architecture makes, measured:

* **compile-once**: the second-and-later compiles of a semantically
  repeated query (including alpha-equivalent reorderings) are served from
  the :class:`~repro.service.cache.SynthesisCache` at least 10x faster
  than cold synthesis;
* **serve-many**: ``downgrade_batch`` answers one query for ≥ 1000
  independent sessions in a single pass, reusing the compiled ind.-set
  pair and memoizing posterior intersections per distinct prior.
"""

import random
import time

from repro.core.plugin import CompileOptions, QueryRegistry, compile_query
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.service.cache import SynthesisCache
from repro.service.session import SessionManager

SPEC = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))
QUERY = "abs(x - 200) + abs(y - 200) <= 100"
#: The same query as another tenant would write it: conjoined arguments of
#: the commutative ``+`` swapped.  Alpha-equivalent, so it must cache-hit.
QUERY_REORDERED = "abs(y - 200) + abs(x - 200) <= 100"
OPTIONS = CompileOptions(domain="powerset", k=3, modes=("under",))

N_SESSIONS = 1500


def test_cache_hit_speedup_at_least_10x():
    cache = SynthesisCache()

    start = time.perf_counter()
    cold = compile_query("tenant0", QUERY, SPEC, OPTIONS, cache=cache)
    cold_time = time.perf_counter() - start
    assert cache.stats.misses == 1

    # Second-and-later compiles: same query, reordered, new tenants.
    warm_times = []
    for tenant in range(1, 4):
        text = QUERY if tenant % 2 else QUERY_REORDERED
        start = time.perf_counter()
        warm = compile_query(f"tenant{tenant}", text, SPEC, OPTIONS, cache=cache)
        warm_times.append(time.perf_counter() - start)
        assert warm.name == f"tenant{tenant}"
        assert warm.qinfo.under_indset == cold.qinfo.under_indset
    warm_time = min(warm_times)

    assert cache.stats.hits == 3
    speedup = cold_time / warm_time
    print(
        f"\ncold compile {cold_time * 1000:.2f} ms, cache hit "
        f"{warm_time * 1000:.3f} ms — {speedup:.0f}x"
    )
    assert speedup >= 10, f"cache speedup only {speedup:.1f}x"


def _fresh_fleet(registry: QueryRegistry) -> SessionManager:
    manager = SessionManager(registry=registry, policy=size_above(100))
    rng = random.Random(11)
    for i in range(N_SESSIONS):
        manager.open_session(
            f"user-{i}", (SPEC, (rng.randrange(400), rng.randrange(400)))
        )
    return manager


def test_downgrade_batch_over_1000_sessions(benchmark):
    registry = QueryRegistry()
    compiled = registry.compile_and_register("near", QUERY, SPEC, OPTIONS)

    def setup():
        return (_fresh_fleet(registry),), {}

    def sweep(manager: SessionManager):
        return manager.downgrade_batch("near"), manager

    decisions, manager = benchmark.pedantic(sweep, setup=setup, rounds=3)

    assert len(decisions) == N_SESSIONS >= 1000
    assert all(d.authorized for d in decisions.values())
    # Responses are the true query answers for each session's secret.
    for sid in ("user-0", "user-700", f"user-{N_SESSIONS - 1}"):
        session = manager.session(sid)
        env = SPEC.to_env(session.secret.unprotect_tcb())
        assert decisions[sid].response == eval_bool(compiled.qinfo.query, env)
        assert session.knowledge_size() is not None
    benchmark.extra_info["sessions"] = N_SESSIONS
    benchmark.extra_info["authorized"] = sum(
        1 for d in decisions.values() if d.authorized
    )


def test_batch_matches_sequential_downgrades():
    """The batched path and N independent single downgrades agree."""
    registry = QueryRegistry()
    registry.compile_and_register("near", QUERY, SPEC, OPTIONS)

    batched = _fresh_fleet(registry)
    sequential = _fresh_fleet(registry)

    batch_decisions = batched.downgrade_batch("near")
    for sid in list(sequential.sessions):
        single = sequential.try_downgrade(sid, "near")
        assert single == batch_decisions[sid]
        assert (
            sequential.session(sid).knowledge == batched.session(sid).knowledge
        )
