"""The secure advertising system of section 6.2 (Figure 6's workload).

A restaurant chain asks, for each of its (up to) 50 branches, whether the
user is within Manhattan distance 100 — the ``nearby`` query of section 2
— against a secret location uniform in a 400x400 grid.  Queries run
through ``AnosyT.downgrade`` under the policy ``size > 100``; an execution
instance stops at the first policy violation.  Figure 6 plots, for each
powerset size ``k``, how many of 20 instances are still alive after the
i-th query.

Randomness is deterministic per seed (``random.Random(seed)``), so
experiment runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.lang.ast import var
from repro.lang.secrets import SecretSpec
from repro.core.plugin import CompileOptions, QueryRegistry
from repro.core.synth import SynthOptions
from repro.monad.anosy import AnosyT
from repro.monad.policy import QuantitativePolicy, size_above
from repro.monad.protected import ProtectedSecret
from repro.monad.secure import SecureRuntime

__all__ = [
    "USER_LOC",
    "nearby_query",
    "AdvertisingSystem",
    "InstanceResult",
    "build_system",
]

#: The section 2 secret type: a location on a 400x400 grid.
USER_LOC = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))

#: Manhattan proximity radius used by every ``nearby`` query.
NEARBY_RADIUS = 100


def nearby_query(origin: tuple[int, int]):
    """The section 2 ``nearby`` query centred at ``origin``."""
    x, y = var("x"), var("y")
    ox, oy = origin
    return abs(x - ox) + abs(y - oy) <= NEARBY_RADIUS


@dataclass(frozen=True)
class InstanceResult:
    """One execution instance: how far it got through the query sequence."""

    secret: tuple[int, int]
    authorized: int
    violated: bool

    @property
    def survived_all(self) -> bool:
        """Whether the instance answered every query without violation."""
        return not self.violated


class AdvertisingSystem:
    """A compiled advertising deployment: query registry + policy."""

    def __init__(
        self,
        registry: QueryRegistry,
        query_names: Sequence[str],
        policy: QuantitativePolicy,
        *,
        check_both: bool = False,
    ):
        self.registry = registry
        self.query_names = list(query_names)
        self.policy = policy
        # Figure 6 reproduces the paper's evaluation, whose magnitudes
        # match response-posterior-only checking (EXPERIMENTS.md); pass
        # check_both=True for the stricter section 3 discipline.
        self.check_both = check_both

    def run_instance(self, secret: tuple[int, int]) -> InstanceResult:
        """Run the full query sequence for one user; stop on violation."""
        session = AnosyT(
            SecureRuntime(),
            self.policy,
            self.registry,
            check_both=self.check_both,
        )
        protected = ProtectedSecret.seal(USER_LOC, secret)
        authorized = 0
        for name in self.query_names:
            decision = session.try_downgrade(protected, name)
            if not decision.authorized:
                return InstanceResult(secret, authorized, violated=True)
            authorized += 1
        return InstanceResult(secret, authorized, violated=False)


def build_system(
    *,
    k: int,
    num_queries: int = 50,
    seed: int = 2022,
    policy_threshold: int = 100,
    check_both: bool = False,
    synth: SynthOptions = SynthOptions(),
) -> AdvertisingSystem:
    """Compile an advertising system with ``num_queries`` random branches.

    ``k=1`` uses the interval domain (a powerset of one box is a box);
    ``k>1`` uses powersets of ``k`` intervals, as in Figure 6's legend.
    Restaurant origins are drawn uniformly from the 400x400 grid.
    """
    rng = random.Random(seed)
    registry = QueryRegistry()
    names = []
    options = CompileOptions(
        domain="interval" if k == 1 else "powerset",
        k=k,
        modes=("under",),
        synth=synth,
    )
    for index in range(num_queries):
        origin = (rng.randrange(400), rng.randrange(400))
        name = f"nearby_{index:02d}_{origin[0]}_{origin[1]}"
        registry.compile_and_register(name, nearby_query(origin), USER_LOC, options)
        names.append(name)
    return AdvertisingSystem(
        registry, names, size_above(policy_threshold), check_both=check_both
    )
