"""Experiment E5 — the Prob comparison (section 6.1 discussion).

The paper contrasts ANOSY with Prob (Mardziel et al.) on two axes:

* **cost model** — Prob re-runs an abstract interpretation for every query
  execution; ANOSY pays a one-time synthesis cost after which posteriors
  are a few box intersections.  We report the one-time synthesis cost, the
  baseline's per-query analysis cost, ANOSY's per-query posterior cost,
  and the break-even number of query executions.
* **precision** — the baseline's join-point imprecision makes its
  posteriors looser.  We compare posterior sizes for the same observation
  (starting from ⊤): smaller over-approximations are more precise.

The baseline is the HC4 interval-propagation interpreter of
:mod:`repro.benchsuite.probbaseline` (see DESIGN.md for why this is a
faithful stand-in for Prob's architecture).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.benchsuite.mardziel import ALL_BENCHMARKS, BenchmarkProblem
from repro.benchsuite.probbaseline import hc4_posterior
from repro.core.plugin import CompileOptions, compile_query
from repro.experiments.report import TextTable, fmt_size
from repro.solver.boxes import Box

__all__ = ["ProbComparison", "run_probcompare", "render_probcompare", "main"]


@dataclass(frozen=True)
class ProbComparison:
    """One benchmark's ANOSY-vs-baseline numbers."""

    problem: BenchmarkProblem
    synth_time: float
    anosy_posterior_time: float
    baseline_query_time: float
    anosy_true_size: int
    anosy_false_size: int
    baseline_true_size: int
    baseline_false_size: int

    @property
    def break_even_queries(self) -> float:
        """Executions after which ANOSY's one-time cost is amortized."""
        saved_per_query = self.baseline_query_time - self.anosy_posterior_time
        if saved_per_query <= 0:
            return float("inf")
        return self.synth_time / saved_per_query

    @property
    def precision_gain_true(self) -> float:
        """baseline/ANOSY posterior size ratio for the True response."""
        if self.anosy_true_size == 0:
            return float("inf") if self.baseline_true_size else 1.0
        return self.baseline_true_size / self.anosy_true_size


def compare_benchmark(problem: BenchmarkProblem, *, k: int = 3) -> ProbComparison:
    """Compare ANOSY (powerset k) against the HC4 baseline on one query."""
    options = CompileOptions(domain="powerset", k=k, modes=("over",))
    start = time.perf_counter()
    compiled = compile_query(problem.bench_id, problem.query, problem.secret, options)
    synth_time = time.perf_counter() - start

    top = Box(problem.secret.bounds())
    baseline_true = hc4_posterior(problem.query, problem.secret, top, True)
    baseline_false = hc4_posterior(problem.query, problem.secret, top, False)

    prior = compiled.qinfo.over_indset[0].top(problem.secret)
    start = time.perf_counter()
    post_true, post_false = compiled.qinfo.overapprox(prior)
    anosy_posterior_time = time.perf_counter() - start

    return ProbComparison(
        problem=problem,
        synth_time=synth_time,
        anosy_posterior_time=anosy_posterior_time,
        baseline_query_time=baseline_true.elapsed + baseline_false.elapsed,
        anosy_true_size=post_true.size(),
        anosy_false_size=post_false.size(),
        baseline_true_size=baseline_true.size(),
        baseline_false_size=baseline_false.size(),
    )


def run_probcompare(
    bench_ids: tuple[str, ...] = ("B1", "B2", "B3", "B4", "B5"), *, k: int = 3
) -> list[ProbComparison]:
    """Compare on all requested benchmarks."""
    return [compare_benchmark(ALL_BENCHMARKS[b], k=k) for b in bench_ids]


def render_probcompare(rows: list[ProbComparison]) -> str:
    """Side-by-side posterior sizes and the amortization numbers."""
    size_table = TextTable(
        headers=["#", "ANOSY post (T/F)", "Baseline post (T/F)", "Precision gain (T)"],
        rows=[
            [
                row.problem.bench_id,
                f"{fmt_size(row.anosy_true_size)} / {fmt_size(row.anosy_false_size)}",
                f"{fmt_size(row.baseline_true_size)} / "
                f"{fmt_size(row.baseline_false_size)}",
                (
                    "inf"
                    if row.precision_gain_true == float("inf")
                    else f"{row.precision_gain_true:.2f}x"
                ),
            ]
            for row in rows
        ],
    )
    time_table = TextTable(
        headers=[
            "#",
            "Synth (one-time)",
            "ANOSY per-query",
            "Baseline per-query",
            "Break-even runs",
        ],
        rows=[
            [
                row.problem.bench_id,
                f"{row.synth_time * 1000:.0f} ms",
                f"{row.anosy_posterior_time * 1000:.2f} ms",
                f"{row.baseline_query_time * 1000:.2f} ms",
                (
                    "never"
                    if row.break_even_queries == float("inf")
                    else f"{row.break_even_queries:.0f}"
                ),
            ]
            for row in rows
        ],
    )
    return (
        "Posterior precision (over-approximations from top; smaller = better)\n"
        f"{size_table.render()}\n\n"
        "Amortization (one-time synthesis vs per-query analysis)\n"
        f"{time_table.render()}"
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="ANOSY vs Prob-style baseline")
    parser.add_argument("--k", type=int, default=3)
    args = parser.parse_args(argv)
    rows = run_probcompare(k=args.k)
    print("Section 6.1 discussion: comparison with a Prob-style baseline")
    print(render_probcompare(rows))


if __name__ == "__main__":
    main()
