"""Decision procedures over finite integer boxes.

These four procedures are the solver's public surface, and together they
play the role Z3 plays in the paper:

* :func:`decide_forall` — is ``phi`` true at *every* point of a box?
  (discharges the refinement-type obligations of Figure 4)
* :func:`decide_exists` / :func:`find_model` — is ``phi`` satisfiable in a
  box, and at which point?  (seeds and binary searches in the optimizer)
* :func:`find_true_box` — a large all-true sub-box, best-first by volume
  (the synthesis seed)
* :func:`count_models` — the exact number of satisfying points
  (ground truth for Table 1, and the ``size`` of exact knowledge)

All are complete: queries are quantifier-free formulas over finitely many
bounded integers, abstract evaluation is exact on single-point boxes, and
every split strictly shrinks a dimension, so branch-and-bound terminates
with a definite answer.  Splitting only happens along variables still free
in the *specialized* formula, which guarantees progress and lets whole
dimensions factor out of the count multiplicatively.

Two implementation decisions shape this module (see DESIGN.md):

* **Explicit worklists.**  Every search runs on an explicit stack (or
  heap), never Python recursion, so adversarial queries that slice one
  unit per split cannot blow the interpreter stack.  Visit order matches
  the old recursive formulation exactly (low half first).
* **Pluggable evaluation engines.**  A :class:`KernelEngine` (default)
  drives the search with the compiled closures of
  :mod:`repro.solver.kernels`; an :class:`InterpEngine` drives it with the
  tree-walking interpreter of :mod:`repro.solver.abseval`.  Both make
  identical decisions — same truth values, same split choices, same node
  and split counts — which the differential tests assert.  Vectorized
  small-box finishing (NumPy grids, see :mod:`repro.solver.vectoreval`)
  is available to all four procedures under both engines and is counted
  in :class:`SolverStats`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.lang.ast import BoolExpr
from repro.lang.ternary import FALSE, TRUE
from repro.lang.transform import free_vars
from repro.solver import vectoreval
from repro.solver.abseval import specialize
from repro.solver.boxes import Box
from repro.solver.kernels import BoolKernel, KernelSpace
from repro.solver.split import choose_split, split_at, var_bound, walk_atoms

__all__ = [
    "SolverBudgetExceeded",
    "SolverStats",
    "InterpEngine",
    "KernelEngine",
    "make_engine",
    "decide_forall",
    "decide_exists",
    "find_model",
    "find_true_box",
    "count_models",
]

# Re-exported for tests and external callers of the split heuristics.
_choose_split = choose_split
_var_bound = var_bound
_walk_atoms = walk_atoms
_split_at = split_at


class SolverBudgetExceeded(Exception):
    """Raised when a decision exceeds its node budget (guard, not timeout)."""


@dataclass
class SolverStats:
    """Mutable counters threaded through a decision (observability/tests)."""

    nodes: int = 0
    max_nodes: int | None = None
    splits: int = 0
    #: Sub-boxes finished on a NumPy grid instead of further splitting.
    vector_boxes: int = 0

    def tick(self) -> None:
        self.nodes += 1
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            raise SolverBudgetExceeded(
                f"decision exceeded {self.max_nodes} search nodes"
            )

    def merge(self, other: "SolverStats") -> None:
        """Fold another decision's counters into this one."""
        self.nodes += other.nodes
        self.splits += other.splits
        self.vector_boxes += other.vector_boxes


# ---------------------------------------------------------------------------
# Evaluation engines
# ---------------------------------------------------------------------------


class KernelEngine:
    """Drive the search with compiled kernels (the default, fast path)."""

    uses_kernels = True

    def __init__(
        self,
        names: Sequence[str],
        space: KernelSpace | None = None,
        *,
        legacy_splits: bool = False,
    ):
        self.names = tuple(names)
        self.space = (
            space
            if space is not None
            else KernelSpace(self.names, legacy_splits=legacy_splits)
        )
        self.legacy_splits = self.space.legacy_splits

    def lower(self, phi: BoolExpr | BoolKernel) -> BoolKernel:
        if isinstance(phi, BoolKernel):
            return phi
        return self.space.lower(phi)

    def specialize(self, node: BoolKernel, box: Box):
        return node.specialize(box.bounds)

    def choose_split(self, node: BoolKernel, box: Box) -> tuple[int, int]:
        return node.choose_split(box)

    def free(self, node: BoolKernel) -> frozenset[str]:
        return node.free

    def expr_of(self, node: BoolKernel) -> BoolExpr:
        return node.expr

    def grid_count(self, node: BoolKernel, box: Box) -> int:
        return node.grid_count(box)

    def grid_all(self, node: BoolKernel, box: Box) -> bool:
        return node.grid_all(box)

    def grid_find(self, node: BoolKernel, box: Box) -> tuple[int, ...] | None:
        return node.grid_find(box)

    def grid_mask(self, node: BoolKernel, box: Box):
        return node.grid_mask(box)


class InterpEngine:
    """Drive the search with the tree-walking interpreter (reference path)."""

    uses_kernels = False

    def __init__(self, names: Sequence[str], *, legacy_splits: bool = False):
        self.names = tuple(names)
        self.legacy_splits = legacy_splits

    def lower(self, phi: BoolExpr) -> BoolExpr:
        return phi

    def specialize(self, phi: BoolExpr, box: Box):
        shrunk, truth = specialize(phi, dict(zip(self.names, box.bounds)))
        return truth, shrunk

    def choose_split(self, phi: BoolExpr, box: Box) -> tuple[int, int]:
        return choose_split(phi, box, self.names, legacy=self.legacy_splits)

    def free(self, phi: BoolExpr) -> frozenset[str]:
        return free_vars(phi)

    def expr_of(self, phi: BoolExpr) -> BoolExpr:
        return phi

    def grid_count(self, phi: BoolExpr, box: Box) -> int:
        return vectoreval.count_box_vectorized(phi, box, self.names)

    def grid_all(self, phi: BoolExpr, box: Box) -> bool:
        return vectoreval.all_box_vectorized(phi, box, self.names)

    def grid_find(self, phi: BoolExpr, box: Box) -> tuple[int, ...] | None:
        return vectoreval.find_point_vectorized(phi, box, self.names)

    def grid_mask(self, phi: BoolExpr, box: Box):
        return vectoreval.mask_box_vectorized(phi, box, self.names)


def make_engine(
    names: Sequence[str], use_kernels: bool = True, *, legacy_splits: bool = False
):
    """An evaluation engine for one variable order.

    Reusing one engine across many decisions (as the optimizers do) shares
    the kernel compilation caches and the specialization memo between
    them, which is where the optimizer's overlapping probes win big.
    ``legacy_splits`` reverts to the pre-kernel split heuristic (benchmark
    baselines only).
    """
    if use_kernels:
        return KernelEngine(names, legacy_splits=legacy_splits)
    return InterpEngine(names, legacy_splits=legacy_splits)


def _resolve(
    engine,
    names: Sequence[str],
    use_kernels: bool,
    stats: SolverStats | None,
    vector_threshold: int | None,
    default_threshold: int,
    legacy_splits: bool = False,
) -> tuple[object, SolverStats, int]:
    if engine is None:
        engine = make_engine(names, use_kernels, legacy_splits=legacy_splits)
    if stats is None:
        stats = SolverStats()
    if vector_threshold is None:
        vector_threshold = default_threshold if vectoreval.AVAILABLE else 0
    return engine, stats, vector_threshold


# ---------------------------------------------------------------------------
# The four decision procedures (explicit worklists)
# ---------------------------------------------------------------------------


def decide_forall(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> bool:
    """Whether every point of ``box`` satisfies ``phi``."""
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_DECIDE_VECTOR_THRESHOLD,
    )
    stack = [(engine.lower(phi), box)]
    # Counters live in locals inside the loop (a method call per node is
    # measurable); the finally block flushes them even on budget raises.
    nodes = splits = vector_boxes = 0
    budget = None if stats.max_nodes is None else stats.max_nodes - stats.nodes
    try:
        while stack:
            node, current = stack.pop()
            nodes += 1
            if budget is not None and nodes > budget:
                raise SolverBudgetExceeded(
                    f"decision exceeded {stats.max_nodes} search nodes"
                )
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                continue
            if truth is FALSE:
                return False
            if 0 < current.volume() <= vt:
                vector_boxes += 1
                if engine.grid_all(shrunk, current):
                    continue
                return False
            splits += 1
            low, high = split_at(current, *engine.choose_split(shrunk, current))
            stack.append((shrunk, high))
            stack.append((shrunk, low))
        return True
    finally:
        stats.nodes += nodes
        stats.splits += splits
        stats.vector_boxes += vector_boxes


def find_model(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> tuple[int, ...] | None:
    """A point of ``box`` satisfying ``phi``, or ``None`` if none exists."""
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_DECIDE_VECTOR_THRESHOLD,
    )
    stack = [(engine.lower(phi), box)]
    nodes = splits = vector_boxes = 0
    budget = None if stats.max_nodes is None else stats.max_nodes - stats.nodes
    try:
        while stack:
            node, current = stack.pop()
            nodes += 1
            if budget is not None and nodes > budget:
                raise SolverBudgetExceeded(
                    f"decision exceeded {stats.max_nodes} search nodes"
                )
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                return current.any_point()
            if truth is FALSE:
                continue
            if 0 < current.volume() <= vt:
                vector_boxes += 1
                witness = engine.grid_find(shrunk, current)
                if witness is not None:
                    return witness
                continue
            splits += 1
            low, high = split_at(current, *engine.choose_split(shrunk, current))
            stack.append((shrunk, high))
            stack.append((shrunk, low))
        return None
    finally:
        stats.nodes += nodes
        stats.splits += splits
        stats.vector_boxes += vector_boxes


def decide_exists(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> bool:
    """Whether some point of ``box`` satisfies ``phi``."""
    return (
        find_model(
            phi,
            box,
            names,
            stats,
            engine=engine,
            use_kernels=use_kernels,
            vector_threshold=vector_threshold,
        )
        is not None
    )


@dataclass(frozen=True)
class TrueBoxResult:
    """Result of :func:`find_true_box`."""

    box: Box | None
    #: True when the search space was exhausted, i.e. ``box is None`` proves
    #: the region empty rather than reflecting a spent budget.
    exhausted: bool


def find_true_box(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    max_pops: int = 100_000,
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> TrueBoxResult:
    """Search for a *large* all-true sub-box, best-first by volume.

    Used to seed the maximal-box optimizer: expanding from a fat core box
    converges much faster (and to better Pareto points) than expanding from
    a single witness point.
    """
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_DECIDE_VECTOR_THRESHOLD,
    )
    counter = 0
    heap = [(-box.volume(), counter, box, engine.lower(phi), None)]
    pops = 0
    while heap and pops < max_pops:
        neg_volume, _, current, node, mask = heapq.heappop(heap)
        pops += 1
        stats.nodes += 1
        if stats.max_nodes is not None and stats.nodes > stats.max_nodes:
            raise SolverBudgetExceeded(
                f"decision exceeded {stats.max_nodes} search nodes"
            )
        if mask is not None:
            # An ancestor already evaluated this subtree's mask; deciding a
            # sub-box is a slice + sum, not a re-evaluation.
            satisfied = int(mask.sum())
            if satisfied == -neg_volume:
                return TrueBoxResult(current, exhausted=False)
            if satisfied == 0:
                continue
            # Mixed: abstraction cannot be decided either (it is sound),
            # so specialize only to shrink the formula for splitting.
            _, shrunk = engine.specialize(node, current)
        else:
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                return TrueBoxResult(current, exhausted=False)
            if truth is FALSE:
                continue
            if 0 < current.volume() <= vt:
                # One grid pass per subtree decides everything below it.
                stats.vector_boxes += 1
                mask = engine.grid_mask(shrunk, current)
                satisfied = int(mask.sum())
                if satisfied == current.volume():
                    return TrueBoxResult(current, exhausted=False)
                if satisfied == 0:
                    continue
        stats.splits += 1
        for half in split_at(current, *engine.choose_split(shrunk, current)):
            counter += 1
            sub_mask = None
            if mask is not None:
                sub_mask = mask[
                    tuple(
                        slice(lo - plo, hi - plo + 1)
                        for (lo, hi), (plo, _) in zip(half.bounds, current.bounds)
                    )
                ]
            heapq.heappush(
                heap, (-half.volume(), counter, half, shrunk, sub_mask)
            )
    return TrueBoxResult(None, exhausted=not heap)


def count_models(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    vector_threshold: int | None = None,
    engine=None,
    use_kernels: bool = True,
    legacy_splits: bool = False,
) -> int:
    """Exact number of points of ``box`` satisfying ``phi``.

    Dimensions that drop out of the specialized formula are factored out
    multiplicatively, so e.g. a constraint touching only 2 of 4 secret
    fields is counted on the 2-dimensional projection.  Undecided boxes at
    or below ``vector_threshold`` points are finished exactly on NumPy
    grids (see :mod:`repro.solver.vectoreval`); pass ``0`` to force the
    pure-Python path.
    """
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_VECTOR_THRESHOLD, legacy_splits,
    )
    names = tuple(names)
    total = 0
    stack = [(engine.lower(phi), box)]
    nodes = splits = vector_boxes = 0
    budget = None if stats.max_nodes is None else stats.max_nodes - stats.nodes
    try:
        while stack:
            node, current = stack.pop()
            nodes += 1
            if budget is not None and nodes > budget:
                raise SolverBudgetExceeded(
                    f"decision exceeded {stats.max_nodes} search nodes"
                )
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                total += current.volume()
                continue
            if truth is FALSE:
                continue
            live = engine.free(shrunk)
            factor = 1
            for name, (lo, hi) in zip(names, current.bounds):
                if name not in live:
                    factor *= hi - lo + 1
            if factor > 1:
                # Project onto the live dimensions and count there.  This is
                # the only (bounded) recursion left: each projection strictly
                # reduces the arity, so the depth is at most len(names).
                kept = [i for i, name in enumerate(names) if name in live]
                sub_box = Box(tuple(current.bounds[i] for i in kept))
                sub_names = tuple(names[i] for i in kept)
                # Flush before recursing so the inner call sees the budget.
                stats.nodes += nodes
                stats.splits += splits
                stats.vector_boxes += vector_boxes
                nodes = splits = vector_boxes = 0
                try:
                    # The projected engine must inherit the caller's full
                    # configuration, not just the kernel/interpreter choice.
                    total += factor * count_models(
                        engine.expr_of(shrunk),
                        sub_box,
                        sub_names,
                        stats,
                        vector_threshold=vt,
                        use_kernels=engine.uses_kernels,
                        legacy_splits=engine.legacy_splits,
                    )
                finally:
                    budget = (
                        None
                        if stats.max_nodes is None
                        else stats.max_nodes - stats.nodes
                    )
                continue
            if 0 < current.volume() <= vt:
                vector_boxes += 1
                total += engine.grid_count(shrunk, current)
                continue
            splits += 1
            low, high = split_at(current, *engine.choose_split(shrunk, current))
            stack.append((shrunk, high))
            stack.append((shrunk, low))
        return total
    finally:
        stats.nodes += nodes
        stats.splits += splits
        stats.vector_boxes += vector_boxes
