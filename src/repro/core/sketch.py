"""Synthesis sketches: partial programs with typed holes (section 5.2).

A sketch is the shape of an ind.-set pair with the abstract-domain values
left as holes, each hole carrying the refinement index it must satisfy
(from Figure 4).  ``Synth``/``IterSynth`` fill the holes; :func:`fill`
plugs the results back in and hands the completed pair to the checker.

This mirrors the paper's pipeline faithfully even though in Python the
"program with holes" is a data structure rather than generated source
text: the essential content of the sketch — *which* holes exist and *what
refinement type each must inhabit* — is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec
from repro.domains.base import AbstractDomain
from repro.refine.figure4 import over_indset_spec, under_indset_spec
from repro.refine.spec import Refinement

__all__ = ["Hole", "IndsetSketch", "make_indset_sketch", "fill"]

DomainPair = tuple[AbstractDomain, AbstractDomain]


@dataclass(frozen=True)
class Hole:
    """A typed hole ``□ :: a <p, n>``: an unknown domain of known type."""

    refinement: Refinement
    domain_kind: str  # "interval" | "powerset"
    description: str

    def __post_init__(self) -> None:
        if self.domain_kind not in ("interval", "powerset"):
            raise ValueError(f"unknown domain kind {self.domain_kind!r}")

    def render(self) -> str:
        """The hole in the paper's notation."""
        return f"□ :: A {self.refinement.describe()}"


@dataclass(frozen=True)
class IndsetSketch:
    """The two-hole sketch for an ind.-set pair (True side, False side)."""

    query: BoolExpr
    secret: SecretSpec
    mode: str  # "under" | "over"
    true_hole: Hole
    false_hole: Hole

    def render(self) -> str:
        """Pretty form matching the paper's section 5.2 display."""
        name = f"{self.mode}_indset"
        return (
            f"{name} = ( {self.true_hole.render()}\n"
            f"          , {self.false_hole.render()} )"
        )


def make_indset_sketch(
    query: BoolExpr,
    secret: SecretSpec,
    mode: str,
    domain_kind: str,
) -> IndsetSketch:
    """Generate the sketch + refinement types for one approximation mode."""
    if mode == "under":
        true_spec, false_spec = under_indset_spec(query)
    elif mode == "over":
        true_spec, false_spec = over_indset_spec(query)
    else:
        raise ValueError(f"mode must be 'under' or 'over', got {mode!r}")
    return IndsetSketch(
        query=query,
        secret=secret,
        mode=mode,
        true_hole=Hole(true_spec, domain_kind, f"{mode} ind. set, True response"),
        false_hole=Hole(false_spec, domain_kind, f"{mode} ind. set, False response"),
    )


def fill(
    sketch: IndsetSketch,
    true_domain: AbstractDomain,
    false_domain: AbstractDomain,
) -> DomainPair:
    """Substitute synthesized domains for the sketch's holes."""
    for hole, domain in ((sketch.true_hole, true_domain), (sketch.false_hole, false_domain)):
        if domain.spec != sketch.secret:
            raise ValueError(
                f"hole for secret {sketch.secret.name!r} filled with a domain "
                f"over {domain.spec.name!r}"
            )
    return (true_domain, false_domain)
