"""``Synth``: SMT-style synthesis of a single interval domain (section 5.3).

Given a typed hole for one response side of an ind. set, ``Synth`` finds
concrete bounds ``l_i, u_i`` such that the filled box inhabits the hole's
refinement type:

* under-approximation — a box all of whose points satisfy the (possibly
  negated) query, with ``u_i - l_i`` Pareto-maximized;
* over-approximation — the minimal box containing every satisfying point.

The paper encodes this as νZ optimization problems; here the same problems
are solved natively by :mod:`repro.solver.optimize` (see DESIGN.md), and
the SMT-LIB scripts the paper would emit are still available through
:func:`repro.solver.smtlib.synthesis_script` for external cross-checking.

An optional extra ``region`` constraint restricts the search to a
sub-region (Algorithm 1 passes "not covered by previous boxes" here).

One call = one νZ problem, but one *engine* can serve many calls: the
iterative synthesizer passes a shared kernel engine so the query is
lowered once for the whole powerset (see
:class:`~repro.solver.kernels.KernelSpace`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang.ast import BoolExpr, Not
from repro.lang.secrets import SecretSpec
from repro.lang.transform import conjoin, nnf
from repro.domains.box import IntervalDomain
from repro.solver.boxes import Box
from repro.solver.decide import SolverStats
from repro.solver.optimize import OptimizeOptions, bounding_box, maximal_box

__all__ = ["SynthOptions", "SynthResult", "synth_interval"]


@dataclass(frozen=True)
class SynthOptions:
    """Synthesis knobs, mirroring the paper's experimental setup.

    ``time_budget`` is per SMT-style optimization call, defaulting to the
    paper's 10-second Z3 timeout.  ``mode`` selects the optimizer growth
    strategy (``"balanced"`` reproduces νZ Pareto; ``"lexicographic"`` is
    ablation A1).  ``use_kernels`` selects the compiled-kernel solver
    engine (default) or the tree-walking interpreter (the reference path
    differential tests compare against); ``vector_threshold`` caps
    vectorized small-box finishing (``None`` = engine default, ``0`` =
    pure Python).
    """

    time_budget: float | None = 10.0
    seed_pops: int = 50_000
    growth: str = "balanced"
    use_kernels: bool = True
    vector_threshold: int | None = None
    #: Fuse each balanced-growth round's face probes into one batched
    #: decision (decision-identical; see ``OptimizeOptions.fused_probes``).
    fused_probes: bool = True
    #: Warm-start later powerset iterations from the residue pieces the
    #: previous iterations left (see :func:`repro.core.itersynth`).
    incremental_seed: bool = True
    #: Pre-kernel split heuristic; benchmark baselines only.
    legacy_splits: bool = False

    def optimizer_options(self) -> OptimizeOptions:
        """The corresponding low-level optimizer options."""
        return OptimizeOptions(
            seed_pops=self.seed_pops,
            mode=self.growth,
            time_budget=self.time_budget,
            use_kernels=self.use_kernels,
            vector_threshold=self.vector_threshold,
            fused_probes=self.fused_probes,
            legacy_splits=self.legacy_splits,
        )


@dataclass(frozen=True)
class SynthResult:
    """One synthesized domain plus synthesis metadata."""

    domain: IntervalDomain
    elapsed: float
    timed_out: bool
    proved_empty: bool
    #: Aggregate solver counters of the optimization run (nodes, splits,
    #: vectorized boxes) — the compile-time observability the service
    #: reports roll up.
    stats: SolverStats | None = None


def synth_interval(
    query: BoolExpr,
    secret: SecretSpec,
    *,
    mode: str,
    polarity: bool,
    region: BoolExpr | None = None,
    options: SynthOptions = SynthOptions(),
    engine=None,
    seed_boxes=None,
    oracle=None,
) -> SynthResult:
    """Synthesize one interval domain for one response side.

    ``polarity=True`` targets the secrets answering the query with True;
    ``polarity=False`` the complement.  ``mode`` picks under- or
    over-approximation.  The empty region legitimately synthesizes ⊥.
    ``engine`` optionally shares one solver engine (and its compiled
    kernels) across calls; it must have been built for this secret's
    field order.  ``seed_boxes`` (under mode) warm-starts the maximal-box
    seed search from a caller-guaranteed cover of the target region —
    the iterative synthesizer passes its residue pieces here.

    ``oracle`` is a :class:`~repro.solver.optimize.RegionOracle` for the
    *positive* query; the polarity flip is applied here.  A caller who
    also passes ``region`` must pass an oracle whose geometric
    restrictions encode exactly that region (as the iterative
    synthesizer does) — otherwise leave ``oracle`` unset and the
    optimizers will build their own for the full conjoined target.
    """
    if mode not in ("under", "over"):
        raise ValueError(f"mode must be 'under' or 'over', got {mode!r}")
    target = query if polarity else nnf(Not(query))
    if region is not None:
        target = conjoin((target, region))
    space = Box(secret.bounds())
    names = secret.field_names
    view = oracle if oracle is None or polarity else oracle.negated()

    start = time.perf_counter()
    if mode == "under":
        outcome = maximal_box(
            target, space, names, options.optimizer_options(), engine=engine,
            seed_boxes=seed_boxes, oracle=view,
        )
    else:
        outcome = bounding_box(
            target, space, names, options.optimizer_options(), engine=engine,
            oracle=view,
        )
    elapsed = time.perf_counter() - start

    domain = (
        IntervalDomain.bottom(secret)
        if outcome.box is None
        else IntervalDomain(secret, outcome.box)
    )
    return SynthResult(
        domain=domain,
        elapsed=elapsed,
        timed_out=outcome.timed_out,
        proved_empty=outcome.proved_empty,
        stats=outcome.stats,
    )
