"""Docs stay navigable: every relative link and anchor must resolve.

Walks the repo's markdown surface (README.md, DESIGN.md, ROADMAP.md,
``docs/``) and checks two things per ``[text](target)`` link:

* a relative *file* target exists on disk (external ``http(s)``/``mailto``
  links are out of scope — CI must not depend on the network);
* a ``#fragment`` resolves to a real heading in the target file, using
  GitHub's slugging rules (lowercase, punctuation stripped, spaces to
  dashes, ``-N`` suffixes for duplicates).

This is the test behind the CI docs job: a renamed section or a moved
file breaks the build here, not a reader's click.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    path
    for path in [
        REPO / "README.md",
        REPO / "DESIGN.md",
        REPO / "ROADMAP.md",
        *sorted((REPO / "docs").glob("*.md")),
    ]
    if path.exists()
)

#: ``[text](target)`` links, skipping images; target may carry a fragment.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug for a heading text (with duplicate suffixes)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path) -> set:
    """Every anchor a markdown file exposes (headings, slugged)."""
    seen: dict = {}
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def links_of(path: Path):
    """Every link target in a markdown file, fences excluded."""
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield match.group(1)


def test_doc_surface_exists():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "DESIGN.md", "ROADMAP.md", "OPERATIONS.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_and_anchors_resolve(doc):
    problems = []
    for target in links_of(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{target}: file {path_part!r} not found")
                continue
        else:
            resolved = doc
        if fragment:
            if resolved.suffix != ".md":
                continue  # anchors into non-markdown are out of scope
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{target}: no heading slugs to {fragment!r} "
                    f"in {resolved.name}"
                )
    assert not problems, "\n".join(problems)
