"""Typed serving-path errors and the falsy-domain regression.

Serving invariants used to be ``assert`` statements and string-prefix
dispatch; both disappear or misfire in ways a production runtime can't
afford (``python -O`` strips asserts, refusal reasons are not a stable
protocol).  These tests pin the typed replacements — including under
``PYTHONOPTIMIZE=1``, where a plain ``assert`` would silently vanish.
"""

import os
import subprocess
import sys

import pytest

from repro.core.plugin import CompileError, QueryRegistry
from repro.core.qinfo import QInfo
from repro.domains.box import IntervalDomain
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import (
    AnosyT,
    DowngradeDecision,
    DowngradeInvariantError,
    PolicyViolation,
    UnknownQuery,
    top_knowledge_for,
)
from repro.monad.policy import size_above
from repro.monad.protected import ProtectedSecret
from repro.monad.secure import SecureRuntime
from repro.service.session import SessionManager

SPEC = SecretSpec.declare("TypedErr", x=(0, 9), y=(0, 9))


@pytest.fixture(scope="module")
def registry():
    reg = QueryRegistry()
    reg.compile_and_register("q", "x + y <= 10", SPEC)
    return reg


def _anosy(registry):
    return AnosyT(SecureRuntime(), size_above(3), registry)


class TestCompileError:
    def test_indset_free_artifact_raises(self):
        bare = QInfo("bare", parse_bool("x <= 1"), SPEC, None, None)
        with pytest.raises(CompileError, match="neither 'under' nor 'over'"):
            top_knowledge_for(bare)

    def test_compile_error_is_runtime_error(self):
        assert issubclass(CompileError, RuntimeError)


class TestKindDispatch:
    """``downgrade`` dispatches on the typed ``kind``, not reason text."""

    def test_unknown_query_raises_unknown_query(self, registry):
        session = _anosy(registry)
        secret = ProtectedSecret.seal(SPEC, (1, 1))
        with pytest.raises(UnknownQuery):
            session.downgrade(secret, "ghost")

    def test_policy_kind_raises_policy_violation_despite_reason_text(
        self, registry, monkeypatch
    ):
        # A refusal whose *reason* mimics the unknown-query prefix must
        # still raise PolicyViolation: the string is not the protocol.
        session = _anosy(registry)
        secret = ProtectedSecret.seal(SPEC, (1, 1))
        refusal = DowngradeDecision(
            authorized=False,
            response=None,
            reason="Can't downgrade q",
            kind="policy",
        )
        monkeypatch.setattr(session, "try_downgrade", lambda *a, **k: refusal)
        with pytest.raises(PolicyViolation):
            session.downgrade(secret, "q")

    def test_manager_dispatches_on_kind_too(self, registry, monkeypatch):
        manager = SessionManager(registry=registry, policy=size_above(3))
        manager.open_session("alice", (SPEC, (1, 1)))
        refusal = DowngradeDecision(
            authorized=False,
            response=None,
            reason="Can't downgrade q",
            kind="policy",
        )
        monkeypatch.setattr(manager, "try_downgrade", lambda *a, **k: refusal)
        with pytest.raises(PolicyViolation):
            manager.downgrade("alice", "q")


class TestInvariantErrors:
    def test_authorized_without_response_raises_typed_error(
        self, registry, monkeypatch
    ):
        session = _anosy(registry)
        secret = ProtectedSecret.seal(SPEC, (1, 1))
        broken = DowngradeDecision(authorized=True, response=None, reason="ok")
        monkeypatch.setattr(session, "try_downgrade", lambda *a, **k: broken)
        with pytest.raises(DowngradeInvariantError, match="carries no response"):
            session.downgrade(secret, "q")

    def test_manager_raises_typed_error_too(self, registry, monkeypatch):
        manager = SessionManager(registry=registry, policy=size_above(3))
        manager.open_session("alice", (SPEC, (1, 1)))
        broken = DowngradeDecision(authorized=True, response=None, reason="ok")
        monkeypatch.setattr(manager, "try_downgrade", lambda *a, **k: broken)
        with pytest.raises(DowngradeInvariantError):
            manager.downgrade("alice", "q")


class _FalsyInterval(IntervalDomain):
    """A domain that is falsy when empty — the shape that broke ``or``."""

    def __bool__(self):
        return self.size() > 0


class TestFalsyDomainRegression:
    """A tracked size-0 domain must never silently reset to ⊤.

    ``prior = self.secrets.get(key) or self._top_for(qinfo)`` treated a
    falsy empty domain as "no prior yet" and restarted the attacker's
    knowledge from the full space — an unsound *widening* of tracked
    knowledge.  The fix tests ``is None`` explicitly.
    """

    def _empty(self):
        return _FalsyInterval(SPEC, None)

    def test_empty_domain_is_falsy(self):
        assert not self._empty()
        assert self._empty().size() == 0

    def test_empty_prior_is_not_reset_to_top(self, registry):
        session = _anosy(registry)
        secret = ProtectedSecret.seal(SPEC, (1, 1))
        key = session._key(secret)
        session.secrets[key] = self._empty()
        decision = session.try_downgrade(secret, "q")
        if decision.authorized:
            # Intersecting an empty prior can only yield an empty posterior.
            assert session.secrets[key].size() == 0
        else:
            assert session.secrets[key].size() == 0

    def test_empty_over_prior_is_not_reset_to_top(self, registry):
        session = AnosyT(
            SecureRuntime(), size_above(0), registry, track_over=True
        )
        secret = ProtectedSecret.seal(SPEC, (1, 1))
        key = session._key(secret)
        session.over_knowledge[key] = self._empty()
        session.try_downgrade(secret, "q")
        over = session.over_knowledge.get(key)
        assert over is not None
        assert over.size() == 0


class TestUnderPythonOptimize:
    """The typed invariants survive ``python -O`` (asserts do not)."""

    def _run(self, code):
        env = dict(os.environ)
        env["PYTHONOPTIMIZE"] = "1"
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_compile_error_raises_under_O(self):
        result = self._run(
            "import sys\n"
            "assert sys.flags.optimize == 1\n"
            "from repro.core.plugin import CompileError\n"
            "from repro.core.qinfo import QInfo\n"
            "from repro.lang.parser import parse_bool\n"
            "from repro.lang.secrets import SecretSpec\n"
            "from repro.monad.anosy import top_knowledge_for\n"
            "spec = SecretSpec.declare('O1', x=(0, 3))\n"
            "bare = QInfo('bare', parse_bool('x <= 1'), spec, None, None)\n"
            "try:\n"
            "    top_knowledge_for(bare)\n"
            "except CompileError:\n"
            "    print('TYPED-RAISE-OK')\n"
        )
        assert result.returncode == 0, result.stderr
        assert "TYPED-RAISE-OK" in result.stdout

    def test_invariant_error_raises_under_O(self):
        result = self._run(
            "import sys\n"
            "assert sys.flags.optimize == 1\n"
            "from repro.core.plugin import QueryRegistry\n"
            "from repro.lang.secrets import SecretSpec\n"
            "from repro.monad.anosy import (\n"
            "    DowngradeDecision, DowngradeInvariantError)\n"
            "from repro.monad.policy import size_above\n"
            "from repro.service.session import SessionManager\n"
            "spec = SecretSpec.declare('O2', x=(0, 3))\n"
            "reg = QueryRegistry()\n"
            "reg.compile_and_register('q', 'x <= 1', spec)\n"
            "m = SessionManager(registry=reg, policy=size_above(0))\n"
            "m.open_session('alice', (spec, (1,)))\n"
            "broken = DowngradeDecision(authorized=True, response=None, reason='ok')\n"
            "m.try_downgrade = lambda *a, **k: broken\n"
            "try:\n"
            "    m.downgrade('alice', 'q')\n"
            "except DowngradeInvariantError:\n"
            "    print('TYPED-RAISE-OK')\n"
        )
        assert result.returncode == 0, result.stderr
        assert "TYPED-RAISE-OK" in result.stdout
