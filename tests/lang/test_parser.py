"""Tests for the lexer, parser, and pretty-printer round trip."""

import pytest
from hypothesis import given, settings

from repro.lang.ast import (
    Add,
    And,
    BoolLit,
    Cmp,
    CmpOp,
    Iff,
    Implies,
    InSet,
    IntIte,
    Lit,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Var,
)
from repro.lang.eval import eval_bool
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse, parse_bool, parse_int
from repro.lang.pretty import pretty
from tests.strategies import bool_exprs


class TestLexer:
    def test_token_kinds(self):
        kinds = [t.kind for t in tokenize("x + 1 <= 2 and not y")]
        assert kinds == ["IDENT", "PLUS", "INT", "LE", "INT", "AND", "NOT", "IDENT", "EOF"]

    def test_multi_char_operators(self):
        kinds = [t.kind for t in tokenize("<= < <=> => == !=")]
        assert kinds == ["LE", "LT", "IFF", "IMPLIES", "EQ", "NE", "EOF"]

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("andx and")
        assert tokens[0].kind == "IDENT"
        assert tokens[1].kind == "AND"

    def test_comments_skipped(self):
        kinds = [t.kind for t in tokenize("x # a comment\n + 1")]
        assert kinds == ["IDENT", "PLUS", "INT", "EOF"]

    def test_positions(self):
        tokens = tokenize("ab + cd")
        assert [t.position for t in tokens[:3]] == [0, 3, 5]

    def test_lex_error(self):
        with pytest.raises(LexError):
            tokenize("x $ y")


class TestParserBasics:
    def test_integer_atom(self):
        assert parse_int("42") == Lit(42)

    def test_negative_number(self):
        assert parse_int("-42") == Neg(Lit(42))

    def test_identifier(self):
        assert parse_int("speed") == Var("speed")

    def test_addition_left_assoc(self):
        assert parse_int("a + b + c") == Add(Add(Var("a"), Var("b")), Var("c"))

    def test_precedence_mul_over_add(self):
        assert parse_int("1 + 2 * x") == Add(Lit(1), Scale(2, Var("x")))

    def test_scale_either_side(self):
        assert parse_int("x * 3") == Scale(3, Var("x"))
        assert parse_int("3 * x") == Scale(3, Var("x"))

    def test_nonlinear_rejected(self):
        with pytest.raises(ParseError, match="non-linear"):
            parse_int("x * y")

    def test_abs_call(self):
        assert parse_int("abs(x - 1)") == abs(Var("x") - 1)

    def test_min_max_calls(self):
        assert parse_int("min(x, 3)") == Min(Var("x"), Lit(3))
        assert parse_int("max(x, 3)").left == Var("x")

    def test_if_then_else(self):
        node = parse_int("if x < 0 then -x else x")
        assert isinstance(node, IntIte)

    def test_comparison(self):
        assert parse_bool("x <= 100") == Cmp(CmpOp.LE, Var("x"), Lit(100))

    def test_in_set(self):
        assert parse_bool("c in {1, 2, 3}") == InSet(
            Var("c"), frozenset({1, 2, 3})
        )

    def test_in_set_negative_members(self):
        assert parse_bool("c in {-1, 2}") == InSet(Var("c"), frozenset({-1, 2}))

    def test_boolean_precedence(self):
        # not > and > or
        formula = parse_bool("not a <= 1 and b <= 2 or c <= 3")
        assert isinstance(formula, Or)
        assert isinstance(formula.args[0], And)
        assert isinstance(formula.args[0].args[0], Not)

    def test_implies_right_assoc(self):
        formula = parse_bool("a <= 1 => b <= 2 => c <= 3")
        assert isinstance(formula, Implies)
        assert isinstance(formula.consequent, Implies)

    def test_iff(self):
        assert isinstance(parse_bool("a <= 1 <=> b <= 2"), Iff)

    def test_true_false_literals(self):
        assert parse_bool("true") == BoolLit(True)
        assert parse_bool("false") == BoolLit(False)

    def test_parenthesized_grouping(self):
        formula = parse_bool("a <= 1 and (b <= 2 or c <= 3)")
        assert isinstance(formula, And)
        assert isinstance(formula.args[1], Or)


class TestParserErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("1 + 2 3")

    def test_category_error_int_where_bool(self):
        with pytest.raises(ParseError, match="boolean"):
            parse("not 3")

    def test_category_error_bool_where_int(self):
        with pytest.raises(ParseError, match="integer"):
            parse("1 + (x < 2)")

    def test_missing_paren(self):
        with pytest.raises(ParseError, match="RPAREN"):
            parse("abs(x")

    def test_parse_bool_on_int_expression(self):
        with pytest.raises(ParseError):
            parse_bool("x + 1")

    def test_parse_int_on_bool_expression(self):
        with pytest.raises(ParseError):
            parse_int("x <= 1")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("x + + 1")
        assert excinfo.value.position == 4


class TestRoundTrip:
    def test_paper_query_roundtrip(self, nearby):
        assert parse_bool(pretty(nearby)) == nearby

    @pytest.mark.parametrize(
        "source",
        [
            "abs(x - 200) + abs(y - 200) <= 100",
            "bday >= 260 and bday < 267",
            "gender == 1 and status in {2} and byear >= 1980 and byear <= 1983",
            "language == 1 and education >= 8 and country in {10, 11} and age > 21",
            "not (x <= 1 or y >= 2)",
            "if x < 0 then -x else x <= 5",
        ],
    )
    def test_parse_pretty_fixpoint(self, source):
        first = parse_bool(source)
        assert parse_bool(pretty(first)) == first

    @given(bool_exprs(("x", "y")))
    @settings(max_examples=150, deadline=None)
    def test_pretty_parse_preserves_semantics(self, formula):
        reparsed = parse_bool(pretty(formula))
        for env in ({"x": 0, "y": 0}, {"x": -4, "y": 9}, {"x": 13, "y": 2}):
            assert eval_bool(reparsed, env) == eval_bool(formula, env)
