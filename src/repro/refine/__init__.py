"""Refinement-style specifications and the machine checker.

The Python rendition of the paper's Liquid Haskell layer: refinement
indexes ``<p, n>`` (:mod:`repro.refine.spec`), the Figure 4 specification
constructors (:mod:`repro.refine.figure4`), and an exact checker that
discharges the quantified obligations (:mod:`repro.refine.checker`).
"""

from repro.refine.checker import (
    Certificate,
    CheckOutcome,
    VerificationError,
    check_refinement,
    verify_pair,
    verify_refinement,
)
from repro.refine.figure4 import (
    over_indset_spec,
    overapprox_spec,
    under_indset_spec,
    underapprox_spec,
)
from repro.refine.spec import TRUE_PREDICATE, Refinement

__all__ = [
    "Certificate",
    "CheckOutcome",
    "VerificationError",
    "check_refinement",
    "verify_pair",
    "verify_refinement",
    "over_indset_spec",
    "overapprox_spec",
    "under_indset_spec",
    "underapprox_spec",
    "TRUE_PREDICATE",
    "Refinement",
]
