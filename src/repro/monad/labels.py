"""Security label lattices for the mini-LIO substrate.

The paper stages ``AnosyT`` on top of an IFC monad such as LIO, which is
parameterized by a label lattice.  Two classic lattices are provided:

* :class:`Level` — a totally ordered chain (``PUBLIC ⊑ SECRET`` by
  default, arbitrary chains via :func:`level_chain`);
* :class:`ReaderSet` — a DC-labels-style lattice of permitted readers,
  where data may flow to a label with *fewer* readers
  (``L1 ⊑ L2  ⟺  readers(L2) ⊆ readers(L1)``).

Both implement the :class:`Label` interface (``can_flow_to``, ``join``,
``meet``) the runtime needs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet

__all__ = ["Label", "Level", "PUBLIC", "SECRET", "level_chain", "ReaderSet"]


class Label(abc.ABC):
    """A point in a security lattice."""

    @abc.abstractmethod
    def can_flow_to(self, other: "Label") -> bool:
        """The partial order ``self ⊑ other``."""

    @abc.abstractmethod
    def join(self, other: "Label") -> "Label":
        """Least upper bound."""

    @abc.abstractmethod
    def meet(self, other: "Label") -> "Label":
        """Greatest lower bound."""


@dataclass(frozen=True, order=True)
class Level(Label):
    """A label in a total order, e.g. ``PUBLIC ⊑ CONFIDENTIAL ⊑ SECRET``."""

    rank: int
    name: str = ""

    def can_flow_to(self, other: Label) -> bool:
        return isinstance(other, Level) and self.rank <= other.rank

    def join(self, other: Label) -> "Level":
        if not isinstance(other, Level):
            raise TypeError("cannot join labels from different lattices")
        return self if self.rank >= other.rank else other

    def meet(self, other: Label) -> "Level":
        if not isinstance(other, Level):
            raise TypeError("cannot meet labels from different lattices")
        return self if self.rank <= other.rank else other

    def __repr__(self) -> str:
        return self.name or f"Level({self.rank})"


PUBLIC = Level(0, "PUBLIC")
SECRET = Level(1, "SECRET")


def level_chain(*names: str) -> tuple[Level, ...]:
    """A totally ordered chain of labels from low to high."""
    return tuple(Level(rank, name) for rank, name in enumerate(names))


@dataclass(frozen=True)
class ReaderSet(Label):
    """DC-labels-lite: the set of principals allowed to read the data.

    ``None`` readers means "everyone" (the lattice bottom, public data).
    Information may flow towards labels that permit *fewer* readers.
    """

    readers: FrozenSet[str] | None = None

    @classmethod
    def anyone(cls) -> "ReaderSet":
        """The public label (anyone may read)."""
        return cls(None)

    @classmethod
    def only(cls, *principals: str) -> "ReaderSet":
        """Data readable only by the given principals."""
        return cls(frozenset(principals))

    def can_flow_to(self, other: Label) -> bool:
        if not isinstance(other, ReaderSet):
            return False
        if self.readers is None:
            return True  # public flows anywhere
        if other.readers is None:
            return False  # secrets cannot become public
        return other.readers <= self.readers

    def join(self, other: Label) -> "ReaderSet":
        if not isinstance(other, ReaderSet):
            raise TypeError("cannot join labels from different lattices")
        if self.readers is None:
            return other
        if other.readers is None:
            return self
        return ReaderSet(self.readers & other.readers)

    def meet(self, other: Label) -> "ReaderSet":
        if not isinstance(other, ReaderSet):
            raise TypeError("cannot meet labels from different lattices")
        if self.readers is None or other.readers is None:
            return ReaderSet(None)
        return ReaderSet(self.readers | other.readers)

    def __repr__(self) -> str:
        if self.readers is None:
            return "ReaderSet(anyone)"
        return f"ReaderSet({sorted(self.readers)})"
