"""Non-boolean queries with finitely many outputs (section 5.1 extension).

The paper: "The query language can be easily extended to support
non-boolean queries with finitely many outputs.  This can be done by
computing one ind. set per possible output."  This module implements that
extension: a *k-ary query* is an integer expression over the secret whose
range (on the secret space) is small; compilation synthesizes and
verifies one knowledge approximation per output value.

The per-output specs instantiate Figure 4 with the boolean query
``expr == v``: the under-approximated ind. set for output ``v`` may only
contain secrets mapping to ``v``; the over-approximated one must contain
all of them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.lang.ast import IntExpr
from repro.lang.eval import eval_int
from repro.lang.secrets import SecretSpec, SecretValue
from repro.lang.validate import QueryValidationError, validate_query
from repro.domains.base import AbstractDomain
from repro.refine.checker import CheckOutcome, verify_refinement
from repro.refine.spec import Refinement
from repro.core.itersynth import iter_synth_powerset
from repro.core.qinfo import intersect_knowledge
from repro.core.synth import SynthOptions, synth_interval
from repro.lang.ast import Not
from repro.lang.transform import nnf
from repro.solver.abseval import eval_int_abs
from repro.solver.boxes import Box
from repro.solver.decide import decide_exists, make_engine

__all__ = ["KaryQInfo", "KaryCompiledQuery", "compile_kary_query", "MAX_OUTPUTS"]

#: Guard against "finitely many" degenerating into "one ind. set per
#: point of a huge range" — the paper's extension presumes small output
#: alphabets (enum-like).
MAX_OUTPUTS = 64


@dataclass(frozen=True)
class KaryQInfo:
    """A k-ary query with one verified ind. set per output value."""

    name: str
    expr: IntExpr
    secret: SecretSpec
    under_indsets: Mapping[int, AbstractDomain]
    over_indsets: Mapping[int, AbstractDomain]

    @property
    def outputs(self) -> tuple[int, ...]:
        """The possible outputs, ascending."""
        return tuple(sorted(self.under_indsets))

    def run(self, secret_value: SecretValue | Mapping[str, int]) -> int:
        """Evaluate the query on a concrete secret."""
        return eval_int(self.expr, self.secret.to_env(secret_value))

    def underapprox(self, prior: AbstractDomain) -> dict[int, AbstractDomain]:
        """Posterior under-approximations, one per possible output."""
        return {
            output: intersect_knowledge(prior, indset)
            for output, indset in self.under_indsets.items()
        }

    def overapprox(self, prior: AbstractDomain) -> dict[int, AbstractDomain]:
        """Posterior over-approximations, one per possible output."""
        return {
            output: intersect_knowledge(prior, indset)
            for output, indset in self.over_indsets.items()
        }


@dataclass(frozen=True)
class KaryCompiledQuery:
    """Compile result: the QInfo plus per-output verification outcomes."""

    qinfo: KaryQInfo
    outcomes: Mapping[str, CheckOutcome]
    synth_time: float

    @property
    def name(self) -> str:
        """Registry name of the query."""
        return self.qinfo.name

    @property
    def verified(self) -> bool:
        """Whether every per-output obligation was discharged."""
        return all(outcome.verified for outcome in self.outcomes.values())


def _discover_outputs(expr: IntExpr, secret: SecretSpec) -> tuple[int, ...]:
    """The exact output alphabet of ``expr`` on the secret space."""
    space = Box(secret.bounds())
    names = secret.field_names
    lo, hi = eval_int_abs(expr, dict(zip(names, space.bounds)))
    if hi - lo + 1 > MAX_OUTPUTS * 8:
        raise QueryValidationError(
            f"output range [{lo}, {hi}] is too wide for a k-ary query"
        )
    # One engine for the whole sweep: every candidate formula ``expr == v``
    # shares the compiled kernels of ``expr``, so the per-value cost is one
    # comparison node, not a full lowering.
    engine = make_engine(names)
    outputs = [
        value
        for value in range(lo, hi + 1)
        if decide_exists(expr.eq(value), space, names, engine=engine)
    ]
    if len(outputs) > MAX_OUTPUTS:
        raise QueryValidationError(
            f"{len(outputs)} distinct outputs exceed the limit of {MAX_OUTPUTS}"
        )
    return tuple(outputs)


def compile_kary_query(
    name: str,
    expr: IntExpr,
    secret: SecretSpec,
    *,
    domain: str = "interval",
    k: int = 3,
    synth: SynthOptions = SynthOptions(),
) -> KaryCompiledQuery:
    """Compile a k-ary query: one verified ind.-set pair per output."""
    if not isinstance(expr, IntExpr):
        raise QueryValidationError("k-ary queries must be integer expressions")
    # Reuse the boolean validator on a trivial wrapping to check fields,
    # size, and literal guards.
    validate_query(expr.eq(0), secret)
    outputs = _discover_outputs(expr, secret)
    if not outputs:
        raise QueryValidationError("query has no feasible outputs")

    start = time.perf_counter()
    under: dict[int, AbstractDomain] = {}
    over: dict[int, AbstractDomain] = {}
    outcomes: dict[str, CheckOutcome] = {}
    # One engine for the whole per-output loop: every ``expr == v``
    # formula (synthesis and verification alike) shares the compiled
    # kernels of ``expr``, so each extra output costs one comparison
    # node, not a re-lowering of the query.
    engine = make_engine(
        secret.field_names, synth.use_kernels, legacy_splits=synth.legacy_splits
    )
    for output in outputs:
        is_output = expr.eq(output)
        if domain == "interval":
            under[output] = synth_interval(
                is_output, secret, mode="under", polarity=True, options=synth,
                engine=engine,
            ).domain
            over[output] = synth_interval(
                is_output, secret, mode="over", polarity=True, options=synth,
                engine=engine,
            ).domain
        else:
            under[output] = iter_synth_powerset(
                is_output, secret, k=k, mode="under", polarity=True, options=synth,
                engine=engine,
            ).domain
            over[output] = iter_synth_powerset(
                is_output, secret, k=k, mode="over", polarity=True, options=synth,
                engine=engine,
            ).domain
        outcomes[f"under[{output}]"] = verify_refinement(
            under[output], Refinement(positive=is_output), engine=engine
        )
        outcomes[f"over[{output}]"] = verify_refinement(
            over[output], Refinement(negative=nnf(Not(is_output))), engine=engine
        )
    synth_time = time.perf_counter() - start

    qinfo = KaryQInfo(
        name=name,
        expr=expr,
        secret=secret,
        under_indsets=under,
        over_indsets=over,
    )
    return KaryCompiledQuery(qinfo=qinfo, outcomes=outcomes, synth_time=synth_time)
