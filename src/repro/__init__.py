"""ANOSY: approximated knowledge synthesis for declassification.

A Python reproduction of "ANOSY: Approximated Knowledge Synthesis with
Refinement Types for Declassification" (PLDI 2022).  The public surface
mirrors the paper's workflow:

1. declare a secret type (:class:`~repro.lang.secrets.SecretSpec`) and a
   boolean query over it (the :mod:`repro.lang` DSL or text syntax);
2. compile the query (:func:`~repro.core.plugin.compile_query`): ANOSY
   synthesizes machine-checked under/over-approximations of the
   knowledge an attacker gains from each response;
3. run declassifications through the bounded ``downgrade`` of
   :class:`~repro.monad.anosy.AnosyT` under a quantitative policy.

See README.md for a quickstart and DESIGN.md for the architecture.
"""

from repro.core import CompileOptions, QueryRegistry, compile_query
from repro.domains import AInt, IntervalDomain, PowersetDomain
from repro.lang import SecretSpec, parse_bool, pretty, var
from repro.monad import (
    AnosyT,
    PolicyViolation,
    ProtectedSecret,
    SecureRuntime,
    UnknownQuery,
    size_above,
    size_at_least,
)
from repro.server import (
    DeclassificationServer,
    PrivacyBudgetLedger,
    ServerConfig,
    SQLiteStore,
)
from repro.service import (
    DeclassificationService,
    SessionManager,
    SynthesisCache,
)

__version__ = "1.0.0"

__all__ = [
    "CompileOptions",
    "QueryRegistry",
    "compile_query",
    "AInt",
    "IntervalDomain",
    "PowersetDomain",
    "SecretSpec",
    "parse_bool",
    "pretty",
    "var",
    "AnosyT",
    "PolicyViolation",
    "ProtectedSecret",
    "SecureRuntime",
    "UnknownQuery",
    "size_above",
    "size_at_least",
    "DeclassificationServer",
    "PrivacyBudgetLedger",
    "ServerConfig",
    "SQLiteStore",
    "DeclassificationService",
    "SessionManager",
    "SynthesisCache",
    "__version__",
]
