"""Differential suite: vectorized fleet ticks vs the scalar reference.

The structure-of-arrays warm path (:meth:`SessionManager.downgrade_batch`
with ``vectorized=True``) must be *bit-identical* to the per-session
scalar loop: same decisions (including the typed ``kind``), same
posterior domains, same audit records, under every serving discipline.
These properties drive random fleets through both paths — mixed priors,
spec mismatches, refusals, unknown queries, mid-sequence closes, and
scalar/vectorized interleaving — and compare everything observable.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plugin import CompileOptions, QueryRegistry
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.service.session import SessionManager
from repro.service.soa import FleetStore
from repro.solver.vectoreval import AVAILABLE

pytestmark = pytest.mark.skipif(not AVAILABLE, reason="NumPy not installed")

SPEC = SecretSpec.declare("DiffFleet", x=(0, 15), y=(0, 15))
OTHER_SPEC = SecretSpec.declare("DiffOther", a=(0, 7))

#: Query menu: an interval query, a powerset query (so fleets mix domain
#: kinds across sessions), a narrow query whose posteriors trip strict
#: policies, and a name the registry has never seen.
QUERIES = ["qa", "qb", "qc", "nosuch"]
THRESHOLDS = [1, 40, 200]


@pytest.fixture(scope="module")
def registry():
    reg = QueryRegistry()
    reg.compile_and_register("qa", "x + y <= 12", SPEC)
    reg.compile_and_register(
        "qb",
        "x - y >= 2",
        SPEC,
        options=CompileOptions(domain="powerset", k=3),
    )
    reg.compile_and_register("qc", "x <= 2 and y <= 2", SPEC)
    return reg


def _fleet(points):
    secrets = {f"u{i}": (SPEC, point) for i, point in enumerate(points)}
    secrets["mm"] = (OTHER_SPEC, (3,))
    return secrets


def _managers(registry, threshold, check_both, points):
    managers = []
    for vectorized in (False, True):
        manager = SessionManager(
            registry=registry,
            policy=size_above(threshold),
            check_both=check_both,
            vectorized=vectorized,
        )
        manager.open_sessions(_fleet(points))
        managers.append(manager)
    return managers


def _assert_parity(scalar, vectorized):
    assert scalar.sessions.keys() == vectorized.sessions.keys()
    for sid, session in scalar.sessions.items():
        other = vectorized.sessions[sid]
        assert session.knowledge == other.knowledge, sid
        assert session.history == other.history, sid


@st.composite
def fleet_scripts(draw):
    """A random fleet plus a random sequence of (query, ids) ticks."""
    points = draw(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=3,
            max_size=8,
        )
    )
    ids = [f"u{i}" for i in range(len(points))] + ["mm"]
    ticks = draw(
        st.lists(
            st.tuples(
                st.sampled_from(QUERIES),
                st.one_of(
                    st.none(),
                    st.lists(st.sampled_from(ids), min_size=1, max_size=len(ids)),
                ),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return points, ticks


class TestDifferentialParity:
    @settings(deadline=None, max_examples=60)
    @given(
        script=fleet_scripts(),
        threshold=st.sampled_from(THRESHOLDS),
        check_both=st.booleans(),
    )
    def test_random_fleets_are_bit_identical(
        self, registry, script, threshold, check_both
    ):
        points, ticks = script
        scalar, vectorized = _managers(registry, threshold, check_both, points)
        for query, tick_ids in ticks:
            expected = scalar.downgrade_batch(query, tick_ids)
            actual = vectorized.downgrade_batch(query, tick_ids)
            assert expected == actual
        _assert_parity(scalar, vectorized)

    @settings(deadline=None, max_examples=30)
    @given(
        script=fleet_scripts(),
        toggles=st.lists(st.booleans(), min_size=6, max_size=6),
        threshold=st.sampled_from(THRESHOLDS),
    )
    def test_interleaved_scalar_and_vectorized_ticks(
        self, registry, script, toggles, threshold
    ):
        """Flipping ``vectorized`` mid-stream exercises the store re-sync
        (scalar ticks mutate knowledge behind the SoA mirror's back)."""
        points, ticks = script
        scalar, mixed = _managers(registry, threshold, True, points)
        for (query, tick_ids), toggle in zip(ticks, toggles):
            mixed.vectorized = toggle
            assert scalar.downgrade_batch(query, tick_ids) == mixed.downgrade_batch(
                query, tick_ids
            )
        _assert_parity(scalar, mixed)

    @settings(deadline=None, max_examples=30)
    @given(
        script=fleet_scripts(),
        seed=st.integers(0, 2**16),
        threshold=st.sampled_from(THRESHOLDS),
    )
    def test_parity_survives_mid_sequence_closes(
        self, registry, script, seed, threshold
    ):
        """Closing sessions between ticks (swap-remove in the store) must
        not perturb the surviving sessions' outcomes."""
        points, ticks = script
        scalar, vectorized = _managers(registry, threshold, True, points)
        rng = random.Random(seed)
        for query, _ in ticks:
            open_ids = list(scalar.sessions)
            if len(open_ids) > 2 and rng.random() < 0.5:
                victim = rng.choice(open_ids)
                closed_s = scalar.close_session(victim)
                closed_v = vectorized.close_session(victim)
                assert closed_s.history == closed_v.history
            assert scalar.downgrade_batch(query) == vectorized.downgrade_batch(query)
        _assert_parity(scalar, vectorized)


class TestDecisionKinds:
    def test_policy_refusal_kind(self, registry):
        scalar, vectorized = _managers(registry, 200, True, [(0, 0), (9, 9)])
        for manager in (scalar, vectorized):
            decision = manager.downgrade_batch("qc")["u0"]
            assert not decision.authorized
            assert decision.kind == "policy"

    def test_unknown_query_kind(self, registry):
        _, vectorized = _managers(registry, 1, True, [(0, 0), (9, 9)])
        decision = vectorized.downgrade_batch("nosuch")["u0"]
        assert decision.kind == "unknown_query"
        assert not decision.authorized

    def test_spec_mismatch_kind(self, registry):
        _, vectorized = _managers(registry, 1, True, [(0, 0), (9, 9)])
        decision = vectorized.downgrade_batch("qa")["mm"]
        assert decision.kind == "spec_mismatch"
        assert "DiffOther" in decision.reason

    def test_authorized_kind_is_ok(self, registry):
        _, vectorized = _managers(registry, 1, True, [(0, 0), (9, 9)])
        decision = vectorized.downgrade_batch("qa")["u0"]
        assert decision.authorized
        assert decision.kind == "ok"


class TestSharedOutcomeObjects:
    def test_same_prior_group_shares_frozen_decisions(self, registry):
        """Sessions in one distinct-prior group with the same response get
        the *same* decision/record objects — equality with the scalar path
        is what matters, identity is the SoA economy."""
        _, vectorized = _managers(registry, 1, True, [(0, 0), (1, 1), (15, 15)])
        decisions = vectorized.downgrade_batch("qa")
        assert decisions["u0"] is decisions["u1"]
        assert decisions["u0"] == decisions["u1"]
        assert decisions["u0"].response is True
        assert decisions["u2"].response is False
        s0 = vectorized.session("u0")
        s1 = vectorized.session("u1")
        assert s0.history[-1] is s1.history[-1]
        assert s0.knowledge is s1.knowledge

    def test_plan_cache_reuses_posteriors_across_ticks(self, registry):
        _, vectorized = _managers(registry, 1, True, [(0, 0), (1, 1)])
        vectorized.downgrade_batch("qa")
        first = vectorized.session("u0").knowledge
        # A second fleet at the same prior must hit the cached plan and
        # intern to the identical posterior object.
        vectorized.open_sessions({"w0": (SPEC, (0, 1)), "w1": (SPEC, (1, 0))})
        vectorized.downgrade_batch("qa", ["w0", "w1"])
        assert vectorized.session("w0").knowledge is first


class TestFleetStore:
    def test_intern_is_equality_keyed(self):
        from repro.domains.box import IntervalDomain

        store = FleetStore(SPEC)
        assert store.intern(None) == 0
        first = IntervalDomain.top(SPEC)
        second = IntervalDomain.top(SPEC)
        assert first is not second
        assert store.intern(first) == store.intern(second) == 1
        assert store.domain(1) is first

    def test_add_discard_swap_remove(self):
        store = FleetStore(SPEC)
        for i in range(5):
            store.add(f"s{i}", (i, i), None)
        assert store.size == 5
        store.discard("s1")
        assert store.size == 4
        assert store.index["s4"] == 1  # swapped into the hole
        assert tuple(store.secrets[1]) == (4, 4)
        store.discard("missing")  # no-op
        assert store.size == 4

    def test_grow_preserves_rows(self):
        store = FleetStore(OTHER_SPEC)
        for i in range(200):  # crosses the initial capacity
            store.add(f"s{i}", (i % 8,), None)
        assert store.size == 200
        assert store.index["s150"] == 150
        assert tuple(store.secrets[150]) == (150 % 8,)
