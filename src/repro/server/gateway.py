"""The asyncio gateway: one event loop in front of shards, store, ledger.

This is the composition root of the serving runtime::

    clients ──► DeclassificationServer (asyncio)
                  │ compile path          │ downgrade path (per-tick batches)
                  ▼                       ▼
            ShardedCompilePool      ServingShardPool ── or ── SessionManager
              (process shards)      (process shards,          (gateway-local,
                  │                  routed by user id)        the default)
                  │                       │  SessionManager          │
                  │                       │  + shard ledger          │
                  │                       ▼                          ▼
                  │                 PrivacyBudgetLedger ◄── admission/commit
                  │                  (durable gateway mirror)
                  ▼                       │ ledger deltas
            SynthesisCache ◄──────────────┤
                  │ write-through / warm start / ledger_bounds
                  ▼
              SQLiteStore

Two amortization mechanisms live here, both pure event-loop state:

* **in-flight coalescing** — concurrent compile requests for the same
  *canonical* problem (same cache key) collapse onto one shard job; every
  waiter registers its own name against the one artifact;
* **tick batching** — downgrade requests are queued, and each tick serves
  all requests for one query through a single
  :meth:`~repro.service.api.DeclassificationService.handle_batch` pass,
  so a thousand concurrent askers of one query cost one ind.-set fetch
  and one memoized intersection per distinct prior.

The ledger interposes on every downgrade: admission is checked (on both
potential posteriors — secret-independent) *before* the batch runs, and
answered queries are committed after.  A budget refusal therefore never
reaches the session layer at all: the session's knowledge, the user's
bounds, and the response are all untouched — only the refusal itself is
observable.

**Where downgrades execute** is configurable.  By default
(``serving_shards=0``) batches run on gateway worker threads against the
service's own :class:`~repro.service.session.SessionManager` — simple,
and right for small deployments.  With ``serving_shards=N`` the warm
path moves off the gateway entirely: sessions route by
:func:`~repro.server.workers.serve_shard_of` over the durable user id to
one of N single-process serving shards, each owning the sessions *and*
the ledger accounts of its users, so batch evaluation runs under N
independent GILs.  Shards are enforcement-authoritative; the gateway
keeps a durable *mirror* ledger and folds the bound deltas each shard
returns into it (write-through to the store), so durability needs no
cross-process SQLite writers.

Restart story: everything the runtime must not lose — compiled artifacts
and ledger bounds — lives in the store; everything else (sessions,
queues, in-flight futures, shard-local serving state) is ephemeral by
design.  Boot = construct a server on the same store path; the cache
preloads every artifact, previously-served queries register with zero
shard jobs, and the mirror ledger reloads every user's bounds — a
restarted server refuses exactly what the killed one refused (the
kill-and-restart tests in ``tests/server/test_gateway.py`` assert
exactly that).

With a :class:`~repro.server.journal.RequestJournal` attached the
restart story extends to *requests in flight*: every state-changing
request is appended (with an idempotency key) before executing and
acknowledged after the durable-mirror fold, duplicate deliveries
short-circuit to recorded responses, :meth:`recover_from_journal`
re-applies a dead process's unacknowledged suffix, and the whole
acknowledged history replays deterministically
(:class:`~repro.server.replay.ReplaySession`, DESIGN.md §12).

The same durability split powers *mid-flight* recovery (see
:mod:`repro.server.supervise` and DESIGN.md §10): every shard job runs
under a :class:`~repro.server.supervise.ShardSupervisor` with a
per-job deadline, bounded retries, and a per-shard circuit breaker.  A
dead or hung shard is killed and replaced, the replacement is
*rehydrated* from durable gateway state (configure, re-attach
artifacts, re-open sessions with fresh mirror-bound snapshots — never
looser, by construction), and the batch is retried; once a shard's
breaker opens, its work degrades onto the gateway-local
``serving_shards=0`` path (compiles: inline execution) until a
half-open probe succeeds.  Past a degraded-capacity watermark the
gateway sheds with :class:`ServerDegraded`, whose ``retry_after``
carries the earliest breaker probe time.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.plugin import CompileOptions
from repro.lang.canonical import (
    expr_from_json,
    expr_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec, SecretValue
from repro.monad.anosy import DowngradeInvariantError
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import ProtectedSecret
from repro.obs.hub import MetricsHub
from repro.obs.trace import span_id_for, trace_id_for
from repro.server import faults
from repro.server.faults import FaultPlan
from repro.server.journal import RequestJournal, live_state
from repro.server.ledger import DecayPolicy, PrivacyBudgetLedger
from repro.server.supervise import RetryPolicy, ShardSupervisor
from repro.server.workers import (
    ServingShardPool,
    ShardedCompilePool,
    ShardOverloaded,
    compile_payload,
    result_kind,
    rounds_by_user,
)
from repro.service.api import (
    BatchDowngradeRequest,
    CompileRequest,
    DeclassificationService,
    DowngradeResult,
)
from repro.service.cache import CacheBackend, SynthesisCache
from repro.service.serialize import (
    compiled_query_to_json,
    downgrade_result_from_json,
    downgrade_result_to_json,
    options_from_json,
    options_to_json,
    payload_digest,
    policy_to_json,
)
from repro.service.session import Session

__all__ = [
    "ServerOverloaded",
    "ServerDegraded",
    "ServerConfig",
    "ServerCompileReceipt",
    "ServerStats",
    "JournalRecovery",
    "DeclassificationServer",
]


class ServerOverloaded(RuntimeError):
    """Load shedding: the downgrade queue reached its configured bound."""


class ServerDegraded(ServerOverloaded):
    """Load shedding under degraded capacity (serving shards down).

    Raised instead of :class:`ServerOverloaded` when the queue bound was
    *scaled down* because too many serving-shard circuit breakers are
    open.  ``retry_after`` is the ``Retry-After``-style hint: seconds
    until the earliest half-open breaker probe, i.e. the soonest instant
    shed capacity might return.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the serving runtime."""

    #: Compile shards (single-worker processes, routed by content hash).
    shards: int = 1
    #: Per-shard in-flight bound before compile jobs are shed.
    max_pending_compiles: int = 8
    #: Total queued downgrade requests before the gateway sheds.
    max_queued_downgrades: int = 10_000
    #: Seconds between background ticks when :meth:`start`-ed.
    tick_interval: float = 0.002
    #: Run compiles synchronously in-process instead of shard processes.
    inline_compiles: bool = False
    #: Serving shards (single-worker processes, routed by user id).
    #: 0 = serve batches on gateway worker threads (the default).
    serving_shards: int = 0
    #: Run serving-shard payloads synchronously in-process (tests,
    #: single-core deployments); only meaningful with ``serving_shards``.
    inline_serving: bool = False
    #: Approximation mode driving enforcement (the paper uses ``under``).
    mode: str = "under"
    #: Check the policy on both posteriors before running a query.
    check_both: bool = True
    #: Per-job wall-clock deadline for compile shard jobs (None = none).
    compile_deadline: float | None = None
    #: Per-batch wall-clock deadline for serving shard jobs (None = none).
    serving_deadline: float | None = None
    #: Supervised retries per shard job after the first attempt.
    max_retries: int = 2
    #: Base backoff between retries (exponential, seeded jitter on top).
    retry_backoff: float = 0.02
    #: Consecutive failures before a shard's circuit breaker opens.
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before its half-open probe.
    breaker_cooldown: float = 0.25
    #: Fraction of serving shards open before degraded load shedding
    #: kicks in (the queue bound scales by the healthy fraction).
    degraded_watermark: float = 0.5
    #: In-memory audit-trail ring size (``None`` = unbounded).  Evicted
    #: events spill to the journal's ``audit_spill`` table when the
    #: server is journaled, and are counted as dropped otherwise.
    audit_capacity: int | None = 100_000
    #: Run the observability stack (``repro.obs``): metrics registry,
    #: replay-stable tracing, shard piggyback.  ``False`` swaps in the
    #: null registry/tracer — the uninstrumented baseline the
    #: ``serving_observed`` benchmark gate compares against.
    observe: bool = True


@dataclass(frozen=True)
class ServerCompileReceipt:
    """What one gateway compile cost, and which mechanism paid for it.

    Exactly one of ``cache_hit``/``coalesced`` is True unless the shard
    pool actually ran synthesis (both False).  ``shard`` is set only when
    this request submitted the job.
    """

    name: str
    cache_hit: bool
    coalesced: bool
    shard: int | None
    verified: bool
    synth_time: float
    verify_time: float

    def to_json(self) -> dict[str, Any]:
        """Encode for the journal's recorded-response slot (exact)."""
        return {
            "name": self.name,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "shard": self.shard,
            "verified": self.verified,
            "synth_time": self.synth_time,
            "verify_time": self.verify_time,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ServerCompileReceipt":
        """Decode a receipt recorded by :meth:`to_json`."""
        shard = data["shard"]
        return cls(
            name=data["name"],
            cache_hit=bool(data["cache_hit"]),
            coalesced=bool(data["coalesced"]),
            shard=None if shard is None else int(shard),
            verified=bool(data["verified"]),
            synth_time=float(data["synth_time"]),
            verify_time=float(data["verify_time"]),
        )


@dataclass
class ServerStats:
    """Gateway counters (monotone over the server's lifetime)."""

    compiles: int = 0
    compile_cache_hits: int = 0
    compile_coalesced: int = 0
    compile_shed: int = 0
    downgrades_served: int = 0
    budget_refusals: int = 0
    ticks: int = 0
    #: Artifacts preloaded from the store at boot.
    warm_entries: int = 0
    #: Shard executors killed and replaced by the supervisor.
    shard_restarts: int = 0
    #: Downgrade batches served on the gateway-local degraded path.
    degraded_batches: int = 0
    #: Compiles served inline because a compile shard was unavailable.
    degraded_compiles: int = 0
    #: Downgrades shed by the *degraded* (scaled-down) queue bound.
    degraded_shed: int = 0
    #: Requests appended to the write-ahead journal.
    journal_appends: int = 0
    #: Duplicate idempotency keys answered from the recorded response.
    journal_duplicates: int = 0
    #: Pending journal entries re-applied by :meth:`recover_from_journal`.
    journal_recovered: int = 0


@dataclass(frozen=True)
class JournalRecovery:
    """What one :meth:`~DeclassificationServer.recover_from_journal` did."""

    #: Queries re-registered from acknowledged journal history.
    queries: int
    #: Sessions re-opened from acknowledged journal history.
    sessions: int
    #: Unacknowledged entries re-applied through the journaled path.
    reapplied: int
    #: Distinct authorized (session, query) pairs whose knowledge fold
    #: was rebuilt, making the recovered gateway a seamless continuation.
    refolded: int = 0


@dataclass
class _PendingDowngrade:
    session_id: str
    future: asyncio.Future = field(repr=False)
    #: Idempotency key of the journaled request this waiter carries
    #: (``None`` on unjournaled servers and internal re-applies).
    journal_key: str | None = None
    #: Set once the entry is appended; guards against double appends
    #: when a waiter is requeued by a cancelled flush.
    journal_seq: int | None = None
    #: Deterministic trace id (journaled: derived from key + seq at
    #: append time; unjournaled: from a local monotone counter).
    trace_id: str | None = None


def _compile_outcome(receipt: ServerCompileReceipt) -> dict[str, Any]:
    """The deterministic outcome encoding of a compile (digested).

    Excludes ``cache_hit``/``coalesced``/``shard`` and the timings: which
    mechanism paid for an artifact (and how long it took) varies between
    a cold run and its replay; *what was registered* must not.
    """
    return {"kind": "compile", "name": receipt.name, "verified": receipt.verified}


def _configure_outcome(payload: dict[str, Any]) -> dict[str, Any]:
    """The deterministic outcome encoding of a configure entry."""
    return {"kind": "configure", "digest": payload_digest(payload)}


def _compile_request(payload: dict[str, Any]) -> CompileRequest:
    """Decode a journaled compile payload back into a request."""
    return CompileRequest(
        name=payload["name"],
        query=expr_from_json(payload["query"]),
        secret=spec_from_json(payload["secret"]),
        options=(
            None
            if payload["options"] is None
            else options_from_json(payload["options"])
        ),
    )


class DeclassificationServer:
    """Sharded asynchronous declassification over a persistent store.

    Layers a coalescing/batching asyncio gateway, a sharded compile pool,
    and a privacy-budget ledger on top of the synchronous
    :class:`~repro.service.api.DeclassificationService` (which keeps
    owning sessions and the audit trail).
    """

    def __init__(
        self,
        policy: QuantitativePolicy,
        *,
        budget_floor: QuantitativePolicy | None = None,
        budget_decay: DecayPolicy | None = None,
        store: CacheBackend | None = None,
        options: CompileOptions = CompileOptions(),
        config: ServerConfig = ServerConfig(),
        fault_plan: FaultPlan | None = None,
        journal: RequestJournal | None = None,
    ):
        self.config = config
        self.default_options = options
        self.store = store
        self.budget_decay = budget_decay
        #: The telemetry fold point: one registry + tracer for every
        #: gateway-side layer, absorbing shard piggybacks.  Disabled, it
        #: hands out the null registry/tracer and all recording vanishes.
        self.hub = MetricsHub(enabled=config.observe)
        cache = SynthesisCache(backend=store)
        self.service = DeclassificationService(
            policy,
            options=options,
            cache=cache,
            mode=config.mode,
            check_both=config.check_both,
            audit_capacity=config.audit_capacity,
        )
        self.service.metrics = self.hub.registry
        # A store that also speaks LedgerBackend (e.g. SQLiteStore) makes
        # the ledger durable; a plain artifact backend leaves it in-memory.
        ledger_store = store if hasattr(store, "put_ledger_bound") else None
        self.ledger = (
            None
            if budget_floor is None
            else PrivacyBudgetLedger(
                budget_floor, store=ledger_store, decay=budget_decay
            )
        )
        if self.ledger is not None:
            self.ledger.metrics = self.hub.registry
        if store is not None and hasattr(store, "metrics"):
            store.metrics = self.hub.registry
        self.pool = ShardedCompilePool(
            config.shards,
            max_pending=config.max_pending_compiles,
            inline=config.inline_compiles,
        )
        self.pool.metrics = self.hub.registry
        self.serving_pool: ServingShardPool | None = None
        if config.serving_shards > 0:
            # Fail at construction, not first flush: shard serving ships
            # the policies as JSON, so they need structural encodings.
            policy_to_json(policy)
            if budget_floor is not None:
                policy_to_json(budget_floor)
            self.serving_pool = ServingShardPool(
                config.serving_shards, inline=config.inline_serving
            )
        #: Chaos schedule shipped inside every shard job payload.
        self.fault_plan = fault_plan
        self.pool.fault_plan = fault_plan
        if self.serving_pool is not None:
            self.serving_pool.fault_plan = fault_plan
        #: Deadline/retry/breaker driver for every shard submission.
        self.supervisor = ShardSupervisor(
            retry=RetryPolicy(
                max_retries=config.max_retries, base_delay=config.retry_backoff
            ),
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
            seed=fault_plan.seed if fault_plan is not None else 0,
            metrics=self.hub.registry,
        )
        #: Shard-mode sessions currently adopted by the gateway-local
        #: manager because their shard's breaker is (or was) open.
        self._degraded_sessions: set[str] = set()
        self.stats = ServerStats(warm_entries=len(cache))
        #: Session id → durable user id for the ledger.
        self._users: dict[str, str] = {}
        #: Shard-mode session handles (the shard owns the live state).
        self._shard_sessions: dict[str, Session] = {}
        #: Pending ops per serving shard, shipped before its next batch.
        self._shard_ops: dict[int, list[dict[str, Any]]] = {}
        #: Serving shards whose configure op has been queued.
        self._shard_configured: set[int] = set()
        #: Query names attached (artifact shipped) per serving shard.
        self._shard_queries: dict[int, set[str]] = {}
        #: The write-ahead request journal (None = unjournaled server).
        self.journal = journal
        if journal is not None:
            journal.metrics = self.hub.registry
        #: Monotone counter deriving trace ids on unjournaled servers.
        self._trace_counter = 0
        #: In-flight journaled downgrades by idempotency key: a
        #: duplicate delivery arriving before the first resolves awaits
        #: the same future instead of double-enqueueing.
        self._inflight_keys: dict[str, asyncio.Future] = {}
        #: True when the ledger's durable mirror and the journal live in
        #: one store that can land bound puts and acks atomically — the
        #: exactly-once configuration.  The ledger then buffers its
        #: mirror writes and every ack drains them into its own
        #: transaction (:meth:`_drained_bounds`).
        self._atomic_ledger = (
            journal is not None
            and self.ledger is not None
            and self.ledger.store is not None
            and self.ledger.store is getattr(journal, "backend", None)
            and hasattr(journal.backend, "journal_ack_with_bounds")
        )
        if journal is not None:
            # Journaled gateways must be replayable: the configure entry
            # ships the policies as JSON, so — like shard serving — they
            # need structural encodings.  Fail at construction.
            policy_to_json(policy)
            if budget_floor is not None:
                policy_to_json(budget_floor)
            if self._atomic_ledger:
                self.ledger.buffer_writes()
            self._journal_configure()
            self.service.audit.spill = journal.spill_audit
        #: Compile futures keyed by cache key; waiters coalesce onto them.
        self._inflight: dict[str, asyncio.Future] = {}
        #: Queued downgrades, grouped by query name for per-tick batching.
        self._queue: dict[str, list[_PendingDowngrade]] = {}
        self._queued = 0
        #: Serializes whole flushes: ledger commits therefore always run
        #: under the same admission state their round was checked in.
        self._flush_lock = asyncio.Lock()
        self._flush_task: asyncio.Task | None = None
        self._ticker: asyncio.Task | None = None

    # -- conveniences --------------------------------------------------------
    @property
    def cache(self) -> SynthesisCache:
        """The shared artifact cache (write-through to the store)."""
        return self.service.cache

    @property
    def manager(self):
        """The session manager (thread-safe; owned by the service)."""
        return self.service.manager

    # -- compile path --------------------------------------------------------
    async def register_query(
        self, request: CompileRequest, *, idempotency_key: str | None = None
    ) -> ServerCompileReceipt:
        """Make a query declassifiable, through cache, coalescing, or shards.

        On a journaled server the request is appended to the write-ahead
        journal before compiling and acknowledged after; a duplicate
        ``idempotency_key`` returns the recorded receipt without
        re-executing.  Raises
        :class:`~repro.server.workers.ShardOverloaded` when the shard
        sheds the job.
        """
        if self.journal is None:
            return await self._register_query(request)
        query = (
            parse_bool(request.query)
            if isinstance(request.query, str)
            else request.query
        )
        payload = {
            "name": request.name,
            "query": expr_to_json(query),
            "secret": spec_to_json(request.secret),
            "options": (
                None
                if request.options is None
                else options_to_json(request.options)
            ),
        }
        key = idempotency_key or self.journal.auto_key("compile")
        entry = self.journal.begin(key, "compile", payload)
        if entry.status == "done":
            self.stats.journal_duplicates += 1
            return ServerCompileReceipt.from_json(entry.response)
        self.stats.journal_appends += 1
        faults.maybe_crash("journal", "crash_after_journal_before_execute")
        receipt = await self._register_query(replace(request, query=query))
        faults.maybe_crash("journal", "crash_after_execute_before_ack")
        self.journal.ack(
            entry.seq,
            _compile_outcome(receipt),
            response=receipt.to_json(),
            bounds=self._drained_bounds(),
        )
        return receipt

    async def _register_query(self, request: CompileRequest) -> ServerCompileReceipt:
        """The unjournaled compile path (cache → coalesce → shard).

        Resolution order: (1) the shared cache (memory, warm-started from
        the store) — a lookup; (2) an identical canonical problem already
        in flight — await the same shard job; (3) a fresh job on the
        query's shard, written through to the store on completion.
        """
        options = (
            request.options if request.options is not None else self.default_options
        )
        query = (
            parse_bool(request.query)
            if isinstance(request.query, str)
            else request.query
        )
        request = replace(request, query=query, options=options)
        key = self.cache.key_for(query, request.secret, options)

        if key in self.cache:
            receipt = self.service.register_query(request)
            self.stats.compile_cache_hits += 1
            self._count_compile("cache_hit")
            return ServerCompileReceipt(
                name=receipt.name,
                cache_hit=True,
                coalesced=False,
                shard=None,
                verified=receipt.verified,
                synth_time=receipt.synth_time,
                verify_time=receipt.verify_time,
            )

        inflight = self._inflight.get(key)
        if inflight is not None:
            await asyncio.shield(inflight)
            receipt = self.service.register_query(request)
            self.stats.compile_coalesced += 1
            self._count_compile("coalesced")
            return ServerCompileReceipt(
                name=receipt.name,
                cache_hit=False,
                coalesced=True,
                shard=None,
                verified=receipt.verified,
                synth_time=receipt.synth_time,
                verify_time=receipt.verify_time,
            )

        loop = asyncio.get_running_loop()
        inflight = loop.create_future()
        self._inflight[key] = inflight
        shard = self.pool.shard_for(query)
        try:
            try:
                compiled = await self._compile_supervised(
                    request.name, query, request.secret, options, shard
                )
            except ShardOverloaded:
                self.stats.compile_shed += 1
                self._count_compile("shed")
                raise
            self.cache.put(key, compiled)
        except BaseException as exc:
            inflight.set_exception(exc)
            # The exception is delivered to every coalesced waiter; if
            # there are none, mark it retrieved so the loop stays quiet.
            inflight.exception()
            raise
        else:
            inflight.set_result(key)
        finally:
            self._inflight.pop(key, None)

        receipt = self.service.register_query(request)
        self.stats.compiles += 1
        self._count_compile("compiled")
        return ServerCompileReceipt(
            name=receipt.name,
            cache_hit=False,
            coalesced=False,
            shard=shard,
            verified=receipt.verified,
            synth_time=receipt.synth_time,
            verify_time=receipt.verify_time,
        )

    async def _compile_supervised(
        self,
        name: str,
        query: Any,
        secret: SecretSpec,
        options: CompileOptions,
        shard: int,
    ):
        """One supervised compile: deadline, retries, restart, inline failover.

        Compiles are pure and content-addressed, so every recovery action
        here is trivially safe: a retry re-runs the same synthesis, and
        the fallback runs the identical payload codec path inline on a
        gateway worker thread (``degraded_compiles``) — same artifact,
        no shard.  ``ShardOverloaded`` is not a failure: admission did
        its job, and the supervisor re-raises it untouched.
        """
        pool = self.pool

        async def attempt():
            job = pool.submit(name, query, secret, options)
            result_json = await asyncio.wrap_future(job)
            compiled, _provenance = pool.decode(result_json)
            return compiled

        async def restart() -> None:
            pool.restart_shard(shard)
            self.stats.shard_restarts += 1

        async def fallback():
            self.stats.degraded_compiles += 1
            payload = pool.payload_for(name, query, secret, options, with_faults=False)
            # call_suppressed: an inline-mode plan is process-global, so
            # a clean payload alone does not keep faults out of the
            # fallback thread.
            result_json = await asyncio.to_thread(
                faults.call_suppressed, compile_payload, payload
            )
            return pool.decode(result_json)[0]

        return await self.supervisor.supervise(
            "compile",
            shard,
            attempt,
            deadline=self.config.compile_deadline,
            restart=restart,
            fallback=fallback,
        )

    # -- session lifecycle ---------------------------------------------------
    def open_session(
        self,
        session_id: str,
        secret: ProtectedSecret | tuple[SecretSpec, SecretValue],
        *,
        user_id: str | None = None,
        idempotency_key: str | None = None,
    ) -> Session:
        """Open a session, bound to a durable user identity for the ledger.

        ``user_id`` defaults to the session id; pass the same user for
        successive sessions to make the budget survive reconnects (the
        whole point of the ledger).

        In shard-serving mode the live session state lives on the user's
        shard (the open op ships with the next batch to that shard,
        order-preserved); the returned :class:`Session` is the gateway's
        handle, and its knowledge field stays ``None``.

        On a journaled server the open is appended before executing; a
        duplicate ``idempotency_key`` returns the live handle (or a
        detached one) without opening twice.
        """
        if self.journal is None:
            return self._open_session(session_id, secret, user_id=user_id)
        if not isinstance(secret, ProtectedSecret):
            spec, value = secret
            secret = ProtectedSecret.seal(spec, value)
        user = user_id if user_id is not None else session_id
        payload = {
            "session_id": session_id,
            "user_id": user,
            "spec": spec_to_json(secret.spec),
            # Raw value in the journal is inside the TCB, exactly like
            # the open op shipped to a serving shard: the journal lives
            # in the same store the gateway already trusts.
            "value": list(secret.unprotect_tcb()),
        }
        key = idempotency_key or self.journal.auto_key("open_session")
        entry = self.journal.begin(key, "open_session", payload)
        if entry.status == "done":
            self.stats.journal_duplicates += 1
            handle = self._session_handle(session_id)
            return (
                handle
                if handle is not None
                else Session(session_id=session_id, secret=secret)
            )
        self.stats.journal_appends += 1
        faults.maybe_crash("journal", "crash_after_journal_before_execute")
        session = self._open_session(session_id, secret, user_id=user)
        faults.maybe_crash("journal", "crash_after_execute_before_ack")
        self.journal.ack(
            entry.seq,
            {"kind": "open_session", "session_id": session_id, "user_id": user},
            bounds=self._drained_bounds(),
        )
        return session

    def _session_handle(self, session_id: str) -> Session | None:
        """The live handle for an open session, whichever path owns it."""
        if self.serving_pool is not None:
            handle = self._shard_sessions.get(session_id)
            if handle is not None:
                return handle
        return self.manager.sessions.get(session_id)

    def _open_session(
        self,
        session_id: str,
        secret: ProtectedSecret | tuple[SecretSpec, SecretValue],
        *,
        user_id: str | None = None,
    ) -> Session:
        """The unjournaled open path (gateway-local or shard-routed)."""
        if self.serving_pool is None:
            session = self.service.open_session(session_id, secret)
            self._users[session_id] = (
                user_id if user_id is not None else session_id
            )
            return session
        if session_id in self._shard_sessions:
            raise ValueError(f"session {session_id!r} already open")
        if not isinstance(secret, ProtectedSecret):
            spec, value = secret
            secret = ProtectedSecret.seal(spec, value)
        user = user_id if user_id is not None else session_id
        self._ops_for(self.serving_pool.shard_for(user)).append(
            self._open_session_op(session_id, user, secret)
        )
        session = Session(session_id=session_id, secret=secret)
        self._shard_sessions[session_id] = session
        self._users[session_id] = user
        return session

    def _open_session_op(
        self, session_id: str, user: str, secret: ProtectedSecret
    ) -> dict[str, Any]:
        """The shard op opening one session, with a mirror-bound snapshot.

        The snapshot makes a restarted (or rehydrated) shard resume
        enforcement where the killed one stopped; it is refreshed again
        at ship time (see :meth:`_serve_shard_groups`), so bounds
        committed on the degraded path while the op sat queued are never
        lost to the shard.
        """
        spec = secret.spec
        bounds = None
        if self.ledger is not None:
            bounds = {spec.name: self.ledger.export_bound(user, spec)}
        return {
            "op": "open_session",
            "session_id": session_id,
            "user_id": user,
            "spec": spec_to_json(spec),
            # Raw value crosses to the shard inside the TCB; the
            # shard process re-seals it on arrival.
            "value": list(secret.unprotect_tcb()),
            "bounds": bounds,
        }

    def close_session(
        self, session_id: str, *, idempotency_key: str | None = None
    ) -> Session | None:
        """Close a session.  The user's ledger account (budget) remains.

        On a journaled server a duplicate ``idempotency_key`` is a no-op
        success returning ``None`` — the recorded close already
        happened, and the live handle is gone.
        """
        if self.journal is None:
            return self._close_session(session_id)
        key = idempotency_key or self.journal.auto_key("close_session")
        entry = self.journal.begin(
            key, "close_session", {"session_id": session_id}
        )
        if entry.status == "done":
            self.stats.journal_duplicates += 1
            return None
        self.stats.journal_appends += 1
        faults.maybe_crash("journal", "crash_after_journal_before_execute")
        session = self._close_session(session_id)
        faults.maybe_crash("journal", "crash_after_execute_before_ack")
        self.journal.ack(
            entry.seq,
            {"kind": "close_session", "session_id": session_id},
            bounds=self._drained_bounds(),
        )
        return session

    def _close_session(self, session_id: str) -> Session:
        """The unjournaled close path."""
        if self.serving_pool is None:
            self._users.pop(session_id, None)
            return self.service.close_session(session_id)
        try:
            session = self._shard_sessions.pop(session_id)
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None
        user = self._users.pop(session_id, session_id)
        self._ops_for(self.serving_pool.shard_for(user)).append(
            {"op": "close_session", "session_id": session_id}
        )
        if session_id in self._degraded_sessions:
            # The session was adopted by the gateway-local manager while
            # its shard was down; close the local mirror too.
            self._degraded_sessions.discard(session_id)
            if session_id in self.manager.sessions:
                self.service.close_session(session_id)
        return session

    # -- serving-shard op plumbing --------------------------------------------
    def _ops_for(self, shard: int) -> list[dict[str, Any]]:
        """The pending op list for a shard, configure op first-ever."""
        ops = self._shard_ops.get(shard)
        if ops is None:
            ops = []
            if shard not in self._shard_configured:
                ops.append(self._configure_op())
                self._shard_configured.add(shard)
            self._shard_ops[shard] = ops
        return ops

    def _configure_op(self) -> dict[str, Any]:
        return {
            "op": "configure",
            "policy": policy_to_json(self.manager.policy),
            "floor": (
                None if self.ledger is None else policy_to_json(self.ledger.floor)
            ),
            "decay": (
                None if self.budget_decay is None else self.budget_decay.to_json()
            ),
            "mode": self.config.mode,
            "check_both": self.config.check_both,
            "observe": self.hub.enabled,
        }

    def _ensure_attached(
        self, shard: int, query_name: str, ops: list[dict[str, Any]]
    ) -> None:
        """Ship the compiled artifact to a shard the first time it serves it."""
        attached = self._shard_queries.setdefault(shard, set())
        if query_name in attached:
            return
        compiled = self.manager.registry.lookup(query_name)
        if compiled is None:
            # Unknown here is unknown there: the shard's registry lookup
            # will produce the standard "Can't downgrade" refusal.
            return
        ops.append(
            {
                "op": "attach_query",
                "name": query_name,
                "artifact": compiled_query_to_json(compiled),
            }
        )
        attached.add(query_name)

    def _rehydrate_shard(self, shard: int) -> None:
        """Queue the ops that rebuild a freshly restarted serving shard.

        The replacement process knows nothing, and durable gateway state
        is enough to rebuild everything it needs: the configure op is
        re-queued (``_shard_configured`` reset), compiled artifacts
        re-attach lazily from the cache/store on next use
        (``_shard_queries`` reset — zero recompiles, the artifacts are
        content-addressed), and every live session routed to the shard
        is re-opened from the gateway's session records with a
        mirror-bound snapshot.  Snapshots are refreshed again at ship
        time, and a fresh shard has seen no users, so it adopts them all
        — the rehydrated shard enforces bounds at least as tight as the
        mirror's, never looser.
        """
        assert self.serving_pool is not None
        self._shard_configured.discard(shard)
        self._shard_queries.pop(shard, None)
        self._shard_ops.pop(shard, None)
        ops = self._ops_for(shard)
        for session_id, session in self._shard_sessions.items():
            user = self._users.get(session_id, session_id)
            if self.serving_pool.shard_for(user) == shard:
                ops.append(self._open_session_op(session_id, user, session.secret))

    def _adopt_degraded_sessions(self, shard: int) -> None:
        """Mirror a down shard's sessions into the gateway-local manager.

        Opened from the gateway's sealed session records; admission and
        commits then run against the durable mirror ledger — the same
        enforcement state the shard would have been rehydrated from.
        Session-local *knowledge* restarts from the prior (the same
        semantics as a reconnect); the ledger bound does not reset.
        """
        assert self.serving_pool is not None
        for session_id, session in self._shard_sessions.items():
            user = self._users.get(session_id, session_id)
            if self.serving_pool.shard_for(user) != shard:
                continue
            if session_id not in self.manager.sessions:
                self.service.open_session(session_id, session.secret)
            self._degraded_sessions.add(session_id)

    def _retire_degraded_sessions(self, shard: int) -> None:
        """Drop local mirror sessions once their shard serves again."""
        if not self._degraded_sessions:
            return
        assert self.serving_pool is not None
        for session_id in list(self._degraded_sessions):
            user = self._users.get(session_id, session_id)
            if self.serving_pool.shard_for(user) != shard:
                continue
            self._degraded_sessions.discard(session_id)
            if session_id in self.manager.sessions:
                self.service.close_session(session_id)

    def advance_epoch(
        self, epochs: int = 1, *, idempotency_key: str | None = None
    ) -> int:
        """Advance budget decay on the mirror ledger and every serving shard.

        The durable mirror advances (and persists) immediately — covering
        users with stored bounds but no live session; shards apply the
        queued epoch op before their next batch.  Returns the new epoch.
        Requires ``budget_floor`` and ``budget_decay``.

        On a journaled server a duplicate ``idempotency_key`` returns
        the recorded epoch without advancing again — retried epoch ticks
        never double-dilate.
        """
        if self.journal is None:
            return self._advance_epoch(epochs)
        key = idempotency_key or self.journal.auto_key("advance_epoch")
        entry = self.journal.begin(key, "advance_epoch", {"epochs": epochs})
        if entry.status == "done":
            self.stats.journal_duplicates += 1
            return int(entry.response["epoch"])
        self.stats.journal_appends += 1
        faults.maybe_crash("journal", "crash_after_journal_before_execute")
        epoch = self._advance_epoch(epochs)
        faults.maybe_crash("journal", "crash_after_execute_before_ack")
        self.journal.ack(
            entry.seq,
            {"kind": "advance_epoch", "epoch": epoch},
            bounds=self._drained_bounds(),
        )
        return epoch

    def _advance_epoch(self, epochs: int = 1) -> int:
        """The unjournaled epoch path."""
        if self.ledger is None:
            raise ValueError("advance_epoch requires a budget_floor")
        epoch = self.ledger.advance_epoch(epochs)
        if self.serving_pool is not None:
            for shard in sorted(self._shard_configured):
                self._ops_for(shard).append(
                    {"op": "advance_epoch", "epochs": epochs}
                )
        return epoch

    # -- downgrade path --------------------------------------------------------
    async def downgrade(
        self,
        session_id: str,
        query_name: str,
        *,
        idempotency_key: str | None = None,
    ) -> DowngradeResult:
        """Queue one downgrade; resolves when its tick's batch is served.

        Load shedding is capacity-aware: past the degraded watermark
        (too many serving-shard breakers open) the queue bound scales by
        the healthy-shard fraction and sheds with
        :class:`ServerDegraded`, whose ``retry_after`` names the
        earliest breaker probe — the degraded path keeps answering, but
        it must not be asked to absorb a healthy fleet's queue depth.

        On a journaled server the request is appended (batched, at
        flush) before its batch executes and acknowledged after the
        durable-mirror fold.  A duplicate ``idempotency_key`` returns
        the recorded result — or awaits the in-flight one — instead of
        charging the budget twice.  Shed requests change no state and
        are never journaled.
        """
        if self.journal is None:
            return await self._enqueue_downgrade(session_id, query_name).future
        key = idempotency_key or self.journal.auto_key("downgrade")
        recorded = self.journal.recorded_response(key)
        if recorded is not None:
            self.stats.journal_duplicates += 1
            return downgrade_result_from_json(recorded)
        inflight = self._inflight_keys.get(key)
        if inflight is not None:
            self.stats.journal_duplicates += 1
            return await asyncio.shield(inflight)
        pending = self._enqueue_downgrade(session_id, query_name, journal_key=key)
        self._inflight_keys[key] = pending.future
        pending.future.add_done_callback(
            lambda _f, key=key: self._inflight_keys.pop(key, None)
        )
        return await pending.future

    def _enqueue_downgrade(
        self,
        session_id: str,
        query_name: str,
        *,
        journal_key: str | None = None,
        trace_id: str | None = None,
    ) -> _PendingDowngrade:
        """Admission-check and queue one downgrade (runs on the loop).

        ``trace_id`` pins the request to an externally derived trace (a
        replay twin re-executing a journaled history); otherwise
        journaled requests get theirs at append time and unjournaled
        ones from the local counter.
        """
        bound = self.config.max_queued_downgrades
        if self.serving_pool is not None:
            down = self.supervisor.open_fraction(
                "serving", self.config.serving_shards
            )
            if down >= self.config.degraded_watermark:
                bound = max(1, int(bound * (1.0 - down)))
                if self._queued >= bound:
                    self.stats.degraded_shed += 1
                    retry_after = self.supervisor.earliest_retry("serving")
                    self._count_shed("degraded", retry_after=retry_after)
                    raise ServerDegraded(
                        f"{self._queued} downgrades queued >= degraded bound "
                        f"{bound} ({down:.0%} of serving shards down)",
                        retry_after=retry_after,
                    )
        if self._queued >= bound:
            self._count_shed("overloaded")
            raise ServerOverloaded(
                f"{self._queued} downgrades queued >= bound "
                f"{self.config.max_queued_downgrades}"
            )
        loop = asyncio.get_running_loop()
        pending = _PendingDowngrade(
            session_id, loop.create_future(), journal_key=journal_key
        )
        if self.hub.enabled:
            if trace_id is None and journal_key is None:
                self._trace_counter += 1
                trace_id = trace_id_for(
                    f"local/{session_id}", self._trace_counter
                )
            if trace_id is not None:
                self._assign_trace(pending, query_name, trace_id)
        self._queue.setdefault(query_name, []).append(pending)
        self._queued += 1
        ticking = self._ticker is not None and not self._ticker.done()
        if not ticking and self._flush_task is None:
            self._flush_task = loop.create_task(self.flush())
        return pending

    def _journal_begin_downgrades(
        self, groups: list[tuple[str, list[_PendingDowngrade]]]
    ) -> None:
        """Append the journal entries for a tick's downgrades (batched).

        One durable transaction per call, *before* any of these waiters
        executes — the write-ahead half of the journal contract.  A
        waiter requeued by a cancelled flush keeps its ``journal_seq``
        and is not re-appended; re-begins after a crashed flush resolve
        to the existing pending rows (same seq).  The after-journal
        crash point fires here, so an injected crash lands on exactly
        the journaled-but-unexecuted state recovery must handle.
        """
        if self.journal is None:
            return
        items: list[tuple[str, str, dict[str, Any]]] = []
        pendings: list[tuple[_PendingDowngrade, str]] = []
        for query_name, waiters in groups:
            for pending in waiters:
                if pending.journal_key is None or pending.journal_seq is not None:
                    continue
                items.append(
                    (
                        pending.journal_key,
                        "downgrade",
                        {
                            "session_id": pending.session_id,
                            "query_name": query_name,
                        },
                    )
                )
                pendings.append((pending, query_name))
        if items:
            entries = self.journal.begin_many(items)
            for (pending, query_name), entry in zip(pendings, entries):
                pending.journal_seq = entry.seq
                if self.hub.enabled and pending.trace_id is None:
                    self._assign_trace(
                        pending,
                        query_name,
                        trace_id_for(pending.journal_key, entry.seq),
                    )
            self.stats.journal_appends += len(items)
        faults.maybe_crash("journal", "crash_after_journal_before_execute")

    def _journal_ack_downgrades(
        self, acks: list[tuple[_PendingDowngrade, DowngradeResult]]
    ) -> None:
        """Acknowledge a group's executed downgrades (batched).

        Runs after the batch executed and its ledger deltas reached the
        durable mirror, *before* any waiter resolves: by the time a
        client sees a result, its journal entry is done.  The before-ack
        crash point fires here — the executed-but-unacked window, where
        recovery re-executes and the ledger's monotone folds make the
        re-execution converge.
        """
        if self.journal is None:
            return
        faults.maybe_crash("journal", "crash_after_execute_before_ack")
        self.journal.ack_many(
            [
                (pending.journal_seq, downgrade_result_to_json(result))
                for pending, result in acks
                if pending.journal_seq is not None
            ],
            bounds=self._drained_bounds(),
        )

    def _drained_bounds(self) -> list[tuple[str, str, dict[str, Any]]] | None:
        """Buffered ledger-mirror writes to land atomically with an ack.

        ``None`` outside the atomic configuration (separate stores, no
        ledger, or an unjournaled server), where the ledger writes
        through on its own and acks carry nothing.
        """
        if not self._atomic_ledger:
            return None
        return self.ledger.drain_writes()

    async def flush(self) -> int:
        """Serve everything queued, one batch per query name; returns count.

        Failure isolation: a batch that raises fails only *its own*
        waiters (the exception lands on their futures) — later query
        groups are still served, and the background ticker survives.  On
        cancellation (``stop()`` mid-flush) the not-yet-started groups
        are requeued so the final flush serves them rather than dropping
        them.  Journal discipline per group: append before the batch
        runs, acknowledge after it (and its mirror fold) completes,
        resolve waiters last — a group that fails anywhere in between
        leaves its entries pending for recovery.
        """
        async with self._flush_lock:
            self._flush_task = None
            queue, self._queue = self._queue, {}
            queued_now = sum(len(waiters) for waiters in queue.values())
            self._queued -= queued_now
            self.stats.ticks += 1 if queue else 0
            tick_start = time.perf_counter()
            if self.serving_pool is not None:
                served = await self._flush_sharded(queue)
                self._observe_tick(tick_start, queued_now)
                return served
            served = 0
            groups = list(queue.items())
            for index, (query_name, waiters) in enumerate(groups):
                try:
                    self._journal_begin_downgrades([(query_name, waiters)])
                    results = await asyncio.to_thread(
                        self._serve_batch, query_name, waiters
                    )
                    self._journal_ack_downgrades(
                        [
                            (p, results[p.session_id])
                            for p in waiters
                            if p.session_id in results
                        ]
                    )
                except asyncio.CancelledError:
                    # This group's thread may have partially applied; its
                    # waiters get the cancellation.  Untouched groups go
                    # back on the queue for the final flush.
                    for pending in waiters:
                        if not pending.future.done():
                            pending.future.cancel()
                    for later_name, later_waiters in groups[index + 1:]:
                        remaining = [
                            p for p in later_waiters if not p.future.done()
                        ]
                        self._queue.setdefault(later_name, []).extend(remaining)
                        self._queued += len(remaining)
                    raise
                except Exception as exc:
                    for pending in waiters:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
                    continue
                self._count_results(results.values())
                for pending in waiters:
                    if not pending.future.done():
                        pending.future.set_result(results[pending.session_id])
                served += len(waiters)
            self.stats.downgrades_served += served
            self._observe_tick(tick_start, queued_now)
            return served

    async def _flush_sharded(
        self, queue: dict[str, list[_PendingDowngrade]]
    ) -> int:
        """Serve one flush through the serving shards (holds the flush lock).

        Every query group is partitioned by the shard owning each
        waiter's user; each touched shard receives ONE payload — its
        pending session/epoch ops first, then an ``attach_query`` for
        any artifact it has not seen, then its ``downgrade_batch`` ops —
        and all shard jobs run concurrently.  Responses carry the
        results plus the shard's ledger deltas, which are folded into
        the gateway's durable mirror before any waiter resolves: by the
        time a caller sees a result, the bound it charged is persistent.
        """
        assert self.serving_pool is not None
        batches: dict[int, list[tuple[str, list[_PendingDowngrade]]]] = {}
        for query_name, waiters in queue.items():
            per_shard: dict[int, list[_PendingDowngrade]] = {}
            for pending in waiters:
                user = self._users.get(pending.session_id, pending.session_id)
                shard = self.serving_pool.shard_for(user)
                per_shard.setdefault(shard, []).append(pending)
            for shard, shard_waiters in per_shard.items():
                batches.setdefault(shard, []).append((query_name, shard_waiters))

        try:
            self._journal_begin_downgrades(
                [pair for groups in batches.values() for pair in groups]
            )
        except Exception as exc:
            # The write-ahead append itself failed (or an injected crash
            # fired): nothing executed, so every waiter fails now and
            # the journal holds whatever prefix the transaction left.
            for groups in batches.values():
                for _name, shard_waiters in groups:
                    for pending in shard_waiters:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
            return 0

        jobs: list[
            tuple[list[tuple[str, list[_PendingDowngrade]]], asyncio.Task]
        ] = [
            (groups, asyncio.ensure_future(self._serve_shard_groups(shard, groups)))
            for shard, groups in batches.items()
        ]

        served = 0
        for index, (groups, task) in enumerate(jobs):
            try:
                by_key = await task
            except asyncio.CancelledError:
                for later_groups, later_task in jobs[index:]:
                    later_task.cancel()
                    for _name, shard_waiters in later_groups:
                        for pending in shard_waiters:
                            if not pending.future.done():
                                pending.future.cancel()
                raise
            except Exception as exc:
                for _name, shard_waiters in groups:
                    for pending in shard_waiters:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
                continue
            try:
                self._journal_ack_downgrades(
                    [
                        (pending, by_key[(query_name, pending.session_id)])
                        for query_name, shard_waiters in groups
                        for pending in shard_waiters
                        if (query_name, pending.session_id) in by_key
                    ]
                )
            except Exception as exc:
                # Executed (deltas folded) but unacked: fail the waiters
                # and leave the entries pending — recovery re-executes
                # them, and the monotone ledger folds converge.
                for _name, shard_waiters in groups:
                    for pending in shard_waiters:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
                continue
            self._count_results(by_key.values())
            for query_name, shard_waiters in groups:
                for pending in shard_waiters:
                    if not pending.future.done():
                        pending.future.set_result(
                            by_key[(query_name, pending.session_id)]
                        )
                served += len(shard_waiters)
        self.stats.downgrades_served += served
        return served

    async def _serve_shard_groups(
        self,
        shard: int,
        groups: list[tuple[str, list[_PendingDowngrade]]],
    ) -> dict[tuple[str, str], DowngradeResult]:
        """One shard's slice of a flush, supervised end to end.

        The attempt builds the shard payload (pending session/epoch ops,
        lazy ``attach_query``, then the ``downgrade_batch`` ops) *inside*
        the supervised call, so a retry after restart+rehydration ships
        the rebuilt op stream.  Open ops get their mirror-bound snapshot
        refreshed at ship time — bounds committed on the degraded path
        while the op sat queued must reach the shard.  Deltas fold into
        the durable mirror (monotone: replays can tighten, never loosen)
        *before* any waiter resolves.  Retry safety is the ledger's
        idempotence: re-running a batch re-checks admission against the
        same bounds and re-commits the same intersections.

        On failure the supervisor kills and rehydrates the shard and
        retries; when the breaker is open (or retries are exhausted) the
        batch falls back to the gateway-local serving path.
        """
        assert self.serving_pool is not None
        pool = self.serving_pool

        async def attempt() -> dict[tuple[str, str], DowngradeResult]:
            ops = self._ops_for(shard)
            self._shard_ops.pop(shard, None)
            for op in ops:
                if op["op"] == "open_session" and self.ledger is not None:
                    session = self._shard_sessions.get(op["session_id"])
                    if session is not None:
                        spec = session.secret.spec
                        op["bounds"] = {
                            spec.name: self.ledger.export_bound(op["user_id"], spec)
                        }
            for query_name, shard_waiters in groups:
                self._ensure_attached(shard, query_name, ops)
                op: dict[str, Any] = {
                    "op": "downgrade_batch",
                    "query_name": query_name,
                    "session_ids": [p.session_id for p in shard_waiters],
                }
                traces = self._traces_for(shard_waiters)
                if traces is not None:
                    op["traces"] = traces
                ops.append(op)
            submit_start = time.perf_counter()
            response = ServingShardPool.decode(
                await asyncio.wrap_future(pool.submit(shard, ops))
            )
            if self.hub.enabled:
                elapsed = time.perf_counter() - submit_start
                self.hub.absorb(response.get("obs"))
                # Transport spans: real timeline events for an operator,
                # excluded from the canonical tree (a replay twin serves
                # inline and never emits them).
                for _name, shard_waiters in groups:
                    for pending in shard_waiters:
                        if pending.trace_id is not None:
                            self.hub.tracer.record(
                                pending.trace_id,
                                "shard_roundtrip",
                                parent_id=span_id_for(
                                    pending.trace_id, None, "downgrade", 0
                                ),
                                transport=True,
                                elapsed=elapsed,
                                shard=shard,
                            )
            if self.ledger is not None:
                for delta in response["deltas"]:
                    self.ledger.apply_payload(
                        delta["user_id"],
                        delta["spec_name"],
                        delta["payload"],
                        monotone=True,
                    )
            self.stats.budget_refusals += response["budget_refusals"]
            self._retire_degraded_sessions(shard)
            return {
                (result.query_name, result.session_id): result
                for result in response["results"]
            }

        async def restart() -> None:
            pool.restart_shard(shard)
            self.stats.shard_restarts += 1
            self._rehydrate_shard(shard)

        async def fallback() -> dict[tuple[str, str], DowngradeResult]:
            return await self._serve_degraded(shard, groups)

        return await self.supervisor.supervise(
            "serving",
            shard,
            attempt,
            deadline=self.config.serving_deadline,
            restart=restart,
            fallback=fallback,
        )

    async def _serve_degraded(
        self,
        shard: int,
        groups: list[tuple[str, list[_PendingDowngrade]]],
    ) -> dict[tuple[str, str], DowngradeResult]:
        """Serve one shard's groups on the gateway-local fallback path.

        The ``serving_shards=0`` machinery, reused verbatim: the down
        shard's sessions are adopted into the gateway-local manager and
        admission/commit run against the durable mirror ledger — the
        enforcement floor holds exactly as it would have on the shard.
        """
        self.stats.degraded_batches += 1
        self._adopt_degraded_sessions(shard)
        by_key: dict[tuple[str, str], DowngradeResult] = {}
        for query_name, shard_waiters in groups:
            results = await asyncio.to_thread(
                self._serve_batch, query_name, shard_waiters
            )
            for session_id, result in results.items():
                by_key[(query_name, session_id)] = result
        return by_key

    def _serve_batch(
        self, query_name: str, waiters: list[_PendingDowngrade]
    ) -> dict[str, DowngradeResult]:
        """One tick's worth of one query (runs on a worker thread).

        Ledger admission first (secret-independent), then one batched
        pass through the service for the admitted sessions, then ledger
        commits for the answered ones.

        When one *user* has several sessions in the same tick, their
        sessions are served in successive rounds — each round holds at
        most one session per user, so every ledger commit immediately
        follows the preauthorization it was admitted under (a user's
        second session sees the bound its first session produced, and is
        cleanly refused if that bound no longer affords the query).
        """
        ids = list(dict.fromkeys(p.session_id for p in waiters))
        compiled = self.manager.registry.lookup(query_name)
        results: dict[str, DowngradeResult] = {}
        traces = self._traces_for(waiters)
        for round_ids in self._rounds_by_user(ids):
            self._serve_round(query_name, compiled, round_ids, results, traces)
        return results

    def _rounds_by_user(self, ids: list[str]) -> list[list[str]]:
        """Partition session ids so no round repeats a ledger user."""
        return rounds_by_user(ids, self._users)

    def _serve_round(
        self,
        query_name: str,
        compiled,
        ids: list[str],
        results: dict[str, DowngradeResult],
        traces: dict[str, dict[str, str]] | None = None,
    ) -> None:
        admitted: list[str] = []
        checked: list[str] = []
        for sid in ids:
            if (
                self.ledger is None
                or compiled is None
                or sid not in self.manager.sessions
            ):
                admitted.append(sid)
            else:
                checked.append(sid)
        if checked:
            # One batched admission pass: the floor is checked once per
            # distinct sound bound instead of once per session.
            users = {sid: self._users.get(sid, sid) for sid in checked}
            ledger_decisions = self.ledger.preauthorize_batch(
                users.values(), compiled.qinfo, mode=self.config.mode
            )
            for sid in checked:
                decision = ledger_decisions[users[sid]]
                self._trace_span(
                    traces, sid, "admission", allowed=decision.allowed
                )
                if decision.allowed:
                    admitted.append(sid)
                else:
                    self.stats.budget_refusals += 1
                    results[sid] = DowngradeResult(
                        session_id=sid,
                        query_name=query_name,
                        authorized=False,
                        response=None,
                        reason=decision.reason,
                        knowledge_size=decision.remaining,
                    )
        if admitted:
            for result in self.service.handle_batch(
                BatchDowngradeRequest(query_name, tuple(admitted))
            ):
                results[result.session_id] = result
                self._trace_span(
                    traces,
                    result.session_id,
                    "serve",
                    authorized=result.authorized,
                    kind=result_kind(result),
                )
                if result.authorized and self.ledger is not None and compiled:
                    if result.response is None:
                        raise DowngradeInvariantError(
                            f"authorized downgrade of {query_name!r} for "
                            f"{result.session_id!r} carries no response"
                        )
                    self.ledger.commit(
                        self._users.get(result.session_id, result.session_id),
                        compiled.qinfo,
                        result.response,
                        mode=self.config.mode,
                    )

    # -- observability ---------------------------------------------------------
    def _count_compile(self, outcome: str) -> None:
        """Tally one compile request by the mechanism that paid for it."""
        registry = self.hub.registry
        if registry:
            registry.counter(
                "anosy_gateway_compiles_total",
                "Compile requests by outcome (cache_hit/coalesced/compiled/shed).",
                labels=("outcome",),
            ).labels(outcome=outcome).inc()

    def _count_shed(
        self, reason: str, *, retry_after: float | None = None
    ) -> None:
        """Tally one shed downgrade; degraded sheds update the hint gauge."""
        registry = self.hub.registry
        if not registry:
            return
        registry.counter(
            "anosy_gateway_shed_total",
            "Downgrades shed by queue admission, by reason.",
            labels=("reason",),
        ).labels(reason=reason).inc()
        if retry_after is not None:
            registry.gauge(
                "anosy_gateway_retry_after_seconds",
                "Retry-After hint of the most recent degraded shed.",
                channel="timing",
            ).set(retry_after)

    def _count_results(self, results: Any) -> None:
        """Tally resolved downgrade results by outcome kind."""
        registry = self.hub.registry
        if not registry:
            return
        counter = registry.counter(
            "anosy_gateway_downgrades_total",
            "Downgrade results resolved, by outcome kind.",
            labels=("kind",),
        )
        for result in results:
            counter.labels(kind=result_kind(result)).inc()

    def _observe_tick(self, started: float, sessions: int) -> None:
        """Record one non-empty flush tick's latency and batch size."""
        registry = self.hub.registry
        if not registry or sessions == 0:
            return
        registry.histogram(
            "anosy_gateway_tick_seconds",
            "Wall-clock seconds of one flush tick.",
            channel="timing",
        ).observe(time.perf_counter() - started)
        registry.histogram(
            "anosy_gateway_tick_batch_sessions",
            "Queued downgrades served per tick.",
        ).observe(float(sessions))

    def _assign_trace(
        self, pending: _PendingDowngrade, query_name: str, trace_id: str
    ) -> None:
        """Pin a waiter to its trace and record the root span."""
        pending.trace_id = trace_id
        self.hub.bind_key(pending.journal_key, trace_id)
        self.hub.tracer.record(
            trace_id, "downgrade", session=pending.session_id, query=query_name
        )

    def _traces_for(
        self, waiters: list[_PendingDowngrade]
    ) -> dict[str, dict[str, str]] | None:
        """The session → trace fragment for one batch (None when dark)."""
        if not self.hub.enabled:
            return None
        traces = {
            p.session_id: {
                "trace_id": p.trace_id,
                "parent": span_id_for(p.trace_id, None, "downgrade", 0),
            }
            for p in waiters
            if p.trace_id is not None
        }
        return traces or None

    def _trace_span(
        self,
        traces: dict[str, dict[str, str]] | None,
        sid: str,
        name: str,
        **attrs: Any,
    ) -> None:
        """Record one gateway-local decision span (mirrors the shard path)."""
        info = None if traces is None else traces.get(sid)
        if info is None:
            return
        self.hub.tracer.record(
            info["trace_id"], name, parent_id=info["parent"], **attrs
        )

    def refresh_gauges(self) -> None:
        """Refresh scrape-time gauges (queue depth, health, stat mirror).

        Gauges describe *now*, so they are set when someone looks —
        ``/metrics`` and ``/statusz`` — never on hot paths.
        """
        registry = self.hub.registry
        if not registry:
            return
        registry.gauge(
            "anosy_gateway_queue_depth", "Downgrades queued for the next tick."
        ).set(self._queued)
        down = (
            self.supervisor.open_fraction("serving", self.config.serving_shards)
            if self.serving_pool is not None
            else 0.0
        )
        registry.gauge(
            "anosy_gateway_degraded_fraction",
            "Fraction of serving shards with an open breaker.",
        ).set(down)
        registry.gauge(
            "anosy_sessions_open",
            "Open sessions (gateway handles in shard-serving mode).",
        ).set(
            self.manager.open_count()
            if self.serving_pool is None
            else len(self._shard_sessions)
        )
        stat = registry.gauge(
            "anosy_gateway_stat",
            "Mirror of the gateway's lifetime counters (ServerStats).",
            labels=("stat",),
        )
        for name, value in vars(self.stats).items():
            stat.labels(stat=name).set(float(value))
        if self.journal is not None:
            registry.gauge(
                "anosy_journal_pending",
                "Journal entries appended but not yet acknowledged.",
            ).set(len(self.journal.pending()))

    def metrics_text(self) -> str:
        """The Prometheus exposition of the hub's registry ('' when dark)."""
        self.refresh_gauges()
        return self.hub.registry.exposition()

    def statusz(self) -> dict[str, Any]:
        """Runtime introspection: shard health, breakers, journal, traces.

        The structured twin of ``/metrics`` — everything here is also a
        metric or derivable from one, but grouped the way an operator
        debugging the failure-mode matrix (OPERATIONS.md) wants it.
        """
        self.refresh_gauges()
        degraded_fraction = (
            self.supervisor.open_fraction("serving", self.config.serving_shards)
            if self.serving_pool is not None
            else 0.0
        )
        return {
            "observe": self.hub.enabled,
            "stats": vars(self.stats).copy(),
            "queue_depth": self._queued,
            "serving_shards": self.config.serving_shards,
            "degraded": {
                "fraction": degraded_fraction,
                "sessions": len(self._degraded_sessions),
                "retry_after": (
                    self.supervisor.earliest_retry("serving")
                    if self.serving_pool is not None
                    else 0.0
                ),
            },
            "breakers": self.supervisor.describe_breakers(),
            "journal": (
                None
                if self.journal is None
                else {
                    "entries": len(self.journal),
                    "pending": len(self.journal.pending()),
                    "appends": self.stats.journal_appends,
                    "duplicates": self.stats.journal_duplicates,
                }
            ),
            "traces": {"retained": len(self.hub.tracer.trace_ids())},
        }

    # -- journal & recovery ----------------------------------------------------
    def _journal_configure(self) -> None:
        """Journal this server's configuration as entry zero (idempotent).

        The configure payload is everything a fresh gateway needs to be
        *this* gateway (policies, floor, decay, mode, options), and its
        key is its own digest — a restart with an unchanged config
        short-circuits to the recorded entry, while a config change
        appends a new configure entry that marks the restart boundary
        for replay.
        """
        assert self.journal is not None
        payload = self._configure_payload()
        key = "configure/" + payload_digest(payload)
        entry = self.journal.begin(key, "configure", payload)
        if entry.status != "done":
            self.stats.journal_appends += 1
            self.journal.ack(entry.seq, _configure_outcome(payload))

    def _configure_payload(self) -> dict[str, Any]:
        """The journaled configuration encoding (replay rebuilds from it)."""
        return {
            "policy": policy_to_json(self.manager.policy),
            "floor": (
                None if self.ledger is None else policy_to_json(self.ledger.floor)
            ),
            "decay": (
                None if self.budget_decay is None else self.budget_decay.to_json()
            ),
            "mode": self.config.mode,
            "check_both": self.config.check_both,
            "options": options_to_json(self.default_options),
        }

    async def apply_entry(
        self,
        kind: str,
        payload: dict[str, Any],
        *,
        idempotency_key: str | None = None,
        trace_seq: int | None = None,
    ) -> dict[str, Any]:
        """Execute one journal-entry payload; returns its outcome encoding.

        The shared execution surface of recovery (re-applying a pending
        suffix, with each entry's own key so the re-run acks the
        original row) and replay (re-executing an acknowledged history
        on an unjournaled twin).  The returned encoding is exactly what
        the original execution digested, so ``payload_digest`` of it is
        directly comparable to the recorded ``outcome_digest``.

        ``trace_seq`` lets an unjournaled replay twin pin a downgrade's
        trace id to the original entry's journal sequence, so the twin's
        trace tree is byte-identical to the source's.
        """
        journaled = self.journal is not None
        if kind == "configure":
            # Construction already configured this server; the entry's
            # outcome is a pure function of its payload.
            return _configure_outcome(payload)
        if kind == "compile":
            request = _compile_request(payload)
            receipt = (
                await self.register_query(request, idempotency_key=idempotency_key)
                if journaled
                else await self._register_query(request)
            )
            return _compile_outcome(receipt)
        if kind == "open_session":
            secret = ProtectedSecret.seal(
                spec_from_json(payload["spec"]), tuple(payload["value"])
            )
            sid, user = payload["session_id"], payload["user_id"]
            if journaled:
                self.open_session(
                    sid, secret, user_id=user, idempotency_key=idempotency_key
                )
            else:
                self._open_session(sid, secret, user_id=user)
            return {"kind": "open_session", "session_id": sid, "user_id": user}
        if kind == "close_session":
            sid = payload["session_id"]
            if journaled:
                self.close_session(sid, idempotency_key=idempotency_key)
            else:
                self._close_session(sid)
            return {"kind": "close_session", "session_id": sid}
        if kind == "advance_epoch":
            epochs = int(payload["epochs"])
            epoch = (
                self.advance_epoch(epochs, idempotency_key=idempotency_key)
                if journaled
                else self._advance_epoch(epochs)
            )
            return {"kind": "advance_epoch", "epoch": epoch}
        if kind == "downgrade":
            sid, query_name = payload["session_id"], payload["query_name"]
            result = (
                await self.downgrade(
                    sid, query_name, idempotency_key=idempotency_key
                )
                if journaled
                else await self._enqueue_downgrade(
                    sid,
                    query_name,
                    trace_id=(
                        trace_id_for(idempotency_key, trace_seq)
                        if idempotency_key is not None and trace_seq is not None
                        else None
                    ),
                ).future
            )
            return downgrade_result_to_json(result)
        raise ValueError(f"unknown journal entry kind {kind!r}")

    async def recover_from_journal(self) -> JournalRecovery:
        """Converge this freshly booted server onto its journal's state.

        Two phases.  (1) Rebuild ephemeral state from the *acknowledged*
        history: re-register the live queries (warm cache — zero
        recompiles) and re-open the live sessions, directly, without new
        journal entries.  (2) Re-apply the *pending* suffix — requests a
        dead process journaled but never acknowledged — through the
        normal journaled machinery under each entry's original key, so
        the re-run acknowledges the original row.  A pending request
        that had already executed re-executes; the ledger's monotone
        intersection folds make that converge to exactly the state an
        uninterrupted run reaches.  Duplicate client retries afterwards
        short-circuit to the recorded responses.

        A pending entry that fails validation again (unknown session,
        malformed payload) is skipped and stays pending — visibly, for
        the operator — rather than wedging every boot.
        """
        if self.journal is None:
            raise ValueError("recover_from_journal requires a journaled server")
        entries = self.journal.entries()
        state = live_state(e for e in entries if e.status == "done")
        for payload in state.compiles.values():
            await self._register_query(_compile_request(payload))
        for payload in state.sessions.values():
            if self._session_handle(payload["session_id"]) is None:
                self._open_session(
                    payload["session_id"],
                    ProtectedSecret.seal(
                        spec_from_json(payload["spec"]), tuple(payload["value"])
                    ),
                    user_id=payload["user_id"],
                )
        refolded = self._refold_knowledge(entries, state)
        reapplied = 0
        for entry in entries:
            if entry.status != "pending" or entry.kind == "configure":
                continue
            try:
                await self.apply_entry(
                    entry.kind, entry.payload, idempotency_key=entry.key
                )
            except (ValueError, KeyError):
                continue
            reapplied += 1
        self.stats.journal_recovered += reapplied
        return JournalRecovery(
            queries=len(state.compiles),
            sessions=len(state.sessions),
            reapplied=reapplied,
            refolded=refolded,
        )

    def _refold_knowledge(self, entries, state) -> int:
        """Rebuild live sessions' knowledge from acked authorized history.

        Session knowledge is the intersection of per-(query, response)
        posterior boxes — commutative and idempotent — so one re-fold
        per *distinct* acknowledged authorized (session, query) pair,
        through the plain session manager (no ledger charge, no audit
        event, no journal entry), reconstructs exactly the knowledge the
        killed process held.  A recovered gateway is therefore a
        seamless continuation of the crashed one, which is what lets a
        journal recorded across crashes replay as a single history.
        Shard-owned sessions (serving-shard mode) are skipped: their
        knowledge lives in the shard process and is rebuilt by the
        shard rehydration path instead.
        """
        manager = self.service.manager
        refolded = 0
        seen: set[tuple[str, str]] = set()
        for entry in entries:
            if entry.status != "done" or entry.kind != "downgrade":
                continue
            if not (entry.response or {}).get("authorized"):
                continue
            pair = (entry.payload["session_id"], entry.payload["query_name"])
            if pair in seen or pair[0] not in manager.sessions:
                continue
            seen.add(pair)
            if manager.try_downgrade(*pair).authorized:
                refolded += 1
        return refolded

    # -- background ticking ----------------------------------------------------
    async def start(self) -> None:
        """Run a background ticker flushing every ``tick_interval``."""
        if self._ticker is not None:
            return

        async def tick_forever() -> None:
            """Flush on a fixed cadence until cancelled by :meth:`stop`."""
            try:
                while True:
                    await asyncio.sleep(self.config.tick_interval)
                    await self.flush()
            except asyncio.CancelledError:
                raise

        self._ticker = asyncio.get_running_loop().create_task(tick_forever())

    async def stop(self) -> None:
        """Cancel the ticker and serve whatever is still queued."""
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
            self._ticker = None
        await self.flush()

    # -- lifecycle -------------------------------------------------------------
    def shutdown(self) -> None:
        """Tear down the shard processes.  The store (if any) is the
        caller's to close; compiled artifacts and ledger bounds are
        already persisted."""
        if self._atomic_ledger:
            # Straggler mirror writes whose batch never acked (a failed
            # flush, an injected fault): persist them now so a clean
            # shutdown loses nothing.  Crash-path stragglers are covered
            # by recovery re-executing the unacked suffix instead.
            for user_id, spec_name, payload in self.ledger.drain_writes():
                self.ledger.store.put_ledger_bound(user_id, spec_name, payload)
        self.pool.shutdown()
        if self.serving_pool is not None:
            self.serving_pool.shutdown()

    def audit_summary(self) -> dict[str, Any]:
        """A compact operational snapshot (counters + component views)."""
        return {
            "stats": vars(self.stats).copy(),
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
            },
            "shards": [vars(s) for s in self.pool.stats()],
            "serving_shards": self.config.serving_shards,
            "supervisor": {
                "stats": vars(self.supervisor.stats).copy(),
                "breakers": {
                    "compile": self.supervisor.breaker_states("compile"),
                    "serving": self.supervisor.breaker_states("serving"),
                },
                "degraded_sessions": len(self._degraded_sessions),
            },
            "open_sessions": (
                self.manager.open_count()
                if self.serving_pool is None
                else len(self._shard_sessions)
            ),
            "audit_events": self.service.audit.total,
            "audit": {
                "retained": len(self.service.audit),
                "capacity": self.service.audit.capacity,
                "spilled": self.service.audit.spilled,
                "dropped": self.service.audit.dropped,
            },
            "journal": (
                None
                if self.journal is None
                else {
                    "entries": len(self.journal),
                    "pending": len(self.journal.pending()),
                    "appends": self.stats.journal_appends,
                    "duplicates": self.stats.journal_duplicates,
                }
            ),
        }
