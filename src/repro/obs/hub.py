"""The gateway's fold point for all telemetry: one registry, one tracer.

A :class:`~repro.server.gateway.DeclassificationServer` owns exactly one
:class:`MetricsHub`.  Gateway-side layers (journal, store, ledger,
supervisor, session manager, edge) record straight into
``hub.registry`` / ``hub.tracer``; serving-shard processes record into
their own process-local registry+tracer and piggyback a drained
:meth:`report <repro.obs.metrics.MetricsRegistry.drain>` on every batch
response, which the gateway folds with :meth:`MetricsHub.absorb`.

The hub also keeps a bounded idempotency-key → trace-id map so the HTTP
edge's access log can stamp each request line with the trace the
gateway assigned it (the edge never computes trace ids itself — journal
sequence numbers live behind the gateway).

``MetricsHub(enabled=False)`` swaps in the null registry and tracer:
instrumented code paths still run, recordings vanish, and
``hub.enabled`` lets hot paths skip building piggyback fragments — the
uninstrumented baseline the ``serving_observed`` benchmark gate
compares against.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["MetricsHub"]


class MetricsHub:
    """One registry + one tracer + the shard-report fold point."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        key_capacity: int = 4096,
    ):
        self.enabled = enabled
        if enabled:
            self.registry: Any = registry or MetricsRegistry()
            self.tracer: Any = tracer or Tracer()
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
        self._key_capacity = key_capacity
        self._key_lock = threading.Lock()
        self._key_traces: dict[str, str] = {}

    # -- shard piggyback ---------------------------------------------------
    def absorb(self, obs: Mapping[str, Any] | None) -> None:
        """Fold one batch response's ``obs`` fragment (metrics + spans)."""
        if not obs or not self.enabled:
            return
        metrics = obs.get("metrics")
        if metrics:
            self.registry.absorb(metrics)
        spans = obs.get("spans")
        if spans:
            self.tracer.absorb(spans)

    # -- idempotency-key → trace-id map ------------------------------------
    def bind_key(self, key: str | None, trace_id: str) -> None:
        """Remember which trace a client idempotency key resolved to."""
        if key is None or not self.enabled:
            return
        with self._key_lock:
            if key not in self._key_traces and (
                len(self._key_traces) >= self._key_capacity
            ):
                self._key_traces.pop(next(iter(self._key_traces)))
            self._key_traces[key] = trace_id

    def trace_for_key(self, key: str | None) -> str | None:
        """The trace id bound to an idempotency key, if still retained."""
        if key is None:
            return None
        with self._key_lock:
            return self._key_traces.get(key)
