"""The ``AbstractDomain`` interface (paper Figure 3).

An abstract domain value represents a *set of secrets* — the attacker's
knowledge.  The interface is the paper's six set-theoretic methods::

    top     bottom     member (∈)     subset (⊆)     intersect (∩)     size

plus the two class laws the paper states as refinement types:

* ``sizeLaw``:    d1 ⊆ d2  ⟹  size(d1) <= size(d2)
* ``subsetLaw``:  d1 ⊆ d2  ⟹  (c ∈ d1 ⟹ c ∈ d2)

In Liquid Haskell the laws are proof obligations discharged at compile
time; here they are implemented as *checkable* assertions
(:func:`check_size_law`, :func:`check_subset_law`) that the property-based
test-suite exercises on randomly generated domains, and that
:mod:`repro.refine.checker` re-verifies on every synthesized artifact.

Every domain value carries its :class:`~repro.lang.secrets.SecretSpec`, so
``top``/``bottom``/``size`` are well defined without extra context.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec, SecretValue

__all__ = ["AbstractDomain", "DomainMismatch", "check_size_law", "check_subset_law"]


class DomainMismatch(TypeError):
    """Raised when combining domains over different secret types."""


class AbstractDomain(abc.ABC):
    """A set of secrets represented symbolically.

    Concrete instances: :class:`repro.domains.box.IntervalDomain` (the
    paper's ``A_I``) and :class:`repro.domains.powerset.PowersetDomain`
    (the paper's ``A_P``).
    """

    spec: SecretSpec

    # -- constructors ------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def top(cls, spec: SecretSpec) -> "AbstractDomain":
        """The full domain ⊤: every secret is possible."""

    @classmethod
    @abc.abstractmethod
    def bottom(cls, spec: SecretSpec) -> "AbstractDomain":
        """The empty domain ⊥: no secret is possible."""

    # -- the six methods -----------------------------------------------------
    @abc.abstractmethod
    def contains(self, secret: SecretValue) -> bool:
        """Membership test ``secret ∈ self``."""

    @abc.abstractmethod
    def is_subset(self, other: "AbstractDomain") -> bool:
        """Exact subset test ``self ⊆ other``.

        Note: the paper's powerset instance uses a sound-but-incomplete
        criterion (section 4.4, "if it returns False it may or may not be"
        a subset); our implementations are exact via box algebra.
        """

    @abc.abstractmethod
    def intersect(self, other: "AbstractDomain") -> "AbstractDomain":
        """Set intersection; the result is ⊆ both arguments."""

    @abc.abstractmethod
    def size(self) -> int:
        """Exact number of secrets represented (the domain's "volume")."""

    # -- verification hooks ----------------------------------------------------
    @abc.abstractmethod
    def member_formula(self) -> BoolExpr:
        """A query-language formula true exactly on the domain's members.

        This is how the refinement checker reasons about *all* members /
        non-members of a domain without quantifiers — the Python analogue
        of the paper's abstract-refinement indexing.
        """

    @abc.abstractmethod
    def is_empty(self) -> bool:
        """Whether the domain represents no secrets (size() == 0)."""

    # -- shared helpers ----------------------------------------------------
    def _check_same_spec(self, other: "AbstractDomain") -> None:
        if self.spec != other.spec:
            raise DomainMismatch(
                f"cannot combine domains over {self.spec.name!r} and "
                f"{other.spec.name!r}"
            )

    @property
    def field_names(self) -> Sequence[str]:
        """Secret field names, in declaration order."""
        return self.spec.field_names


def check_size_law(d1: AbstractDomain, d2: AbstractDomain) -> bool:
    """The paper's ``sizeLaw``: if d1 ⊆ d2 then size d1 <= size d2.

    Vacuously true when d1 is not a subset of d2 (the law's precondition).
    """
    if not d1.is_subset(d2):
        return True
    return d1.size() <= d2.size()


def check_subset_law(
    secret: SecretValue, d1: AbstractDomain, d2: AbstractDomain
) -> bool:
    """The paper's ``subsetLaw``: if d1 ⊆ d2 then c ∈ d1 implies c ∈ d2."""
    if not d1.is_subset(d2):
        return True
    if not d1.contains(secret):
        return True
    return d2.contains(secret)
