"""Session multiplexing and the batched downgrade path."""

import pytest

from repro.core.plugin import QueryRegistry
from repro.domains.box import IntervalDomain
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import AnosyT, PolicyViolation, UnknownQuery
from repro.monad.policy import size_above
from repro.monad.protected import ProtectedSecret
from repro.monad.secure import SecureRuntime
from repro.service.session import SessionManager

SPEC = SecretSpec.declare("S", x=(0, 19), y=(0, 19))
QUERY = "x + y <= 10"


@pytest.fixture
def registry():
    reg = QueryRegistry()
    reg.compile_and_register("q", QUERY, SPEC)
    return reg


@pytest.fixture
def manager(registry):
    return SessionManager(registry=registry, policy=size_above(3))


class TestSessionLifecycle:
    def test_open_and_lookup(self, manager):
        session = manager.open_session("alice", (SPEC, (3, 4)))
        assert manager.session("alice") is session
        assert manager.open_count() == 1
        assert session.knowledge is None
        assert session.knowledge_size() is None

    def test_open_accepts_protected_secrets(self, manager):
        sealed = ProtectedSecret.seal(SPEC, (3, 4))
        assert manager.open_session("alice", sealed).secret is sealed

    def test_duplicate_ids_rejected(self, manager):
        manager.open_session("alice", (SPEC, (3, 4)))
        with pytest.raises(ValueError, match="already open"):
            manager.open_session("alice", (SPEC, (5, 5)))

    def test_close_returns_final_state(self, manager):
        manager.open_session("alice", (SPEC, (3, 4)))
        manager.downgrade("alice", "q")
        closed = manager.close_session("alice")
        assert closed.authorized_count() == 1
        assert manager.open_count() == 0
        with pytest.raises(KeyError):
            manager.session("alice")

    def test_bulk_open(self, manager):
        manager.open_sessions({f"u{i}": (SPEC, (i, i)) for i in range(5)})
        assert manager.open_count() == 5

    def test_bad_mode_rejected(self, registry):
        with pytest.raises(ValueError, match="mode"):
            SessionManager(registry=registry, policy=size_above(3), mode="sideways")


class TestSingleDowngrade:
    def test_matches_anosy_t(self, registry):
        """The service path and the monad transformer agree decision-for-
        decision and posterior-for-posterior."""
        manager = SessionManager(registry=registry, policy=size_above(3))
        monad = AnosyT(SecureRuntime(), size_above(3), registry)
        secret = ProtectedSecret.seal(SPEC, (3, 4))
        manager.open_session("alice", secret)

        for _ in range(3):
            service_side = manager.try_downgrade("alice", "q")
            monad_side = monad.try_downgrade(secret, "q")
            assert service_side == monad_side
            assert manager.knowledge_of("alice") == monad.knowledge_of(secret)

    def test_unknown_query_raises(self, manager):
        manager.open_session("alice", (SPEC, (3, 4)))
        with pytest.raises(UnknownQuery):
            manager.downgrade("alice", "nope")

    def test_policy_violation_raises(self, registry):
        manager = SessionManager(registry=registry, policy=size_above(10**6))
        manager.open_session("alice", (SPEC, (3, 4)))
        with pytest.raises(PolicyViolation):
            manager.downgrade("alice", "q")

    def test_unknown_session_raises(self, manager):
        with pytest.raises(KeyError, match="no open session"):
            manager.try_downgrade("ghost", "q")

    def test_spec_mismatch_refused(self, manager, registry):
        other = SecretSpec.declare("Other", z=(0, 9))
        registry.compile_and_register("qz", "z <= 4", other)
        manager.open_session("alice", (SPEC, (3, 4)))
        decision = manager.try_downgrade("alice", "qz")
        assert not decision.authorized
        assert "is over" in decision.reason
        assert manager.session("alice").history == []


class TestBatchDowngrade:
    def test_covers_all_open_sessions_by_default(self, manager):
        manager.open_sessions({f"u{i}": (SPEC, (i, 19 - i)) for i in range(20)})
        decisions = manager.downgrade_batch("q")
        assert set(decisions) == set(manager.sessions)
        assert all(d.authorized for d in decisions.values())

    def test_responses_are_per_secret(self, manager):
        manager.open_session("low", (SPEC, (1, 1)))
        manager.open_session("high", (SPEC, (19, 19)))
        decisions = manager.downgrade_batch("q")
        assert decisions["low"].response is True
        assert decisions["high"].response is False

    def test_knowledge_tracked_per_session(self, manager):
        manager.open_session("low", (SPEC, (1, 1)))
        manager.open_session("high", (SPEC, (19, 19)))
        manager.downgrade_batch("q")
        low = manager.knowledge_of("low")
        high = manager.knowledge_of("high")
        assert low is not None and high is not None
        assert low != high
        assert low.contains((1, 1))
        assert high.contains((19, 19))

    def test_fresh_sessions_share_one_posterior_object(self, manager):
        """The per-prior memo means a fleet of fresh sessions with the
        same response literally shares the posterior domain."""
        manager.open_session("a", (SPEC, (1, 1)))
        manager.open_session("b", (SPEC, (2, 2)))
        manager.downgrade_batch("q")
        assert manager.knowledge_of("a") is manager.knowledge_of("b")

    def test_explicit_subset_of_sessions(self, manager):
        manager.open_sessions({f"u{i}": (SPEC, (i, i)) for i in range(4)})
        decisions = manager.downgrade_batch("q", ["u1", "u3"])
        assert set(decisions) == {"u1", "u3"}
        assert manager.knowledge_of("u0") is None

    def test_duplicate_ids_collapse_to_one_request(self, manager):
        manager.open_session("alice", (SPEC, (3, 4)))
        decisions = manager.downgrade_batch("q", ["alice", "alice"])
        assert list(decisions) == ["alice"]
        assert decisions["alice"].authorized
        assert len(manager.session("alice").history) == 1

    def test_unknown_session_fails_before_any_mutation(self, manager):
        manager.open_session("alice", (SPEC, (3, 4)))
        with pytest.raises(KeyError, match="ghost"):
            manager.downgrade_batch("q", ["alice", "ghost"])
        assert manager.knowledge_of("alice") is None
        assert manager.session("alice").history == []

    def test_unknown_query_refuses_everyone(self, manager):
        manager.open_sessions({f"u{i}": (SPEC, (i, i)) for i in range(3)})
        decisions = manager.downgrade_batch("nope")
        assert all(not d.authorized for d in decisions.values())
        assert all("Can't downgrade" in d.reason for d in decisions.values())

    def test_refused_sessions_keep_their_prior(self, registry):
        manager = SessionManager(registry=registry, policy=size_above(10**6))
        manager.open_session("alice", (SPEC, (3, 4)))
        decisions = manager.downgrade_batch("q")
        assert not decisions["alice"].authorized
        assert manager.knowledge_of("alice") is None
        record = manager.session("alice").history[-1]
        assert not record.authorized
        assert record.posterior_size is None

    def test_audit_records_sizes(self, manager):
        manager.open_session("alice", (SPEC, (3, 4)))
        manager.downgrade_batch("q")
        record = manager.session("alice").history[-1]
        assert record.prior_size == SPEC.space_size()
        assert record.posterior_size == manager.knowledge_of("alice").size()
        assert manager.authorized_count() == 1

    def test_batch_after_individual_downgrades(self, manager):
        """Sessions with different priors are decided independently: the
        repeat asker's narrowed prior makes the same query a violation
        (its false-side posterior would shrink below the policy bound),
        while the fresh session sails through."""
        manager.open_session("a", (SPEC, (1, 1)))
        manager.open_session("b", (SPEC, (2, 2)))
        manager.try_downgrade("a", "q")
        narrowed = manager.knowledge_of("a")
        decisions = manager.downgrade_batch("q")
        assert not decisions["a"].authorized
        assert decisions["b"].authorized
        assert manager.knowledge_of("a") == narrowed
        assert manager.knowledge_of("b").is_subset(IntervalDomain.top(SPEC))


class TestConcurrentUse:
    """The worker-pool contract: the manager serializes whole batches.

    Every interleaving of concurrent downgrades must be *some*
    linearization — the per-session audit trail sees complete downgrades
    in a consistent order, never a torn knowledge/history pair.
    """

    def test_concurrent_batches_linearize(self, registry):
        import threading

        manager = SessionManager(registry=registry, policy=size_above(3))
        manager.open_sessions({f"u{i}": (SPEC, (i % 20, i % 20)) for i in range(50)})
        errors = []
        barrier = threading.Barrier(8)

        def hammer():
            try:
                barrier.wait()
                for _ in range(5):
                    manager.downgrade_batch("q")
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # 8 threads x 5 batches each hit every session exactly 40 times.
        for i in range(50):
            session = manager.session(f"u{i}")
            assert len(session.history) == 40
            # Knowledge settles after the first downgrade; every recorded
            # posterior matches the settled value (no torn updates).
            settled = session.knowledge
            authorized = [r for r in session.history if r.authorized]
            if authorized:
                assert settled is not None
                assert authorized[-1].posterior_size == settled.size()

    def test_concurrent_open_close_keeps_ids_unique(self, registry):
        import threading

        manager = SessionManager(registry=registry, policy=size_above(3))
        opened = []
        lock = threading.Lock()

        def churn(tid):
            for i in range(25):
                sid = f"t{tid}-{i}"
                manager.open_session(sid, (SPEC, (1, 2)))
                with lock:
                    opened.append(sid)
                if i % 3 == 0:
                    manager.close_session(sid)

        threads = [threading.Thread(target=churn, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(opened) == 150
        assert manager.open_count() == sum(1 for i in range(25) if i % 3 != 0) * 6
