"""The write-ahead request journal: crash consistency for the gateway.

PR 7 made the runtime survive its *shards*; this module makes it survive
its *gateway*.  The durable store already holds everything the runtime
must not lose slowly (artifacts, ledger bounds); the journal holds what
it must not lose *mid-request*: every state-changing request
(configure / compile / open / close / epoch / downgrade) is appended —
with a client-supplied **idempotency key** and a monotone sequence
number — *before* it executes, and acknowledged with a digest of its
outcome after the durable-mirror fold.  Three properties fall out:

* **exactly-once effects over at-least-once delivery** — a duplicate
  idempotency key short-circuits to the recorded response instead of
  re-executing, so a client that retries after a lost response never
  double-charges a budget (this subsumes the ``duplicate_delivery``
  fault at the network edge);
* **crash recovery** — after a gateway death, the unacknowledged
  journal suffix is re-applied through the same idempotent machinery
  (:meth:`DeclassificationServer.recover_from_journal
  <repro.server.gateway.DeclassificationServer.recover_from_journal>`);
  ledger folds are monotone intersections, so a request that executed
  but never acked converges to the same ledger state on re-execution;
* **deterministic replay** — the acknowledged prefix, re-executed in
  sequence order against a fresh gateway, must reproduce every outcome
  digest bit-for-bit (:class:`~repro.server.replay.ReplaySession`).

The storage lives in :class:`~repro.server.store.SQLiteStore`'s
``request_journal`` table (independently format-versioned, like
``ledger_bounds``); :class:`MemoryJournalBackend` provides the same
contract for store-less tests.  :class:`RequestJournal` is the typed
wrapper both the gateway and the replay tool speak.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.obs.metrics import NULL_REGISTRY
from repro.service.serialize import canonical_json, payload_digest

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "JournalEntry",
    "JournalBackend",
    "MemoryJournalBackend",
    "RequestJournal",
    "JournalState",
    "chain_digest",
    "live_state",
]

#: Version of the journal row encoding.  Bumped when the payload/outcome
#: codecs change incompatibly; a store written by a different version
#: refuses to open (see ``SQLiteStore._check_version``).
JOURNAL_FORMAT_VERSION = 1

#: Seed of every chained audit digest, so an empty journal has a
#: well-defined digest and chains never collide with raw sha256 output.
_CHAIN_SEED = "anosy-journal-v1"


@dataclass(frozen=True)
class JournalEntry:
    """One journaled request: identity, payload, and (once acked) outcome.

    ``status`` is ``"pending"`` from append until acknowledgement and
    ``"done"`` after; ``outcome_digest`` / ``response`` are ``None``
    exactly while pending.  ``response`` is the full recorded response
    payload returned to duplicate deliveries; ``outcome_digest`` covers
    only the *deterministic* outcome encoding (see DESIGN.md §12 for
    what is pinned and what may differ).
    """

    seq: int
    key: str
    kind: str
    payload: dict[str, Any]
    status: str
    outcome_digest: str | None = None
    response: dict[str, Any] | None = None


#: Raw backend row: (seq, key, kind, payload_json, status, digest, response_json).
_Row = tuple[int, str, str, str, str, str | None, str | None]


@runtime_checkable
class JournalBackend(Protocol):
    """Durable storage contract behind :class:`RequestJournal`.

    :class:`~repro.server.store.SQLiteStore` implements this against the
    ``request_journal`` table; :class:`MemoryJournalBackend` against a
    dict.  All methods are append/read — rows are never mutated except
    by :meth:`journal_ack` (pending → done) and never deleted except by
    :meth:`journal_compact`.
    """

    def journal_append(self, key: str, kind: str, payload_json: str) -> _Row:
        """Insert a pending row under *key*, or return the existing row."""
        ...

    def journal_append_many(
        self, items: list[tuple[str, str, str]]
    ) -> list[_Row]:
        """Batched :meth:`journal_append` (one durable transaction)."""
        ...

    def journal_ack(self, seq: int, digest: str, response_json: str) -> None:
        """Mark row *seq* done, recording its outcome digest and response."""
        ...

    def journal_ack_many(self, items: list[tuple[int, str, str]]) -> None:
        """Batched :meth:`journal_ack` (one durable transaction)."""
        ...

    def journal_lookup(self, key: str) -> _Row | None:
        """The row under *key*, or ``None``."""
        ...

    def journal_entries(self) -> list[_Row]:
        """Every row, in sequence order."""
        ...

    def journal_next_seq(self) -> int:
        """One past the highest sequence number ever issued."""
        ...

    def journal_compact(self, upto_seq: int) -> int:
        """Delete acknowledged rows with ``seq <= upto_seq``; return count."""
        ...


class MemoryJournalBackend:
    """An in-process :class:`JournalBackend` for store-less deployments.

    Same contract, no durability: a journal on this backend still gives
    exactly-once effects and deterministic replay *within* a process
    lifetime, which is what tests and single-shot tools need.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: dict[str, list[Any]] = {}
        self._next_seq = 1

    def journal_append(self, key: str, kind: str, payload_json: str) -> _Row:
        """Insert a pending row under *key*, or return the existing row."""
        return self.journal_append_many([(key, kind, payload_json)])[0]

    def journal_append_many(
        self, items: list[tuple[str, str, str]]
    ) -> list[_Row]:
        """Batched append; duplicates within the batch resolve to one row."""
        out: list[_Row] = []
        with self._lock:
            for key, kind, payload_json in items:
                row = self._rows.get(key)
                if row is None:
                    row = [self._next_seq, key, kind, payload_json, "pending", None, None]
                    self._next_seq += 1
                    self._rows[key] = row
                out.append(tuple(row))
        return out

    def journal_ack(self, seq: int, digest: str, response_json: str) -> None:
        """Mark row *seq* done (idempotent)."""
        self.journal_ack_many([(seq, digest, response_json)])

    def journal_ack_many(self, items: list[tuple[int, str, str]]) -> None:
        """Batched ack."""
        with self._lock:
            by_seq = {row[0]: row for row in self._rows.values()}
            for seq, digest, response_json in items:
                row = by_seq.get(seq)
                if row is not None:
                    row[4], row[5], row[6] = "done", digest, response_json

    def journal_lookup(self, key: str) -> _Row | None:
        """The row under *key*, or ``None``."""
        with self._lock:
            row = self._rows.get(key)
            return None if row is None else tuple(row)

    def journal_entries(self) -> list[_Row]:
        """Every row, in sequence order."""
        with self._lock:
            return sorted(
                (tuple(row) for row in self._rows.values()), key=lambda r: r[0]
            )

    def journal_next_seq(self) -> int:
        """One past the highest sequence number ever issued."""
        with self._lock:
            return self._next_seq

    def journal_compact(self, upto_seq: int) -> int:
        """Delete acknowledged rows with ``seq <= upto_seq``."""
        with self._lock:
            doomed = [
                key
                for key, row in self._rows.items()
                if row[4] == "done" and row[0] <= upto_seq
            ]
            for key in doomed:
                del self._rows[key]
            return len(doomed)


def _decode_row(row: _Row) -> JournalEntry:
    seq, key, kind, payload_json, status, digest, response_json = row
    return JournalEntry(
        seq=int(seq),
        key=key,
        kind=kind,
        payload=json.loads(payload_json),
        status=status,
        outcome_digest=digest,
        response=None if response_json is None else json.loads(response_json),
    )


class RequestJournal:
    """The gateway's write-ahead log, typed.

    Wraps a :class:`JournalBackend` with the append/ack discipline the
    gateway follows (see DESIGN.md §12): :meth:`begin` *before*
    execution, :meth:`ack` after the durable-mirror fold, duplicate
    keys answered from :meth:`recorded_response`.  Also the spill sink
    for the bounded in-memory audit trail (:meth:`spill_audit`) and the
    source :class:`~repro.server.replay.ReplaySession` reads.
    """

    def __init__(self, backend: JournalBackend):
        self.backend = backend
        #: Where append/ack latency and volume land; the owning gateway
        #: swaps in its hub's registry (see ``DeclassificationServer``).
        self.metrics: Any = NULL_REGISTRY
        self._lock = threading.Lock()
        # Auto-keys (server-generated, for callers that did not supply
        # one) count up from a boot floor above both the sequence
        # high-water mark and every auto key already journaled, so a
        # restarted process never reissues a dead process's keys (which
        # would silently short-circuit to the dead request's response).
        floor = backend.journal_next_seq()
        for row in backend.journal_entries():
            key = row[1]
            if key.startswith("auto/"):
                tail = key.rsplit("/", 1)[-1]
                if tail.isdigit():
                    floor = max(floor, int(tail) + 1)
        self._auto = floor

    # -- write path --------------------------------------------------------
    def auto_key(self, kind: str) -> str:
        """A fresh server-generated idempotency key for one request."""
        with self._lock:
            n = self._auto
            self._auto += 1
        return f"auto/{kind}/{n}"

    def begin(self, key: str, kind: str, payload: dict[str, Any]) -> JournalEntry:
        """Journal one request before executing it.

        Returns the (new or pre-existing) entry.  A returned entry with
        ``status == "done"`` means this key already executed to
        acknowledgement: short-circuit to its ``response`` instead of
        executing again.
        """
        return self.begin_many([(key, kind, payload)])[0]

    def begin_many(
        self, items: list[tuple[str, str, dict[str, Any]]]
    ) -> list[JournalEntry]:
        """Batched :meth:`begin` — one durable transaction per tick."""
        if not items:
            return []
        start = time.perf_counter()
        rows = self.backend.journal_append_many(
            [(key, kind, canonical_json(payload)) for key, kind, payload in items]
        )
        metrics = self.metrics
        if metrics:
            metrics.histogram(
                "anosy_journal_append_seconds",
                "Durable write-ahead append latency, per begin transaction.",
                channel="timing",
            ).observe(time.perf_counter() - start)
            metrics.counter(
                "anosy_journal_appends_total",
                "Requests journaled before execution.",
            ).inc(len(rows))
        return [_decode_row(row) for row in rows]

    def ack(
        self,
        seq: int,
        outcome: dict[str, Any],
        *,
        response: dict[str, Any] | None = None,
        bounds: list[tuple[str, str, dict[str, Any]]] | None = None,
    ) -> str:
        """Acknowledge one executed request; returns its outcome digest.

        *outcome* is the deterministic encoding the digest covers (and
        replay recomputes); *response* is what duplicate deliveries get
        back, defaulting to the outcome itself.  *bounds* are drained
        ledger-mirror writes to land atomically with the ack (see
        :meth:`ack_many`).
        """
        digest = payload_digest(outcome)
        self._ack_rows(
            [(seq, digest, canonical_json(outcome if response is None else response))],
            bounds,
        )
        return digest

    def ack_many(
        self,
        items: list[tuple[int, dict[str, Any]]],
        *,
        bounds: list[tuple[str, str, dict[str, Any]]] | None = None,
    ) -> list[str]:
        """Batched :meth:`ack` (outcome doubles as the response).

        When *bounds* — ``(user_id, spec_name, payload)`` ledger-mirror
        writes drained from a buffering ledger — are supplied, they are
        written in the *same* transaction as the acks, which requires a
        backend speaking ``journal_ack_with_bounds`` (the SQLite store
        does).  That atomicity is the exactly-once guarantee.
        """
        if not items and not bounds:
            return []
        digests = [payload_digest(outcome) for _seq, outcome in items]
        self._ack_rows(
            [
                (seq, digest, canonical_json(outcome))
                for (seq, outcome), digest in zip(items, digests)
            ],
            bounds,
        )
        return digests

    def _ack_rows(
        self,
        rows: list[tuple[int, str, str]],
        bounds: list[tuple[str, str, dict[str, Any]]] | None,
    ) -> None:
        start = time.perf_counter()
        if bounds:
            atomic = getattr(self.backend, "journal_ack_with_bounds", None)
            if atomic is None:
                raise ValueError(
                    "journal backend cannot ack atomically with ledger bounds"
                )
            atomic(rows, bounds)
        else:
            self.backend.journal_ack_many(rows)
        metrics = self.metrics
        if metrics:
            metrics.histogram(
                "anosy_journal_ack_seconds",
                "Durable acknowledgement latency, per ack transaction "
                "(ledger-mirror bounds included when fused).",
                channel="timing",
            ).observe(time.perf_counter() - start)
            metrics.counter(
                "anosy_journal_acks_total",
                "Executed requests acknowledged in the journal.",
            ).inc(len(rows))

    # -- read path ---------------------------------------------------------
    def entry(self, key: str) -> JournalEntry | None:
        """The entry under *key*, or ``None``."""
        row = self.backend.journal_lookup(key)
        return None if row is None else _decode_row(row)

    def recorded_response(self, key: str) -> dict[str, Any] | None:
        """The recorded response for an *acknowledged* key, else ``None``."""
        entry = self.entry(key)
        if entry is None or entry.status != "done":
            return None
        return entry.response

    def entries(self) -> list[JournalEntry]:
        """Every entry, in sequence order."""
        return [_decode_row(row) for row in self.backend.journal_entries()]

    def pending(self) -> list[JournalEntry]:
        """The unacknowledged suffix, in sequence order."""
        return [e for e in self.entries() if e.status == "pending"]

    def __len__(self) -> int:
        """Number of journaled entries (pending and done)."""
        return len(self.backend.journal_entries())

    def audit_digest(self) -> str:
        """The chained digest over every acknowledged outcome, in order.

        This is the journal's one-line fingerprint of the run: replaying
        the journal must reproduce it exactly
        (:attr:`~repro.server.replay.ReplayReport.conforms`).
        """
        return chain_digest(
            e.outcome_digest
            for e in self.entries()
            if e.status == "done" and e.outcome_digest is not None
        )

    # -- maintenance -------------------------------------------------------
    def spill_audit(self, events: Iterable[Any]) -> None:
        """Persist audit events evicted from the in-memory ring.

        The sink for :class:`~repro.service.api.AuditTrail`'s overflow
        hook; events land in the backend's ``audit_spill`` table when it
        has one (the memory backend accepts and drops them).
        """
        sink = getattr(self.backend, "append_audit_spill", None)
        if sink is None:
            return
        sink(
            [
                (event.seq, event.kind, canonical_json(event.data))
                for event in events
            ]
        )

    def compact(self, upto_seq: int | None = None) -> int:
        """Drop acknowledged entries with ``seq <= upto_seq``; return count.

        Pending entries are never dropped (they are the recovery
        suffix).  Compaction narrows the duplicate-detection window: a
        client retrying a key older than the compaction horizon
        re-executes instead of short-circuiting — safe for effects
        (ledger folds are idempotent) but it may observe a fresher
        outcome, so compact behind the longest client retry window (see
        the operations runbook).
        """
        if upto_seq is None:
            entries = self.entries()
            done = [e.seq for e in entries if e.status == "done"]
            if not done:
                return 0
            upto_seq = max(done)
        return self.backend.journal_compact(upto_seq)


def chain_digest(digests: Iterable[str]) -> str:
    """Fold a digest sequence into one order-sensitive chained digest."""
    acc = hashlib.sha256(_CHAIN_SEED.encode("utf-8")).hexdigest()
    for digest in digests:
        acc = hashlib.sha256((acc + digest).encode("utf-8")).hexdigest()
    return acc


@dataclass
class JournalState:
    """The live gateway state a journal prefix implies.

    ``compiles`` maps query name → latest compile payload; ``sessions``
    maps session id → its open payload, with closed sessions removed.
    Both recovery (rebuilding ephemeral state after a crash) and replay
    (rebuilding it at a restart boundary) are folds of this function.
    """

    compiles: dict[str, dict[str, Any]] = field(default_factory=dict)
    sessions: dict[str, dict[str, Any]] = field(default_factory=dict)

    def fold(self, entry: JournalEntry) -> None:
        """Fold one entry into the state."""
        if entry.kind == "compile":
            self.compiles[entry.payload["name"]] = entry.payload
        elif entry.kind == "open_session":
            self.sessions[entry.payload["session_id"]] = entry.payload
        elif entry.kind == "close_session":
            self.sessions.pop(entry.payload["session_id"], None)


def live_state(entries: Iterable[JournalEntry]) -> JournalState:
    """Fold a journal prefix into the ephemeral state it implies."""
    state = JournalState()
    for entry in sorted(entries, key=lambda e: e.seq):
        state.fold(entry)
    return state
