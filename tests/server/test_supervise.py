"""Unit coverage for the supervision primitives and the fault plan.

The chaos suite (``test_chaos.py``) exercises these end to end; this
file pins the state machines themselves: failure classification, breaker
transitions under a fake clock, deterministic backoff, the supervise
driver's retry/restart/fallback contract, and FaultPlan's seeded,
counter-persistent firing.
"""

import asyncio
import json
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.server.faults import (
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    clear_fault_plan,
    install_fault_plan,
    maybe_corrupt,
    maybe_crash,
    maybe_db_locked,
    maybe_delay,
    should_duplicate,
)
from repro.server.supervise import (
    CircuitBreaker,
    CodecError,
    RetryPolicy,
    ShardCrash,
    ShardFailure,
    ShardSupervisor,
    ShardTimeout,
    classify_failure,
)


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


# ---------------------------------------------------------------------------
# classify_failure
# ---------------------------------------------------------------------------


def test_classify_maps_executor_and_codec_failures():
    crash = classify_failure(BrokenProcessPool("boom"), shard=3, site="serve")
    assert isinstance(crash, ShardCrash)
    assert crash.shard == 3 and crash.site == "serve"
    assert crash.to_payload()["kind"] == "crash"

    timeout = classify_failure(asyncio.TimeoutError(), shard=1, site="compile")
    assert isinstance(timeout, ShardTimeout)

    try:
        json.loads("{nope")
    except json.JSONDecodeError as exc:
        codec = classify_failure(exc, shard=0, site="serve")
    assert isinstance(codec, CodecError)
    assert "undecodable" in codec.detail


def test_classify_passes_through_fatal_and_application_errors():
    app = ValueError("a bug, not a shard failure")
    assert classify_failure(app, shard=0, site="serve") is app
    ki = KeyboardInterrupt()
    assert classify_failure(ki, shard=0, site="serve") is ki
    cancel = asyncio.CancelledError()
    assert classify_failure(cancel, shard=0, site="serve") is cancel


def test_classify_fills_missing_location_on_existing_failures():
    failure = ShardCrash("already typed")
    out = classify_failure(failure, shard=7, site="compile")
    assert out is failure and out.shard == 7 and out.site == "compile"


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_breaker_opens_after_threshold_and_probes_after_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
    assert breaker.state() == "closed" and breaker.allow()
    assert breaker.record_failure() is False
    assert breaker.record_failure() is False
    assert breaker.record_failure() is True  # this one opens it
    assert breaker.state() == "open" and not breaker.allow()
    assert breaker.retry_after() == pytest.approx(10.0)
    clock.now = 9.0
    assert breaker.state() == "open"
    clock.now = 10.0
    assert breaker.state() == "half_open" and breaker.allow()
    # Probe fails: re-open for another cooldown, no duplicate "opened".
    breaker.record_failure()
    assert breaker.state() == "open"
    clock.now = 21.0
    breaker.record_success()
    assert breaker.state() == "closed" and breaker.retry_after() == 0.0


def test_breaker_success_resets_consecutive_count():
    breaker = CircuitBreaker(threshold=2, cooldown=1.0, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()
    assert breaker.record_failure() is False  # count restarted
    assert breaker.state() == "closed"


def test_breaker_trip_with_cooldown_override():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown=0.5, clock=clock)
    breaker.trip(cooldown=3600.0)
    assert breaker.state() == "open"
    clock.now = 100.0
    assert breaker.state() == "open"  # override, not the configured 0.5s
    assert breaker.retry_after() == pytest.approx(3500.0)
    breaker.record_success()
    assert breaker.state() == "closed"
    breaker.trip()
    clock.now = 100.6
    assert breaker.state() == "half_open"  # back on the configured cooldown


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_backoff_grows_exponentially_and_caps():
    import random

    policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
    rng = random.Random(0)
    assert policy.delay_for(1, rng) == pytest.approx(0.1)
    assert policy.delay_for(2, rng) == pytest.approx(0.2)
    assert policy.delay_for(3, rng) == pytest.approx(0.4)
    assert policy.delay_for(4, rng) == pytest.approx(0.5)  # capped

    jittered = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
    a = jittered.delay_for(1, random.Random(7))
    b = jittered.delay_for(1, random.Random(7))
    assert a == b  # deterministic under a fixed seed
    assert 0.1 <= a <= 0.15


# ---------------------------------------------------------------------------
# ShardSupervisor.supervise
# ---------------------------------------------------------------------------


def _supervisor(**kwargs) -> ShardSupervisor:
    kwargs.setdefault("retry", RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0))
    kwargs.setdefault("breaker_threshold", 10)
    return ShardSupervisor(**kwargs)


def test_supervise_retries_transient_failures_then_succeeds():
    calls = {"attempts": 0, "restarts": 0}

    async def scenario():
        sup = _supervisor()

        async def attempt():
            calls["attempts"] += 1
            if calls["attempts"] < 3:
                raise BrokenProcessPool("flaky")
            return "ok"

        async def restart():
            calls["restarts"] += 1

        return await sup.supervise("compile", 0, attempt, restart=restart), sup

    result, sup = asyncio.run(scenario())
    assert result == "ok"
    assert calls == {"attempts": 3, "restarts": 2}
    assert sup.stats.retries == 2 and sup.stats.crashes == 2
    assert sup.breaker("compile", 0).state() == "closed"


def test_supervise_exhausts_retries_then_raises_typed_failure():
    async def scenario():
        sup = _supervisor()

        async def attempt():
            raise BrokenProcessPool("always")

        with pytest.raises(ShardCrash) as excinfo:
            await sup.supervise("serve", 2, attempt)
        return excinfo.value, sup

    failure, sup = asyncio.run(scenario())
    assert failure.shard == 2 and failure.site == "serve"
    assert sup.stats.attempts == 3  # 1 + max_retries


def test_supervise_falls_back_after_exhaustion_and_on_open_breaker():
    async def scenario():
        sup = _supervisor(breaker_threshold=3, breaker_cooldown=3600.0)

        async def attempt():
            raise BrokenProcessPool("down hard")

        async def fallback():
            return "fallback"

        first = await sup.supervise("serve", 0, attempt, fallback=fallback)
        assert sup.breaker("serve", 0).state() == "open"
        # Second call: breaker is open, attempt must not even run.
        ran = {"attempt": False}

        async def attempt2():
            ran["attempt"] = True
            return "real"

        second = await sup.supervise("serve", 0, attempt2, fallback=fallback)
        return first, second, ran, sup

    first, second, ran, sup = asyncio.run(scenario())
    assert first == "fallback" and second == "fallback"
    assert ran["attempt"] is False
    assert sup.stats.failovers == 2 and sup.stats.breaker_opens == 1


def test_supervise_deadline_turns_hang_into_timeout():
    async def scenario():
        sup = _supervisor(retry=RetryPolicy(max_retries=0))

        async def attempt():
            await asyncio.sleep(30)

        with pytest.raises(ShardTimeout):
            await sup.supervise("serve", 0, attempt, deadline=0.01)
        return sup

    sup = asyncio.run(scenario())
    assert sup.stats.timeouts == 1


def test_supervise_does_not_retry_application_errors():
    calls = {"attempts": 0}

    async def scenario():
        sup = _supervisor()

        async def attempt():
            calls["attempts"] += 1
            raise ValueError("application bug")

        with pytest.raises(ValueError):
            await sup.supervise("compile", 0, attempt)

    asyncio.run(scenario())
    assert calls["attempts"] == 1


def test_open_fraction_and_earliest_retry():
    sup = _supervisor(breaker_threshold=1, breaker_cooldown=60.0)
    assert sup.open_fraction("serving", 4) == 0.0
    sup.breaker("serving", 1).trip()
    sup.breaker("serving", 3).trip()
    assert sup.open_fraction("serving", 4) == pytest.approx(0.5)
    assert 0.0 < sup.earliest_retry("serving") <= 60.0
    assert sup.breaker_states("serving") == {1: "open", 3: "open"}
    # Other pools are unaffected.
    assert sup.open_fraction("compile", 4) == 0.0


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


def test_fault_spec_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(site="serve", kind="melt_cpu")


def test_fault_plan_take_consumes_budgets_in_order():
    plan = FaultPlan(
        [
            FaultSpec(site="serve", kind="delay", times=2, delay=0.5),
            FaultSpec(site="compile", kind="crash_before_result"),
        ]
    )
    assert plan.take("serve", "delay").delay == 0.5
    assert plan.take("serve", "delay") is not None
    assert plan.take("serve", "delay") is None  # budget spent
    assert plan.take("serve", "crash_before_result") is None  # wrong site
    assert plan.take("compile", "crash_before_result") is not None
    assert plan.fired() == [
        ("serve", "delay"),
        ("serve", "delay"),
        ("compile", "crash_before_result"),
    ]


def test_fault_plan_json_round_trip_and_fingerprint():
    plan = FaultPlan(
        [FaultSpec(site="serve", kind="corrupt_payload", times=3)], seed=42
    )
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.fingerprint() == plan.fingerprint()
    assert clone.seed == 42
    other = FaultPlan([FaultSpec(site="serve", kind="corrupt_payload")], seed=42)
    assert other.fingerprint() != plan.fingerprint()


def test_reinstalling_same_plan_keeps_spent_counters():
    plan = FaultPlan([FaultSpec(site="serve", kind="db_locked", times=1)])
    install_fault_plan(plan, simulate=True)
    with pytest.raises(Exception, match="database is locked"):
        maybe_db_locked("serve")
    # A job payload re-ships the same schedule: counters must persist.
    install_fault_plan(FaultPlan.from_json(plan.to_json()), simulate=True)
    assert active_fault_plan() is plan
    maybe_db_locked("serve")  # budget already spent: no raise


def test_simulated_crash_raises_broken_process_pool():
    install_fault_plan(
        FaultPlan([FaultSpec(site="serve", kind="crash_before_result")]),
        simulate=True,
    )
    with pytest.raises(BrokenProcessPool, match="injected"):
        maybe_crash("serve", "crash_before_result")
    maybe_crash("serve", "crash_before_result")  # spent: no-op


def test_fault_helpers_are_noops_without_a_plan():
    maybe_crash("serve", "crash_before_result")
    maybe_delay("serve")
    maybe_db_locked("store.write")
    assert should_duplicate("serve") is False
    assert maybe_corrupt("serve", '{"a": 1}') == '{"a": 1}'


def test_corrupt_mangles_payload_structurally():
    install_fault_plan(
        FaultPlan([FaultSpec(site="serve", kind="corrupt_payload")]),
        simulate=True,
    )
    mangled = maybe_corrupt("serve", json.dumps({"results": [1, 2, 3]}))
    with pytest.raises(json.JSONDecodeError):
        json.loads(mangled)


def test_probabilistic_faults_are_seeded_deterministic():
    def run(seed):
        plan = FaultPlan(
            [FaultSpec(site="serve", kind="delay", times=100, probability=0.5)],
            seed=seed,
        )
        return [plan.take("serve", "delay") is not None for _ in range(20)]

    assert run(1) == run(1)
    assert run(1) != run(2)  # different seed, different schedule
