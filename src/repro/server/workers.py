"""The sharded compile pool: synthesis off the serving path.

Synthesis is the one expensive operation the runtime performs, so it runs
in worker *processes*, sharded by the canonical query hash
(:func:`~repro.lang.canonical.stable_hash` of the canonicalized AST).
Routing by content rather than round-robin means alpha-equivalent queries
always land on the same shard, whose per-process :class:`SynthesisCache`
and hash-consed kernel memos stay hot — the N-th tenant registering a
reordered copy of a query compiles nothing even before the shared store
sees the artifact.

Jobs cross the process boundary as JSON (the
:func:`~repro.service.serialize.options_to_json` /
:func:`~repro.service.serialize.compiled_query_to_json` codecs), never as
pickles: the exact bytes a worker returns are the bytes the store
persists.

Admission control is per shard: each shard accepts a bounded number of
in-flight jobs and sheds the rest (:class:`ShardOverloaded`) instead of
queueing unboundedly — a loaded synthesis tier must fail fast, not grow a
latency cliff.

``inline=True`` replaces the process pool with synchronous in-process
execution of the *same* payload codec path; tests and coverage runs use
it, and single-core deployments may prefer it.
"""

from __future__ import annotations

import json
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.plugin import CompiledQuery, CompileOptions, compile_query
from repro.lang.ast import BoolExpr
from repro.lang.canonical import (
    canonicalize,
    expr_from_json,
    expr_to_json,
    spec_from_json,
    spec_to_json,
    stable_hash,
)
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.service.cache import SynthesisCache
from repro.service.serialize import (
    compiled_query_from_json,
    compiled_query_to_json,
    options_from_json,
    options_to_json,
)

__all__ = [
    "ShardOverloaded",
    "ShardStats",
    "ShardedCompilePool",
    "compile_payload",
    "shard_of",
]


class ShardOverloaded(RuntimeError):
    """Admission control refused a job: the shard's queue bound is full."""


def shard_of(query: BoolExpr, shards: int) -> int:
    """The shard a query routes to: canonical content hash mod shard count.

    Canonicalization first, so every alpha-equivalent spelling of a query
    (``a + b`` vs ``b + a``) routes to the same shard and reuses its warm
    memos.
    """
    return int(stable_hash(canonicalize(query))[:16], 16) % shards


# ---------------------------------------------------------------------------
# The worker entry point (runs inside shard processes)
# ---------------------------------------------------------------------------

#: Per-process artifact cache: repeated jobs on one shard skip synthesis
#: entirely even before the shared store sees the artifact.
_PROCESS_CACHE: SynthesisCache | None = None


def _process_cache() -> SynthesisCache:
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = SynthesisCache()
    return _PROCESS_CACHE


def compile_payload(payload: str) -> str:
    """Compile one JSON job; the module-level entry point shard processes run.

    The result carries the full artifact encoding plus worker-side
    provenance (pid, whether the shard's local cache already had it).
    """
    data = json.loads(payload)
    query = expr_from_json(data["query"])
    secret = spec_from_json(data["secret"])
    options = options_from_json(data["options"])
    cache = _process_cache()
    hits_before = cache.stats.hits
    compiled = compile_query(data["name"], query, secret, options, cache=cache)
    return json.dumps(
        {
            "artifact": compiled_query_to_json(compiled),
            "pid": os.getpid(),
            "shard_cache_hit": cache.stats.hits > hits_before,
        }
    )


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


@dataclass
class ShardStats:
    """Counters for one shard."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    pending: int = 0


class ShardedCompilePool:
    """A fixed set of single-process shards, routed by canonical query hash.

    Each shard is a one-worker :class:`ProcessPoolExecutor`: a shard is a
    *unit of memo locality*, not a thread pool — widening a shard would
    split its warm cache.  Scale by adding shards.
    """

    def __init__(
        self, shards: int = 1, *, max_pending: int = 8, inline: bool = False
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.shards = shards
        self.max_pending = max_pending
        self.inline = inline
        self._executors: list[ProcessPoolExecutor | None] = [None] * shards
        self._stats = [ShardStats() for _ in range(shards)]
        self._lock = threading.Lock()

    # -- routing -----------------------------------------------------------
    def shard_for(self, query: BoolExpr | str) -> int:
        """The shard a query routes to (parses text queries first)."""
        if isinstance(query, str):
            query = parse_bool(query)
        return shard_of(query, self.shards)

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        name: str,
        query: BoolExpr | str,
        secret: SecretSpec,
        options: CompileOptions,
    ) -> Future:
        """Route a compile job to its shard; the future yields result JSON.

        Raises :class:`ShardOverloaded` (without queueing anything) when
        the shard already has ``max_pending`` jobs in flight.
        """
        if isinstance(query, str):
            query = parse_bool(query)
        shard = self.shard_for(query)
        self._reserve(shard)
        payload = json.dumps(
            {
                "name": name,
                "query": expr_to_json(query),
                "secret": spec_to_json(secret),
                "options": options_to_json(options),
            }
        )
        if self.inline:
            future: Future = Future()
            future.add_done_callback(lambda _f: self._release(shard))
            try:
                future.set_result(compile_payload(payload))
            except BaseException as exc:  # noqa: BLE001 - mirror executor behavior
                future.set_exception(exc)
        else:
            future = self._executor(shard).submit(compile_payload, payload)
            future.add_done_callback(lambda _f: self._release(shard))
        return future

    @staticmethod
    def decode(result_json: str) -> tuple[CompiledQuery, dict]:
        """Decode a worker result into the artifact plus its provenance."""
        data = json.loads(result_json)
        return compiled_query_from_json(data["artifact"]), {
            "pid": data["pid"],
            "shard_cache_hit": data["shard_cache_hit"],
        }

    # -- admission bookkeeping ----------------------------------------------
    def _reserve(self, shard: int) -> None:
        with self._lock:
            stats = self._stats[shard]
            if stats.pending >= self.max_pending:
                stats.shed += 1
                raise ShardOverloaded(
                    f"shard {shard}: {stats.pending} jobs in flight "
                    f">= bound {self.max_pending}"
                )
            stats.pending += 1
            stats.submitted += 1

    def _release(self, shard: int) -> None:
        with self._lock:
            self._stats[shard].pending -= 1
            self._stats[shard].completed += 1

    def _executor(self, shard: int) -> ProcessPoolExecutor:
        # Lazy: shards that never receive work never fork a process.
        with self._lock:
            executor = self._executors[shard]
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=1)
                self._executors[shard] = executor
            return executor

    # -- introspection -------------------------------------------------------
    def stats(self) -> list[ShardStats]:
        """A snapshot of per-shard counters."""
        with self._lock:
            return [ShardStats(**vars(stats)) for stats in self._stats]

    def total_submitted(self) -> int:
        """Jobs ever admitted across all shards (compiles actually run)."""
        with self._lock:
            return sum(stats.submitted for stats in self._stats)

    def total_shed(self) -> int:
        """Jobs refused by admission control across all shards."""
        with self._lock:
            return sum(stats.shed for stats in self._stats)

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self, *, wait: bool = True) -> None:
        """Tear down every shard process (idempotent)."""
        with self._lock:
            executors = [ex for ex in self._executors if ex is not None]
            self._executors = [None] * self.shards
        for executor in executors:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "ShardedCompilePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
