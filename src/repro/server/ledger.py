"""The privacy-budget ledger: cross-query knowledge accounting per user.

A single downgrade is easy to police; *composition* is where
declassification leaks.  A user who asks ``x <= 200``, then ``y <= 200``,
then ``x <= 100`` passes a per-query policy every time while the
intersection of the answers corners the secret.  Sessions already track
knowledge, but sessions are ephemeral — close one, open another, and the
implicit budget resets.  The ledger makes the cumulative bound explicit
serving-layer state, keyed by a durable user identity.

Per user and secret type the ledger folds every *answered* query into two
lattice bounds, exactly the pair the paper synthesizes:

* the **sound** bound — intersections of under-approximated ind. sets, a
  subset of the true attacker knowledge.  The policy floor is enforced
  here: a monotone floor accepted on a subset holds for the true
  knowledge (the same soundness argument as section 3);
* the **complete** bound — intersections of over-approximated ind. sets,
  a superset of the true knowledge, tracked for reporting when queries
  were compiled with the ``over`` mode.

Two invariants, property-tested in ``tests/server/test_ledger.py``:

1. a refused charge never changes any bound (refusal is observable, so a
   refusal that leaked would be a side channel);
2. after any accepted sequence the sound bound still satisfies the floor
   — :meth:`~PrivacyBudgetLedger.commit` re-checks and raises *before*
   mutating, so not even a caller that skips
   :meth:`~PrivacyBudgetLedger.preauthorize` can cross it.

Admission follows the paper's section 3 discipline via
:func:`~repro.monad.anosy.pair_verdict`: *both* potential posteriors must
clear the floor before the query runs, keeping the accept/refuse decision
independent of the secret.  :meth:`~PrivacyBudgetLedger.evaluate` runs the
whole Figure 2 ``downgrade`` against the ledger bound by delegating to
:func:`~repro.monad.anosy.evaluate_downgrade` with the floor as policy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.qinfo import QInfo, intersect_knowledge
from repro.domains.base import AbstractDomain
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import (
    DowngradeDecision,
    evaluate_downgrade,
    pair_verdict,
    top_knowledge_for,
)
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import Unprotectable

__all__ = [
    "LedgerInvariantError",
    "LedgerDecision",
    "ChargeRecord",
    "BudgetAccount",
    "PrivacyBudgetLedger",
]


class LedgerInvariantError(RuntimeError):
    """A commit would have pushed a sound bound across the policy floor."""


@dataclass(frozen=True)
class LedgerDecision:
    """The outcome of a ledger admission check."""

    allowed: bool
    reason: str
    #: Size of the sound bound the decision was made against (the user's
    #: remaining budget *before* this query).
    remaining: int


@dataclass(frozen=True)
class ChargeRecord:
    """One committed charge against a user's budget."""

    query_name: str
    spec_name: str
    response: bool
    prior_size: int
    posterior_size: int


@dataclass
class BudgetAccount:
    """One user's cumulative knowledge bounds, keyed by secret type."""

    user_id: str
    #: Sound (under-approximated) bounds; absent key = still the full space.
    sound: dict[str, AbstractDomain] = field(default_factory=dict)
    #: Complete (over-approximated) bounds, tracked when available.
    complete: dict[str, AbstractDomain] = field(default_factory=dict)
    charges: list[ChargeRecord] = field(default_factory=list)
    refusals: int = 0


class PrivacyBudgetLedger:
    """Per-user cumulative knowledge bounds under a policy floor.

    ``floor`` is a monotone :class:`~repro.monad.policy.QuantitativePolicy`
    (e.g. ``size_above(10_000)``): the minimum uncertainty every user's
    sound bound must retain, across all queries they will ever ask.
    """

    def __init__(self, floor: QuantitativePolicy):
        self.floor = floor
        self._accounts: dict[str, BudgetAccount] = {}
        self._lock = threading.RLock()

    # -- accounts ------------------------------------------------------------
    def account(self, user_id: str) -> BudgetAccount:
        """The user's account, created on first touch."""
        with self._lock:
            account = self._accounts.get(user_id)
            if account is None:
                account = BudgetAccount(user_id=user_id)
                self._accounts[user_id] = account
            return account

    def users(self) -> list[str]:
        """Users with an account, sorted."""
        with self._lock:
            return sorted(self._accounts)

    def sound_bound(self, user_id: str, spec: SecretSpec) -> AbstractDomain | None:
        """The user's sound bound for a secret type (``None`` = full space)."""
        with self._lock:
            return self.account(user_id).sound.get(spec.name)

    def remaining(self, user_id: str, spec: SecretSpec) -> int:
        """Size of the user's sound bound (full space if untouched)."""
        with self._lock:
            bound = self.account(user_id).sound.get(spec.name)
            return spec.space_size() if bound is None else bound.size()

    # -- admission -----------------------------------------------------------
    def preauthorize(
        self, user_id: str, qinfo: QInfo, *, mode: str = "under"
    ) -> LedgerDecision:
        """Would answering this query keep the user above the floor?

        Checks the floor on *both* potential posteriors of the user's
        current sound bound (secret-independent, per section 3).  Never
        mutates a bound; a refusal is tallied on the account.
        """
        with self._lock:
            account = self.account(user_id)
            prior = self._sound_prior(account, qinfo)
            pair = qinfo.approx(prior, mode=mode)
            if pair_verdict(self.floor, pair):
                return LedgerDecision(
                    allowed=True, reason="ok", remaining=prior.size()
                )
            account.refusals += 1
            return LedgerDecision(
                allowed=False,
                reason=(
                    f"budget exhausted: {self.floor.name} would fail on a "
                    f"posterior of {qinfo.name!r}"
                ),
                remaining=prior.size(),
            )

    # -- charging ------------------------------------------------------------
    def commit(
        self, user_id: str, qinfo: QInfo, response: bool, *, mode: str = "under"
    ) -> AbstractDomain:
        """Fold one answered query into the user's bounds.

        Only call this for queries that were actually answered.  The floor
        is re-checked on the new sound bound *before* any mutation — a
        commit that would cross it raises :class:`LedgerInvariantError`
        and changes nothing, so invariant 2 holds even against callers
        that skipped :meth:`preauthorize`.
        """
        with self._lock:
            account = self.account(user_id)
            prior = self._sound_prior(account, qinfo)
            true_ind, false_ind = qinfo.indset_pair(mode=mode)
            posterior = intersect_knowledge(
                prior, true_ind if response else false_ind
            )
            if not self.floor(posterior):
                raise LedgerInvariantError(
                    f"committing {qinfo.name!r} for {user_id!r} would cross "
                    f"the floor {self.floor.name}"
                )
            spec_name = qinfo.secret.name
            account.sound[spec_name] = posterior
            if qinfo.over_indset is not None:
                over_prior = account.complete.get(spec_name)
                if over_prior is None:
                    over_prior = top_knowledge_for(qinfo)
                over_true, over_false = qinfo.indset_pair(mode="over")
                account.complete[spec_name] = intersect_knowledge(
                    over_prior, over_true if response else over_false
                )
            account.charges.append(
                ChargeRecord(
                    query_name=qinfo.name,
                    spec_name=spec_name,
                    response=response,
                    prior_size=prior.size(),
                    posterior_size=posterior.size(),
                )
            )
            return posterior

    def evaluate(
        self,
        user_id: str,
        qinfo: QInfo,
        protected: Unprotectable,
        *,
        mode: str = "under",
        check_both: bool = True,
    ) -> DowngradeDecision:
        """Figure 2's ``downgrade`` run directly against the ledger bound.

        Reuses :func:`~repro.monad.anosy.evaluate_downgrade` with the
        floor as the policy and the user's sound bound as the prior, then
        folds the posterior on authorization.  This is the standalone
        entry point; the gateway uses the split
        :meth:`preauthorize`/:meth:`commit` form because the query itself
        runs inside :class:`~repro.service.session.SessionManager`.
        """
        with self._lock:
            account = self.account(user_id)
            prior = self._sound_prior(account, qinfo)
            decision, posterior = evaluate_downgrade(
                qinfo,
                self.floor,
                protected,
                prior,
                mode=mode,
                check_both=check_both,
            )
            if not decision.authorized:
                account.refusals += 1
                return decision
            assert posterior is not None and decision.response is not None
            self.commit(user_id, qinfo, decision.response, mode=mode)
            return decision

    # -- internals -----------------------------------------------------------
    def _sound_prior(self, account: BudgetAccount, qinfo: QInfo) -> AbstractDomain:
        bound = account.sound.get(qinfo.secret.name)
        return top_knowledge_for(qinfo) if bound is None else bound
