"""Tests for region formulas and SMT-LIB emission."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast import BoolLit, var
from repro.lang.eval import eval_bool
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box
from repro.solver.regions import (
    any_box_formula,
    box_formula,
    outside_boxes_formula,
)
from repro.solver.smtlib import forall_script, synthesis_script, to_smt
from tests.strategies import boxes_within

SPACE = Box.make((-8, 12), (0, 15))
NAMES = ("x", "y")


class TestRegionFormulas:
    @given(boxes_within(SPACE))
    @settings(max_examples=80, deadline=None)
    def test_box_formula_matches_membership(self, box):
        formula = box_formula(box, NAMES)
        for point in SPACE.iter_points():
            env = dict(zip(NAMES, point))
            assert eval_bool(formula, env) == box.contains(point)

    @given(st.lists(boxes_within(SPACE), max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_any_box_formula(self, boxes):
        formula = any_box_formula(boxes, NAMES)
        for point in list(SPACE.iter_points())[::7]:
            env = dict(zip(NAMES, point))
            expected = any(box.contains(point) for box in boxes)
            assert eval_bool(formula, env) == expected

    @given(st.lists(boxes_within(SPACE), max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_outside_boxes_formula(self, boxes):
        formula = outside_boxes_formula(boxes, NAMES)
        for point in list(SPACE.iter_points())[::7]:
            env = dict(zip(NAMES, point))
            expected = not any(box.contains(point) for box in boxes)
            assert eval_bool(formula, env) == expected

    def test_empty_lists(self):
        assert any_box_formula([], NAMES) == BoolLit(False)
        assert outside_boxes_formula([], NAMES) == BoolLit(True)

    def test_arity_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            box_formula(Box.make((0, 1)), NAMES)


class TestSmtlib:
    def test_term_rendering(self):
        expr = abs(var("x") - 200) + abs(var("y") - 200) <= 100
        text = to_smt(expr)
        assert text.startswith("(<= (+ (ite")
        assert text.count("(") == text.count(")")

    def test_negative_literal(self):
        assert to_smt(var("x") <= -5) == "(<= x (- 5))"

    def test_in_set(self):
        text = to_smt(var("c").in_set({1, 2}))
        assert text == "(or (= c 1) (= c 2))"

    def test_ne_renders_as_not_eq(self):
        assert to_smt(var("x").ne(3)) == "(not (= x 3))"

    def test_synthesis_script_structure(self):
        spec = SecretSpec.declare("S", x=(0, 9), y=(0, 9))
        script = synthesis_script(parse_bool("x + y <= 5"), spec, mode="under")
        assert "(declare-const l_x Int)" in script
        assert "(maximize (- u_x l_x))" in script
        assert "(assert (forall ((x Int) (y Int))" in script
        assert script.count("(") == script.count(")")

    def test_synthesis_script_over_minimizes(self):
        spec = SecretSpec.declare("S", x=(0, 9))
        script = synthesis_script(parse_bool("x <= 5"), spec, mode="over")
        assert "(minimize (- u_x l_x))" in script

    def test_synthesis_script_rejects_bad_mode(self):
        import pytest

        spec = SecretSpec.declare("S", x=(0, 9))
        with pytest.raises(ValueError):
            synthesis_script(parse_bool("x <= 5"), spec, mode="sideways")

    def test_forall_script(self):
        spec = SecretSpec.declare("S", x=(0, 9))
        script = forall_script(parse_bool("x <= 5"), spec, Box.make((0, 5)))
        assert "(assert (not (<= x 5)))" in script
        assert "(check-sat)" in script
        assert script.count("(") == script.count(")")
