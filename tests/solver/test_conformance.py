"""Differential conformance suite: engines vs brute-force ground truth.

Every optimizer rework must ship inside a strong conformance net: the
four decision procedures are run under the compiled-kernel engine, the
tree-walking interpreter engine, and (for the vectorized paths) the
fused probe-front decider, and all of them must agree with brute-force
enumeration of the box.  Spaces are kept small enough that enumeration
is exact ground truth, in the Quickcheck-differential-testing tradition
of solver replacements.
"""

from hypothesis import given, settings

from repro.lang.eval import eval_bool
from repro.solver.boxes import Box
from repro.solver.decide import (
    InterpEngine,
    KernelEngine,
    count_models,
    decide_exists,
    decide_forall,
    decide_forall_front,
    find_model,
    find_true_box,
)
from tests.strategies import solver_cases

NAMES = ("x", "y")
OUTER = Box.make((-8, 12), (0, 15))

#: Engine factory per configuration the suite must keep in agreement.
CONFIGS = {
    "kernel": lambda: KernelEngine(NAMES),
    "interp": lambda: InterpEngine(NAMES),
}

#: Vector thresholds exercising the scalar, grid, and pure-Python paths.
THRESHOLDS = (0, 16, 100_000)


def _truth_set(formula, box):
    return {
        point
        for point in box.iter_points()
        if eval_bool(formula, dict(zip(NAMES, point)))
    }


class TestDecideForallConformance:
    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_enumeration(self, case):
        formula, box = case
        expected = len(_truth_set(formula, box)) == box.volume()
        for name, make in CONFIGS.items():
            for threshold in THRESHOLDS:
                verdict = decide_forall(
                    formula, box, NAMES,
                    engine=make(), vector_threshold=threshold,
                )
                assert verdict == expected, (name, threshold)

    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=80, deadline=None)
    def test_fused_front_matches_scalar(self, case):
        """A multi-box front must return one scalar verdict per box."""
        formula, box = case
        low, high = box.split(box.widest_dim()) if not box.is_point() else (box, box)
        probes = [box, low, high]
        for name, make in CONFIGS.items():
            for threshold in THRESHOLDS:
                engine = make()
                fused = decide_forall_front(
                    formula, probes, NAMES,
                    engine=engine, vector_threshold=threshold,
                )
                scalar = [
                    decide_forall(
                        formula, probe, NAMES,
                        engine=engine, vector_threshold=threshold,
                    )
                    for probe in probes
                ]
                assert fused == scalar, (name, threshold)


class TestDecideExistsConformance:
    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_enumeration(self, case):
        formula, box = case
        expected = bool(_truth_set(formula, box))
        for name, make in CONFIGS.items():
            for threshold in THRESHOLDS:
                verdict = decide_exists(
                    formula, box, NAMES,
                    engine=make(), vector_threshold=threshold,
                )
                assert verdict == expected, (name, threshold)

    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=80, deadline=None)
    def test_find_model_returns_satisfying_point(self, case):
        formula, box = case
        truth = _truth_set(formula, box)
        for name, make in CONFIGS.items():
            witness = find_model(formula, box, NAMES, engine=make())
            if truth:
                assert witness in truth, name
            else:
                assert witness is None, name


class TestCountModelsConformance:
    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_enumeration(self, case):
        formula, box = case
        expected = len(_truth_set(formula, box))
        for name, make in CONFIGS.items():
            for threshold in THRESHOLDS:
                count = count_models(
                    formula, box, NAMES,
                    engine=make(), vector_threshold=threshold,
                )
                assert count == expected, (name, threshold)

    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=60, deadline=None)
    def test_default_engine_selection_is_invisible(self, case):
        """The small-formula fast path may pick an engine, not an answer."""
        formula, box = case
        expected = len(_truth_set(formula, box))
        assert count_models(formula, box, NAMES) == expected


class TestFindTrueBoxConformance:
    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=100, deadline=None)
    def test_result_is_all_true_and_exhaustion_is_sound(self, case):
        formula, box = case
        truth = _truth_set(formula, box)
        for name, make in CONFIGS.items():
            result = find_true_box(formula, box, NAMES, engine=make())
            if result.box is None:
                # With the default budget on these tiny spaces the search
                # always completes, so emptiness claims must be true.
                assert result.exhausted, name
                assert not truth, name
            else:
                assert box.contains_box(result.box), name
                assert set(result.box.iter_points()) <= truth, name

    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=60, deadline=None)
    def test_engines_find_identical_boxes(self, case):
        formula, box = case
        kernel = find_true_box(formula, box, NAMES, engine=KernelEngine(NAMES))
        interp = find_true_box(formula, box, NAMES, engine=InterpEngine(NAMES))
        assert kernel.box == interp.box
        assert kernel.exhausted == interp.exhausted

    @given(solver_cases(NAMES, OUTER))
    @settings(max_examples=40, deadline=None)
    def test_seeded_search_stays_inside_seeds(self, case):
        formula, box = case
        if box.is_point():
            return
        seeds = list(box.split(box.widest_dim()))
        truth = _truth_set(formula, box)
        result = find_true_box(
            formula, box, NAMES, engine=KernelEngine(NAMES), seed_boxes=seeds
        )
        if result.box is None:
            assert result.exhausted
            assert not truth
        else:
            assert any(seed.contains_box(result.box) for seed in seeds)
            assert set(result.box.iter_points()) <= truth
