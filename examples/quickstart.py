#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Declares the ``UserLoc`` secret, compiles the ``nearby`` query (section 2),
prints the synthesized + verified knowledge approximations, renders the
Figure 1-style picture of the posteriors, and replays the section 3
bounded-downgrade trace (two queries authorized, the third rejected).

Run:  python examples/quickstart.py
"""

from repro import (
    AnosyT,
    CompileOptions,
    PolicyViolation,
    ProtectedSecret,
    QueryRegistry,
    SecretSpec,
    SecureRuntime,
    size_above,
    var,
)


def main() -> None:
    # -- 1. Declare the secret type and the queries -----------------------------
    user_loc = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))


    def nearby(origin):
        """Manhattan proximity, exactly the paper's query."""
        x, y = var("x"), var("y")
        ox, oy = origin
        return abs(x - ox) + abs(y - oy) <= 100


    # -- 2. Compile: synthesize + machine-check knowledge approximations --------
    registry = QueryRegistry()
    for origin in [(200, 200), (300, 200), (400, 200)]:
        name = f"nearby_{origin[0]}_{origin[1]}"
        compiled = registry.compile_and_register(
            name, nearby(origin), user_loc, CompileOptions(domain="powerset", k=3)
        )
        under_true, under_false = compiled.qinfo.under_indset
        report = compiled.reports["under"]
        print(
            f"{name}: under ind. sets {under_true.size()} / {under_false.size()} "
            f"secrets, verified={report.verified} "
            f"(synth {report.synth_time * 1000:.0f} ms, "
            f"verify {report.verify_time * 1000:.0f} ms)"
        )

    # -- 3. A Figure 1-style picture of the three True-response regions ---------
    print("\nTrue-response ind. sets (coarse 40x40 rendering of the 400x400 grid):")
    CELL = 10
    rows = []
    for gy in range(399 // CELL, -1, -1):
        row = []
        for gx in range(0, 400 // CELL):
            point = (gx * CELL + CELL // 2, gy * CELL + CELL // 2)
            glyphs = [
                glyph
                for glyph, origin in zip("ABC", [(200, 200), (300, 200), (400, 200)])
                if registry.lookup(f"nearby_{origin[0]}_{origin[1]}")
                .qinfo.under_indset[0]
                .contains(point)
            ]
            row.append(glyphs[-1] if len(glyphs) == 1 else "#" if glyphs else ".")
        rows.append("".join(row))
    print("\n".join(rows))
    print("A/B/C: one query's region   #: overlap   .: none")

    # -- 4. Bounded downgrade under a quantitative policy ------------------------
    print("\nBounded downgrade (policy: knowledge must keep > 100 locations):")
    session = AnosyT(SecureRuntime(), size_above(100), registry)
    secret = ProtectedSecret.seal(user_loc, (300, 200))  # the user's location

    for origin in [(200, 200), (300, 200), (400, 200)]:
        name = f"nearby_{origin[0]}_{origin[1]}"
        try:
            answer = session.downgrade(secret, name)
            knowledge = session.knowledge_of(secret)
            print(f"  {name} -> {answer}   (attacker knowledge: {knowledge.size()} locations)")
        except PolicyViolation as violation:
            print(f"  {name} -> REFUSED: {violation}")

    print(f"\nauthorized downgrades: {session.authorized_count()} of 3")


if __name__ == "__main__":
    main()
