"""Benchmark E4 — Figure 6: sequential declassification survival curves.

Regenerates the paper's Figure 6 (``python -m repro.experiments.figure6``
prints the summary table and survival chart for the full configuration:
k in {1,3,5,7,10}, 20 instances, 50 queries).  The benchmark here runs a
compact configuration per k so the whole harness stays in CI-friendly
time, and stores the survival statistics in ``extra_info``.
"""

import pytest

from repro.experiments.figure6 import run_figure6


@pytest.mark.parametrize("k", [1, 3, 5])
def test_figure6_survival(benchmark, k):
    series = benchmark.pedantic(
        run_figure6,
        kwargs={"ks": (k,), "instances": 8, "num_queries": 20, "seed": 2022},
        rounds=1,
        iterations=1,
    )
    result = series[0]
    benchmark.extra_info["max_authorized"] = result.max_authorized()
    benchmark.extra_info["mean_authorized"] = round(result.mean_authorized(), 2)
    benchmark.extra_info["survival_curve"] = result.survival_curve()[:15]
    assert result.max_authorized() >= 1


def test_figure6_interval_vs_powerset(benchmark):
    """The paper's headline: powersets authorize more queries."""
    series = benchmark.pedantic(
        run_figure6,
        kwargs={"ks": (1, 5), "instances": 6, "num_queries": 16, "seed": 2022},
        rounds=1,
        iterations=1,
    )
    by_k = {s.k: s for s in series}
    benchmark.extra_info["interval_mean"] = round(by_k[1].mean_authorized(), 2)
    benchmark.extra_info["powerset_mean"] = round(by_k[5].mean_authorized(), 2)
    assert by_k[5].mean_authorized() >= by_k[1].mean_authorized()
