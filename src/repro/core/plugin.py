"""The compile step: ANOSY's "GHC plugin" analog.

The paper runs at Haskell compile time: for every declassification query it
(1) generates refinement-type specs, (2) builds a sketch, (3) fills the
holes by SMT synthesis, and (4) verifies the result with Liquid Haskell.
:func:`compile_query` performs the same four steps with this repository's
substrates and returns a :class:`CompiledQuery` carrying the verified
:class:`~repro.core.qinfo.QInfo` plus all synthesis/verification metadata
(the numbers Figure 5 reports).

:class:`QueryRegistry` is the compile-time query table: the run-time
``downgrade`` refers to queries *by name* (Figure 2 passes a string), and
refuses to declassify anything that was not compiled — the paper's
"Can't downgrade" error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.lang.ast import BoolExpr
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.lang.validate import ValidationReport, validate_query
from repro.refine.checker import CheckOutcome, verify_pair
from repro.refine.figure4 import over_indset_spec, under_indset_spec
from repro.core.itersynth import iter_synth_powerset
from repro.core.qinfo import DomainPair, QInfo
from repro.core.sketch import fill, make_indset_sketch
from repro.core.synth import SynthOptions, synth_interval
from repro.solver.boxes import Box
from repro.solver.decide import SolverStats, make_engine
from repro.solver.optimize import build_region_oracle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.cache import SynthesisCache

__all__ = [
    "CompileError",
    "CompileOptions",
    "ModeReport",
    "CompiledQuery",
    "compile_query",
    "QueryRegistry",
]


class CompileError(RuntimeError):
    """A compiled artifact is malformed or incomplete for the requested use.

    Raised (instead of ``assert``, which vanishes under ``python -O``)
    when a serving path receives a :class:`~repro.core.qinfo.QInfo` that
    cannot support it — e.g. one compiled with neither ind.-set mode.
    """


@dataclass(frozen=True)
class CompileOptions:
    """What to synthesize and how.

    ``domain`` selects intervals or powersets; ``k`` is the powerset size
    (ignored for intervals); ``modes`` picks which approximations to build;
    ``verify`` can disable the checking pass (only useful to measure the
    synthesis-only cost — verification is on by default, as in the paper).
    """

    domain: str = "interval"
    k: int = 3
    modes: tuple[str, ...] = ("under", "over")
    verify: bool = True
    synth: SynthOptions = SynthOptions()

    def __post_init__(self) -> None:
        if self.domain not in ("interval", "powerset"):
            raise ValueError(f"unknown domain {self.domain!r}")
        for mode in self.modes:
            if mode not in ("under", "over"):
                raise ValueError(f"unknown mode {mode!r}")


@dataclass(frozen=True)
class ModeReport:
    """Synthesis + verification metadata for one approximation mode."""

    mode: str
    synth_time: float
    verify_time: float
    timed_out: bool
    true_outcome: CheckOutcome | None
    false_outcome: CheckOutcome | None
    #: Aggregate solver counters of the synthesis runs for this mode
    #: (both polarities): search nodes, splits, grid-finished boxes.
    solver_nodes: int = 0
    solver_splits: int = 0
    vector_boxes: int = 0
    #: Probe-front counters of the fused optimizer (growth rounds
    #: batched, stacked grid evaluations, boxes resolved through them).
    fused_rounds: int = 0
    probe_fronts: int = 0
    front_boxes: int = 0

    @property
    def verified(self) -> bool:
        """Whether both sides carry complete proof certificates."""
        return (
            self.true_outcome is not None
            and self.false_outcome is not None
            and self.true_outcome.verified
            and self.false_outcome.verified
        )


@dataclass(frozen=True)
class CompiledQuery:
    """A verified query artifact plus compile-time metadata."""

    qinfo: QInfo
    validation: ValidationReport
    reports: dict[str, ModeReport]

    @property
    def name(self) -> str:
        """The query's registry name."""
        return self.qinfo.name


def _synthesize_pair(
    query: BoolExpr,
    secret: SecretSpec,
    mode: str,
    options: CompileOptions,
    engine,
    oracle=None,
) -> tuple[DomainPair, bool, SolverStats]:
    """Synthesize the (True-side, False-side) ind. sets for one mode.

    Both polarities (and, for powersets, all iterations) run on the one
    shared ``engine`` — the query is lowered exactly once per compile —
    and on the one shared region ``oracle``, so the whole compile pays a
    single stacked grid evaluation for all its probes.
    """
    stats = SolverStats()
    if options.domain == "interval":
        true_result = synth_interval(
            query, secret, mode=mode, polarity=True, options=options.synth,
            engine=engine, oracle=oracle,
        )
        false_result = synth_interval(
            query, secret, mode=mode, polarity=False, options=options.synth,
            engine=engine, oracle=oracle,
        )
        pair: DomainPair = (true_result.domain, false_result.domain)
        timed_out = true_result.timed_out or false_result.timed_out
    else:
        true_result = iter_synth_powerset(
            query, secret, k=options.k, mode=mode, polarity=True,
            options=options.synth, engine=engine, oracle=oracle,
        )
        false_result = iter_synth_powerset(
            query, secret, k=options.k, mode=mode, polarity=False,
            options=options.synth, engine=engine, oracle=oracle,
        )
        pair = (true_result.domain, false_result.domain)
        timed_out = true_result.timed_out or false_result.timed_out
    for result in (true_result, false_result):
        if result.stats is not None:
            stats.merge(result.stats)
    return pair, timed_out, stats


def compile_query(
    name: str,
    query: BoolExpr | str,
    secret: SecretSpec,
    options: CompileOptions = CompileOptions(),
    *,
    cache: "SynthesisCache | None" = None,
) -> CompiledQuery:
    """Steps I-IV of section 2.3 for a single query.

    With a ``cache``, the expensive steps (sketching, synthesis,
    verification) are skipped whenever a semantically identical problem —
    same canonical query, secret bounds, and options — was compiled
    before; the cached artifact is re-labeled with the requested ``name``
    and the caller's exact query AST.  Validation always runs on the
    requested query, cached or not.
    """
    if isinstance(query, str):
        query = parse_bool(query)
    validation = validate_query(query, secret)

    key: str | None = None
    if cache is not None:
        key = cache.key_for(query, secret, options)
        hit = cache.get(key)
        if hit is not None:
            # Copy the reports dict: the cached artifact must stay
            # isolated from whatever the caller does to its copy.
            return CompiledQuery(
                qinfo=replace(hit.qinfo, name=name, query=query),
                validation=validation,
                reports=dict(hit.reports),
            )

    indsets: dict[str, DomainPair] = {}
    reports: dict[str, ModeReport] = {}
    # One solver engine for the whole compile: every mode, polarity, and
    # powerset iteration reuses the same compiled query kernels.  One
    # region oracle likewise: a single stacked grid evaluation of the
    # query answers every optimizer probe of the compile (when the space
    # is small enough for a mask table; ``None`` otherwise).
    engine = make_engine(
        secret.field_names,
        options.synth.use_kernels,
        legacy_splits=options.synth.legacy_splits,
    )
    oracle = build_region_oracle(
        query,
        Box(secret.bounds()),
        secret.field_names,
        options.synth.optimizer_options(),
        engine=engine,
    )
    for mode in options.modes:
        # Step I + II: refinement types and the sketch with typed holes.
        sketch = make_indset_sketch(query, secret, mode, options.domain)
        # Step III: fill the holes by (SMT-style) synthesis.
        start = time.perf_counter()
        pair, timed_out, solver_stats = _synthesize_pair(
            query, secret, mode, options, engine, oracle
        )
        synth_time = time.perf_counter() - start
        pair = fill(sketch, *pair)
        # Step IV: machine-check against the Figure 4 specification.
        true_outcome = false_outcome = None
        verify_time = 0.0
        if options.verify:
            specs = (
                under_indset_spec(query)
                if mode == "under"
                else over_indset_spec(query)
            )
            start = time.perf_counter()
            true_outcome, false_outcome = verify_pair(pair, specs, engine=engine)
            verify_time = time.perf_counter() - start
        indsets[mode] = pair
        reports[mode] = ModeReport(
            mode=mode,
            synth_time=synth_time,
            verify_time=verify_time,
            timed_out=timed_out,
            true_outcome=true_outcome,
            false_outcome=false_outcome,
            solver_nodes=solver_stats.nodes,
            solver_splits=solver_stats.splits,
            vector_boxes=solver_stats.vector_boxes,
            fused_rounds=solver_stats.fused_rounds,
            probe_fronts=solver_stats.probe_fronts,
            front_boxes=solver_stats.front_boxes,
        )

    qinfo = QInfo(
        name=name,
        query=query,
        secret=secret,
        under_indset=indsets.get("under"),
        over_indset=indsets.get("over"),
    )
    compiled = CompiledQuery(qinfo=qinfo, validation=validation, reports=reports)
    if cache is not None and key is not None:
        cache.put(
            key,
            CompiledQuery(qinfo=qinfo, validation=validation, reports=dict(reports)),
        )
    return compiled


@dataclass
class QueryRegistry:
    """The compile-time table of declassifiable queries.

    ``downgrade`` may only execute queries registered here — everything
    else fails with the paper's "Can't downgrade" error, because without a
    compiled approximation there is no way to bound the leaked knowledge
    (on-the-fly synthesis "albeit possible would be very expensive",
    section 3, footnote 1).

    An attached ``cache`` (a :class:`~repro.service.cache.SynthesisCache`)
    makes :meth:`compile_and_register` reuse previously synthesized
    artifacts; the registry itself stays a plain name table.
    """

    compiled: dict[str, CompiledQuery] = field(default_factory=dict)
    cache: "SynthesisCache | None" = None

    def register(self, compiled: CompiledQuery) -> None:
        """Add a compiled query; names must be unique."""
        if compiled.name in self.compiled:
            raise ValueError(f"query {compiled.name!r} already registered")
        self.compiled[compiled.name] = compiled

    def compile_and_register(
        self,
        name: str,
        query: BoolExpr | str,
        secret: SecretSpec,
        options: CompileOptions = CompileOptions(),
    ) -> CompiledQuery:
        """Compile a query (through the attached cache, if any) and
        register it in one step."""
        compiled = compile_query(name, query, secret, options, cache=self.cache)
        self.register(compiled)
        return compiled

    def lookup(self, name: str) -> CompiledQuery | None:
        """Find a compiled query by name (``None`` when absent)."""
        return self.compiled.get(name)

    def names(self) -> list[str]:
        """Registered query names, sorted."""
        return sorted(self.compiled)
