"""Soundness property tests for abstract evaluation and specialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.eval import eval_bool, eval_int
from repro.lang.ternary import FALSE, TRUE
from repro.solver.abseval import eval_bool_abs, eval_int_abs, specialize
from repro.solver.boxes import Box
from tests.strategies import bool_exprs, boxes_within, int_exprs, points_within

SPACE = Box.make((-8, 12), (0, 15))
NAMES = ("x", "y")


def _env(box):
    return dict(zip(NAMES, box.bounds))


class TestIntSoundness:
    @given(int_exprs(NAMES), boxes_within(SPACE), st.data())
    @settings(max_examples=200, deadline=None)
    def test_concrete_value_within_abstract_range(self, expr, box, data):
        point = data.draw(points_within(box))
        lo, hi = eval_int_abs(expr, _env(box))
        value = eval_int(expr, dict(zip(NAMES, point)))
        assert lo <= value <= hi

    @given(int_exprs(NAMES), st.data())
    @settings(max_examples=150, deadline=None)
    def test_singleton_boxes_are_exact(self, expr, data):
        point = data.draw(points_within(SPACE))
        box = Box(tuple((v, v) for v in point))
        lo, hi = eval_int_abs(expr, _env(box))
        value = eval_int(expr, dict(zip(NAMES, point)))
        assert lo == hi == value


class TestBoolSoundness:
    @given(bool_exprs(NAMES), boxes_within(SPACE), st.data())
    @settings(max_examples=200, deadline=None)
    def test_decided_implies_concrete(self, formula, box, data):
        point = data.draw(points_within(box))
        truth = eval_bool_abs(formula, _env(box))
        concrete = eval_bool(formula, dict(zip(NAMES, point)))
        if truth is TRUE:
            assert concrete is True
        elif truth is FALSE:
            assert concrete is False

    @given(bool_exprs(NAMES), st.data())
    @settings(max_examples=150, deadline=None)
    def test_singleton_boxes_decide(self, formula, data):
        point = data.draw(points_within(SPACE))
        box = Box(tuple((v, v) for v in point))
        truth = eval_bool_abs(formula, _env(box))
        assert truth.decided
        assert truth.as_bool() == eval_bool(formula, dict(zip(NAMES, point)))


class TestSpecialize:
    @given(bool_exprs(NAMES), boxes_within(SPACE), st.data())
    @settings(max_examples=200, deadline=None)
    def test_specialized_formula_equivalent_on_box(self, formula, box, data):
        point = data.draw(points_within(box))
        shrunk, truth = specialize(formula, _env(box))
        env = dict(zip(NAMES, point))
        assert eval_bool(shrunk, env) == eval_bool(formula, env)
        if truth.decided:
            assert truth.as_bool() == eval_bool(formula, env)

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=200, deadline=None)
    def test_specialize_agrees_with_abstract_eval(self, formula, box):
        _, truth = specialize(formula, _env(box))
        assert truth == eval_bool_abs(formula, _env(box))

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=200, deadline=None)
    def test_specialized_formula_never_grows(self, formula, box):
        shrunk, _ = specialize(formula, _env(box))
        assert shrunk.node_count() <= formula.node_count()
