#!/usr/bin/env python3
"""Budget exhaustion at the gateway: composition is the real leak.

Every query below passes the per-query session policy with room to spare.
What corners a secret is the *composition* of answers — and that is what
the serving runtime's privacy-budget ledger accounts for.  One user keeps
asking location queries; each answered query folds into their cumulative
knowledge bound (via the domain lattice); when the next answer would push
the bound below the policy floor, the ledger refuses — before the query
ever runs on the secret, and without touching the bound.

Reconnecting does not help: the budget is keyed by user, not session, so
the classic laundering move — close the session, open a fresh one, ask
again — hits the same refusal.

Run:  python examples/budget_gateway.py
"""

import asyncio

from repro import DeclassificationServer, SecretSpec, ServerConfig, size_above
from repro.core.plugin import CompileOptions
from repro.service.api import CompileRequest

SPEC = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))

#: Each one individually is harmless under the session policy (> 100).
QUERIES = [
    ("west_half", "x <= 199"),
    ("south_half", "y <= 199"),
    ("west_quarter", "x <= 99"),
    ("south_quarter", "y <= 99"),
    ("west_eighth", "x <= 49"),
]


async def run() -> None:
    server = DeclassificationServer(
        size_above(100),  # the per-query session policy
        budget_floor=size_above(15_000),  # the cumulative, per-user floor
        options=CompileOptions(domain="interval", modes=("under", "over")),
        config=ServerConfig(inline_compiles=True),
    )

    print(f"{'query':<14} {'cache':>6}")
    for name, text in QUERIES:
        receipt = await server.register_query(CompileRequest(name, text, SPEC))
        print(f"{name:<14} {'HIT' if receipt.cache_hit else 'MISS':>6}")

    # Alice's secret location; all the threshold queries answer True.
    server.open_session("conn-1", (SPEC, (43, 87)), user_id="alice")

    print(f"\nbudget floor: knowledge must keep > 15,000 of "
          f"{SPEC.space_size():,} locations")
    print(f"{'query':<14} {'authorized':>10} {'response':>9} {'budget left':>12}")
    refused_at = None
    for name, _ in QUERIES:
        result = await server.downgrade("conn-1", name)
        remaining = server.ledger.remaining("alice", SPEC)
        print(
            f"{name:<14} {str(result.authorized):>10} "
            f"{str(result.response):>9} {remaining:>12,}"
        )
        if not result.authorized and refused_at is None:
            refused_at = name
            assert "budget exhausted" in result.reason

    assert refused_at == "south_quarter", refused_at
    assert server.ledger.remaining("alice", SPEC) == 20_000

    # Reconnecting cannot launder the budget: new session, same user.
    server.close_session("conn-1")
    server.open_session("conn-2", (SPEC, (43, 87)), user_id="alice")
    retry = await server.downgrade("conn-2", "south_quarter")
    print(f"\nalice reconnects and retries: authorized={retry.authorized} "
          f"({retry.reason})")
    assert not retry.authorized

    # A different user starts with a full budget.
    server.open_session("conn-3", (SPEC, (250, 300)), user_id="bob")
    fresh = await server.downgrade("conn-3", "south_quarter")
    print(f"bob asks the same query:      authorized={fresh.authorized} "
          f"(budget left {server.ledger.remaining('bob', SPEC):,})")
    assert fresh.authorized

    refusals = server.ledger.account("alice").refusals
    print(f"\nledger: alice charged {len(server.ledger.account('alice').charges)} "
          f"queries, refused {refusals}; refusals never touched her bound")
    server.shutdown()


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()
