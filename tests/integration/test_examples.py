"""Smoke tests: every example script runs end to end under pytest.

Each script in ``examples/`` exposes an importable ``main()`` so the
seven end-to-end scenarios — the paper's quickstart, the ship rescue
with a mid-session policy switch, the advertising deployment, the
probabilistic birthday service, the multi-tenant batched service, the
budget-ledger gateway, and the journaled HTTP edge with replay — stay
executable as the solver, service, and server layers evolve.  The
scripts print their narrative; the assertions here only require clean
completion (their internal ``assert`` statements still run and count).
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "ship_rescue",
    "location_advertising",
    "birthday_service",
    "multi_user_service",
    "budget_gateway",
    "http_edge",
]


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_to_completion(name, capsys):
    module = importlib.import_module(name)
    try:
        module.main()
    finally:
        # Keep the modules importable fresh in later runs of this file.
        sys.modules.pop(name, None)
    out = capsys.readouterr().out
    assert out.strip(), f"{name}.main() printed nothing"


def test_every_example_script_is_covered():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLES)
