"""Quantitative declassification policies.

A policy is a predicate on (approximated) attacker knowledge.  The paper's
running example::

    qpolicy dom = size dom > 100

Policy enforcement with under-approximated knowledge is only sound for
policies that are *monotone* in the knowledge: if a policy accepts a
domain it must accept every superset (section 3: "the policy should be an
increasing function in the size of the input").  The combinators here all
produce monotone policies, and :func:`check_monotone_on` lets tests verify
the property on concrete chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.domains.base import AbstractDomain

__all__ = [
    "QuantitativePolicy",
    "size_above",
    "size_at_least",
    "all_of",
    "any_of",
    "check_monotone_on",
    "verdict_on_sizes",
]


@dataclass(frozen=True)
class QuantitativePolicy:
    """A named predicate over knowledge domains.

    ``encoding`` is an optional structural description of the predicate
    (set by the combinators in this module) that lets a policy cross a
    process boundary — the sharded serving tier ships policies to worker
    processes as JSON via :func:`repro.service.serialize.policy_to_json`.
    Hand-built policies with opaque lambdas leave it ``None`` and remain
    fully usable in-process.
    """

    name: str
    predicate: Callable[[AbstractDomain], bool]
    encoding: dict[str, Any] | None = field(default=None, compare=False)

    def __call__(self, knowledge: AbstractDomain) -> bool:
        return self.predicate(knowledge)

    def __repr__(self) -> str:
        return f"QuantitativePolicy({self.name})"


def size_above(threshold: int) -> QuantitativePolicy:
    """The paper's ``qpolicy``: knowledge must keep > ``threshold`` secrets."""
    return QuantitativePolicy(
        name=f"size > {threshold}",
        predicate=lambda knowledge: knowledge.size() > threshold,
        encoding={"kind": "size_above", "threshold": threshold},
    )


def size_at_least(threshold: int) -> QuantitativePolicy:
    """Knowledge must keep at least ``threshold`` possible secrets."""
    return QuantitativePolicy(
        name=f"size >= {threshold}",
        predicate=lambda knowledge: knowledge.size() >= threshold,
        encoding={"kind": "size_at_least", "threshold": threshold},
    )


def _combined_encoding(
    kind: str, policies: Sequence[QuantitativePolicy]
) -> dict[str, Any] | None:
    parts = [p.encoding for p in policies]
    if any(part is None for part in parts):
        return None
    return {"kind": kind, "parts": parts}


def all_of(*policies: QuantitativePolicy) -> QuantitativePolicy:
    """Conjunction of policies (monotone if each conjunct is)."""
    return QuantitativePolicy(
        name=" and ".join(p.name for p in policies) or "true",
        predicate=lambda knowledge: all(p(knowledge) for p in policies),
        encoding=_combined_encoding("all_of", policies),
    )


def any_of(*policies: QuantitativePolicy) -> QuantitativePolicy:
    """Disjunction of policies (monotone if each disjunct is)."""
    return QuantitativePolicy(
        name=" or ".join(p.name for p in policies) or "false",
        predicate=lambda knowledge: any(p(knowledge) for p in policies),
        encoding=_combined_encoding("any_of", policies),
    )


def verdict_on_sizes(policy: QuantitativePolicy, sizes: Any) -> Any | None:
    """Evaluate an encodable policy directly on knowledge *sizes*.

    ``sizes`` may be a single int or a NumPy int array; the return value
    has the same shape (a bool, or a bool array — the whole fleet's
    policy-floor comparison in one vectorized pass).  Returns ``None``
    when the policy carries no structural ``encoding`` (opaque
    hand-built predicates), in which case callers must fall back to
    calling the predicate per domain.  Relies on the same contract as
    :func:`repro.service.serialize.policy_to_json`: an encoding, when
    present, describes the predicate exactly.
    """
    return _encoded_verdict(policy.encoding, sizes)


def _encoded_verdict(encoding: dict[str, Any] | None, sizes: Any) -> Any | None:
    if encoding is None:
        return None
    kind = encoding.get("kind")
    if kind == "size_above":
        return sizes > encoding["threshold"]
    if kind == "size_at_least":
        return sizes >= encoding["threshold"]
    if kind in ("all_of", "any_of"):
        parts = [_encoded_verdict(part, sizes) for part in encoding["parts"]]
        if any(part is None for part in parts):
            return None
        if not parts:
            # Empty conjunction is vacuously true, empty disjunction false;
            # ``sizes == sizes`` / ``!=`` keeps the result shaped like sizes.
            return sizes == sizes if kind == "all_of" else sizes != sizes
        result = parts[0]
        for part in parts[1:]:
            result = (result & part) if kind == "all_of" else (result | part)
        return result
    return None


def check_monotone_on(
    policy: QuantitativePolicy, chain: Sequence[AbstractDomain]
) -> bool:
    """Check monotonicity of ``policy`` along a ⊆-chain of domains.

    ``chain`` must be ordered smallest-first; the policy is monotone on it
    when acceptance never flips from True to False as knowledge grows.
    """
    accepted = [policy(domain) for domain in chain]
    for smaller, larger in zip(accepted, accepted[1:]):
        if smaller and not larger:
            return False
    return True
