"""Canonical forms, stable hashing, and the AST JSON codec."""

import pytest
from hypothesis import given

from repro.lang.ast import And, Cmp, CmpOp, Iff, Lit, var
from repro.lang.canonical import (
    canonicalize,
    expr_from_json,
    expr_to_json,
    spec_fingerprint,
    spec_from_json,
    spec_to_json,
    stable_hash,
)
from repro.lang.eval import eval_bool
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec

from tests.strategies import bool_exprs

NAMES = ("x", "y")

X, Y = var("x"), var("y")


class TestCanonicalize:
    def test_commutative_conjunction_reordered(self):
        a, b = X <= 5, Y >= 3
        assert canonicalize(a & b) == canonicalize(b & a)

    def test_commutative_disjunction_reordered(self):
        a, b = X.eq(1), Y.eq(2)
        assert canonicalize(a | b) == canonicalize(b | a)

    def test_duplicate_conjuncts_dropped(self):
        a, b = X <= 5, Y >= 3
        assert canonicalize(And((a, b, a))) == canonicalize(And((b, a)))

    def test_commutative_addition_reordered(self):
        assert canonicalize(abs(X - 2) + abs(Y - 3) <= 5) == canonicalize(
            abs(Y - 3) + abs(X - 2) <= 5
        )

    def test_mirrored_comparisons_flip(self):
        ge = canonicalize(X >= 5)
        le = canonicalize(Lit(5) <= X)
        assert ge == le
        assert ge.op == CmpOp.LE

    def test_equality_operands_sorted(self):
        assert canonicalize(Cmp(CmpOp.EQ, X, Y)) == canonicalize(Cmp(CmpOp.EQ, Y, X))

    def test_iff_operands_sorted(self):
        a, b = X <= 5, Y >= 3
        assert canonicalize(Iff(a, b)) == canonicalize(Iff(b, a))

    def test_subtraction_not_commuted(self):
        assert canonicalize(X - Y <= 0) != canonicalize(Y - X <= 0)

    def test_implication_not_commuted(self):
        a, b = X <= 5, Y >= 3
        assert canonicalize(a.implies(b)) != canonicalize(b.implies(a))

    def test_nested_reorderings(self):
        left = parse_bool("(x <= 5 and y >= 3) or x == 9")
        right = parse_bool("x == 9 or (y >= 3 and x <= 5)")
        assert canonicalize(left) == canonicalize(right)

    @given(bool_exprs(NAMES))
    def test_idempotent(self, expr):
        assert canonicalize(canonicalize(expr)) == canonicalize(expr)

    @given(bool_exprs(NAMES))
    def test_semantics_preserved(self, expr):
        canonical = canonicalize(expr)
        for env in ({"x": 0, "y": 0}, {"x": 3, "y": -2}, {"x": -7, "y": 11}):
            assert eval_bool(expr, env) == eval_bool(canonical, env)


class TestStableHash:
    def test_reordered_queries_share_hash(self):
        assert stable_hash(parse_bool("x <= 5 and y >= 3")) == stable_hash(
            parse_bool("y >= 3 and x <= 5")
        )

    def test_distinct_queries_differ(self):
        assert stable_hash(parse_bool("x <= 5")) != stable_hash(parse_bool("x <= 6"))

    def test_hash_is_hex_sha256(self):
        digest = stable_hash(X <= 5)
        assert len(digest) == 64
        int(digest, 16)


class TestJsonCodec:
    @given(bool_exprs(NAMES))
    def test_round_trip(self, expr):
        assert expr_from_json(expr_to_json(expr)) == expr

    def test_in_set_values_round_trip(self):
        expr = X.in_set({3, 7, 19})
        assert expr_from_json(expr_to_json(expr)) == expr

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            expr_from_json({"node": "Octagon"})


class TestSpecCodec:
    def test_round_trip(self):
        spec = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_fingerprint_sensitive_to_bounds(self):
        a = SecretSpec.declare("S", x=(0, 9))
        b = SecretSpec.declare("S", x=(0, 10))
        assert spec_fingerprint(a) != spec_fingerprint(b)
