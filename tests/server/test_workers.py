"""Worker tier: compile-shard routing/codec/admission, serving shards."""

import json
from concurrent.futures import Future

import pytest

from repro.core.plugin import CompileOptions, compile_query
from repro.lang.canonical import spec_to_json
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.server import faults
from repro.server.supervise import CodecError, ShardCrash
from repro.server.workers import (
    ServingShardPool,
    ShardOverloaded,
    ShardedCompilePool,
    compile_payload,
    rounds_by_user,
    serve_shard_of,
    shard_of,
)
from repro.service.serialize import compiled_query_to_json, policy_to_json


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()

SPEC = SecretSpec.declare("UserLoc", x=(0, 99), y=(0, 99))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))
QUERY = "abs(x - 50) + abs(y - 50) <= 30"
#: The same query as another tenant writes it (commuted ``+``).
QUERY_REORDERED = "abs(y - 50) + abs(x - 50) <= 30"


def test_alpha_equivalent_queries_route_to_same_shard():
    a, b = parse_bool(QUERY), parse_bool(QUERY_REORDERED)
    for shards in (2, 3, 7):
        assert shard_of(a, shards) == shard_of(b, shards)
    pool = ShardedCompilePool(4, inline=True)
    assert pool.shard_for(QUERY) == pool.shard_for(QUERY_REORDERED)


def test_routing_is_stable_and_in_range():
    queries = [f"x <= {t}" for t in range(20)]
    pool = ShardedCompilePool(4, inline=True)
    shards = [pool.shard_for(q) for q in queries]
    assert shards == [pool.shard_for(q) for q in queries]
    assert all(0 <= s < 4 for s in shards)
    # The hash spreads work: 20 distinct queries never pile onto one shard.
    assert len(set(shards)) > 1


def test_inline_compile_matches_local_compile():
    pool = ShardedCompilePool(2, inline=True)
    future = pool.submit("q", QUERY, SPEC, OPTIONS)
    compiled, provenance = pool.decode(future.result())
    local = compile_query("q", QUERY, SPEC, OPTIONS)
    assert compiled.name == "q"
    assert compiled.qinfo.under_indset == local.qinfo.under_indset
    assert compiled.qinfo.over_indset == local.qinfo.over_indset
    assert all(report.verified for report in compiled.reports.values())
    assert provenance["shard_cache_hit"] is False
    assert pool.total_submitted() == 1


def test_shard_local_cache_skips_resynthesis():
    pool = ShardedCompilePool(1, inline=True)
    first = pool.submit("a", QUERY, SPEC, OPTIONS).result()
    second = pool.submit("b", QUERY_REORDERED, SPEC, OPTIONS).result()
    _, prov1 = pool.decode(first)
    _, prov2 = pool.decode(second)
    compiled_b, _ = pool.decode(second)
    assert prov2["shard_cache_hit"] is True or prov1["shard_cache_hit"] is True
    assert compiled_b.name == "b"


def test_admission_control_sheds_at_bound():
    pool = ShardedCompilePool(1, max_pending=2, inline=True)
    # Hold reservations open the way in-flight process jobs would.
    pool._reserve(0)
    pool._reserve(0)
    with pytest.raises(ShardOverloaded):
        pool.submit("q", QUERY, SPEC, OPTIONS)
    assert pool.total_shed() == 1
    pool._release(0)
    # One slot free again: the job is admitted.
    future = pool.submit("q", QUERY, SPEC, OPTIONS)
    compiled, _ = pool.decode(future.result())
    assert compiled.name == "q"
    pool._release(0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        ShardedCompilePool(0)
    with pytest.raises(ValueError):
        ShardedCompilePool(1, max_pending=0)


class _FakeExecutor:
    """Stands in for a shard's ProcessPoolExecutor in failure tests."""

    def __init__(self, broken: bool = True):
        self.broken = broken

    def submit(self, fn, payload):
        if self.broken:
            raise RuntimeError("executor is broken")
        future: Future = Future()
        future.set_result(fn(payload))
        return future

    def shutdown(self, wait=True):
        pass


def test_submit_failure_releases_admission_slot():
    """Regression: a broken executor must not eat the shard's capacity.

    Before the fix, every failed submit leaked its reserved slot, so
    ``max_pending`` failures bricked the shard into shedding everything.
    """
    pool = ShardedCompilePool(1, max_pending=4)
    fake = _FakeExecutor(broken=True)
    pool._executors[0] = fake
    for _ in range(5):
        with pytest.raises(RuntimeError, match="executor is broken"):
            pool.submit("q", QUERY, SPEC, OPTIONS)
    stats = pool.stats()[0]
    # Slots were returned each time: nothing shed, nothing still pending.
    assert stats.pending == 0
    assert stats.failed == 5
    assert stats.shed == 0 and pool.total_shed() == 0
    assert stats.submitted == 5
    # The shard still admits once the executor works again.
    fake.broken = False
    compiled, _ = pool.decode(pool.submit("q", QUERY, SPEC, OPTIONS).result())
    assert compiled.name == "q"
    assert pool.stats()[0].pending == 0


def test_inline_crash_fault_surfaces_as_typed_shard_crash():
    pool = ShardedCompilePool(1, inline=True)
    pool.fault_plan = faults.FaultPlan(
        [faults.FaultSpec(site="compile", kind="crash_before_result")]
    )
    future = pool.submit("q", QUERY, SPEC, OPTIONS)
    failure = future.exception()
    assert isinstance(failure, ShardCrash)
    assert failure.shard == pool.shard_for(QUERY) and failure.site == "compile"
    # The fault budget is spent: the retry succeeds.
    compiled, _ = pool.decode(pool.submit("q", QUERY, SPEC, OPTIONS).result())
    assert compiled.name == "q"
    assert pool.stats()[failure.shard].pending == 0


def test_undecodable_results_raise_codec_error():
    with pytest.raises(CodecError, match="undecodable compile"):
        ShardedCompilePool.decode("\x00corrupt")
    with pytest.raises(CodecError, match="undecodable compile"):
        ShardedCompilePool.decode(json.dumps({"artifact": None}))
    with pytest.raises(CodecError, match="undecodable serving"):
        ServingShardPool.decode("{half a json")
    with pytest.raises(CodecError, match="undecodable serving"):
        ServingShardPool.decode(json.dumps({"results": []}))


def test_clean_payload_skips_fault_fragment():
    pool = ShardedCompilePool(1, inline=True)
    pool.fault_plan = faults.FaultPlan(
        [faults.FaultSpec(site="compile", kind="crash_before_result")]
    )
    armed = json.loads(pool.payload_for("q", QUERY, SPEC, OPTIONS))
    clean = json.loads(
        pool.payload_for("q", QUERY, SPEC, OPTIONS, with_faults=False)
    )
    assert "faults" in armed and "faults" not in clean
    # The degraded path runs clean payloads: no crash, real artifact.
    compiled, _ = pool.decode(compile_payload(json.dumps(clean)))
    assert compiled.name == "q"


def test_process_pool_compiles_and_shuts_down():
    """The real process path: fork, compile remotely, decode, tear down."""
    with ShardedCompilePool(2) as pool:
        futures = [
            pool.submit(f"q{t}", f"x <= {t}", SPEC, OPTIONS) for t in (10, 60)
        ]
        for t, future in zip((10, 60), futures):
            compiled, provenance = pool.decode(future.result(timeout=60))
            local = compile_query(f"q{t}", f"x <= {t}", SPEC, OPTIONS)
            assert compiled.qinfo.under_indset == local.qinfo.under_indset
            assert isinstance(provenance["pid"], int)
    assert pool.total_submitted() == 2


# ---------------------------------------------------------------------------
# Serving shards
# ---------------------------------------------------------------------------


def test_serve_shard_routing_is_stable_by_user_and_in_range():
    users = [f"user-{i}" for i in range(50)]
    for shards in (1, 2, 5):
        routed = [serve_shard_of(u, shards) for u in users]
        assert routed == [serve_shard_of(u, shards) for u in users]
        assert all(0 <= s < shards for s in routed)
    # SHA-256 spreads distinct users across shards.
    assert len({serve_shard_of(u, 5) for u in users}) > 1
    pool = ServingShardPool(5, inline=True)
    assert pool.shard_for("alice") == serve_shard_of("alice", 5)


def test_rounds_by_user_never_repeats_a_user_per_round():
    users = {"a1": "alice", "a2": "alice", "a3": "alice", "b1": "bob"}
    rounds = rounds_by_user(["a1", "b1", "a2", "a3"], users)
    assert rounds == [["a1", "b1"], ["a2"], ["a3"]]
    for round_ids in rounds:
        owners = [users.get(sid, sid) for sid in round_ids]
        assert len(owners) == len(set(owners))
    # Unmapped sessions fall back to their own id as the user.
    assert rounds_by_user(["x", "y"], {}) == [["x", "y"]]


def _serving_ops(policy_floor=None):
    """A canonical op sequence: configure, attach, open two sessions."""
    small = SecretSpec.declare("WkSmall", x=(0, 15), y=(0, 15))
    from repro.monad.policy import size_above

    compiled = compile_query(
        "half", "x <= 7", small, CompileOptions(domain="interval")
    )
    ops = [
        {
            "op": "configure",
            "policy": policy_to_json(size_above(0)),
            "floor": (
                None if policy_floor is None else policy_to_json(policy_floor)
            ),
            "decay": None,
            "mode": "under",
            "check_both": True,
        },
        {
            "op": "attach_query",
            "name": "half",
            "artifact": compiled_query_to_json(compiled),
        },
        {
            "op": "open_session",
            "session_id": "s1",
            "user_id": "alice",
            "spec": spec_to_json(small),
            "value": [3, 3],
            "bounds": None,
        },
        {
            "op": "open_session",
            "session_id": "s2",
            "user_id": "bob",
            "spec": spec_to_json(small),
            "value": [12, 3],
            "bounds": None,
        },
        {
            "op": "downgrade_batch",
            "query_name": "half",
            "session_ids": ["s1", "s2", "ghost"],
        },
    ]
    return ops


def test_inline_serving_pool_round_trips_results_and_deltas():
    from repro.monad.policy import size_above

    with ServingShardPool(2, inline=True) as pool:
        response = ServingShardPool.decode(
            pool.submit(0, _serving_ops(policy_floor=size_above(100))).result()
        )
    results = {r.session_id: r for r in response["results"]}
    assert results["s1"].authorized and results["s1"].response is True
    assert results["s2"].authorized and results["s2"].response is False
    assert not results["ghost"].authorized
    assert "no open session" in results["ghost"].reason
    # One delta per committed (user, spec); payloads are versioned JSON.
    deltas = {d["user_id"]: d["payload"] for d in response["deltas"]}
    assert set(deltas) == {"alice", "bob"}
    assert all(p["version"] == 1 for p in deltas.values())
    assert response["budget_refusals"] == 0


def test_inline_pools_do_not_share_state():
    """Two inline pools in one process must not see each other's shards."""
    from repro.monad.policy import size_above

    floor = size_above(100)
    with ServingShardPool(1, inline=True) as pool_a:
        pool_a.submit(0, _serving_ops(policy_floor=floor)).result()
        with ServingShardPool(1, inline=True) as pool_b:
            # Same shard index, fresh pool: opening "s1" again must not
            # collide with pool_a's already-open "s1".
            response = ServingShardPool.decode(
                pool_b.submit(0, _serving_ops(policy_floor=floor)).result()
            )
    assert all(
        r.authorized for r in response["results"] if r.session_id != "ghost"
    )


def test_unknown_op_is_an_error():
    from repro.monad.policy import size_above

    with ServingShardPool(1, inline=True) as pool:
        ops = _serving_ops(policy_floor=size_above(0))[:1]
        ops.append({"op": "frobnicate"})
        with pytest.raises(ValueError, match="frobnicate"):
            pool.submit(0, ops).result()


def test_serving_process_pool_serves_and_shuts_down():
    """The real process path: ops execute in a shard process, results and
    deltas decode on this side, and provenance proves the hop."""
    import os

    from repro.monad.policy import size_above

    with ServingShardPool(1) as pool:
        raw = pool.submit(0, _serving_ops(policy_floor=size_above(100))).result(
            timeout=60
        )
        response = ServingShardPool.decode(raw)
        assert isinstance(response["pid"], int)
        assert response["pid"] != os.getpid()
        results = {r.session_id: r for r in response["results"]}
        assert results["s1"].response is True
        assert results["s2"].response is False
        # The raw wire format really is JSON, not pickles.
        json.loads(raw)


def test_inline_restart_drops_shard_state():
    """Inline restart is the analogue of process death: state is gone."""
    from repro.monad.policy import size_above

    floor = size_above(100)
    with ServingShardPool(1, inline=True) as pool:
        first = ServingShardPool.decode(
            pool.submit(0, _serving_ops(policy_floor=floor)).result()
        )
        assert {r.session_id: r.authorized for r in first["results"]}["s1"]
        pool.restart_shard(0)
        # The replacement knows nothing: configure it again, then ask for
        # the old sessions without re-opening them.
        ops = _serving_ops(policy_floor=floor)
        ops = [op for op in ops if op["op"] != "open_session"]
        second = ServingShardPool.decode(pool.submit(0, ops).result())
    for result in second["results"]:
        assert not result.authorized
        assert "no open session" in result.reason


def test_ping_and_restart_on_process_shards():
    with ShardedCompilePool(1) as pool:
        assert pool.ping(0, timeout=60)
        pool.restart_shard(0)
        # A replacement process forks lazily on the next use.
        assert pool.ping(0, timeout=60)
    assert ShardedCompilePool(1, inline=True).ping(0)
