"""The metrics registry: buckets, thread-safety, snapshots, exposition.

The four properties ISSUE 10 names: histogram bucket boundaries land
observations where the ``le`` semantics say they must; concurrent
recording from many threads loses nothing; snapshots are isolated
(no torn sum/count pairs, ever); and the Prometheus text exposition
round-trips through the small parser in tests/obs/prom.py.
"""

import threading

import pytest
from prom import parse_exposition

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    log_buckets,
)

# ---------------------------------------------------------------------------
# Bucket boundaries
# ---------------------------------------------------------------------------


def test_log_buckets_fixed_spacing_and_coverage():
    bounds = log_buckets(1e-4, 100.0, per_decade=3)
    assert bounds[0] == 1e-4
    assert bounds[-1] >= 100.0
    # Fixed log spacing: three buckets per decade.
    ratios = [b / a for a, b in zip(bounds, bounds[1:])]
    assert all(abs(r - 10 ** (1 / 3)) < 1e-3 for r in ratios)
    assert bounds == DEFAULT_TIME_BUCKETS


def test_log_buckets_rejects_bad_ranges():
    with pytest.raises(ValueError):
        log_buckets(0.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(2.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1.0, 10.0, per_decade=0)


def test_observation_on_boundary_is_inclusive():
    """Prometheus ``le`` is <=: a value equal to a bound lands in it."""
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(1.0, 10.0, 100.0))
    hist.observe(1.0)  # exactly the first bound
    hist.observe(10.0)  # exactly the second
    hist.observe(10.5)  # strictly inside the third
    hist.observe(1000.0)  # past every finite bound -> +Inf only
    series = registry.snapshot()["h"]["series"][""]
    assert series["buckets"] == [1, 1, 1, 1]
    assert series["count"] == 4 and series["sum"] == 1021.5
    text = registry.exposition()
    families = parse_exposition(text)
    samples = families["h"].samples
    assert samples[("h_bucket", frozenset({("le", "1")}))] == 1
    assert samples[("h_bucket", frozenset({("le", "10")}))] == 2
    assert samples[("h_bucket", frozenset({("le", "100")}))] == 3
    assert samples[("h_bucket", frozenset({("le", "+Inf")}))] == 4


def test_default_buckets_follow_channel():
    registry = MetricsRegistry()
    timing = registry.histogram("t", channel="timing")
    sizes = registry.histogram("s", channel="decision")
    assert timing.bounds == DEFAULT_TIME_BUCKETS
    assert sizes.bounds == DEFAULT_SIZE_BUCKETS


# ---------------------------------------------------------------------------
# Declaration discipline
# ---------------------------------------------------------------------------


def test_redeclaration_is_idempotent_but_shape_changes_raise():
    registry = MetricsRegistry()
    first = registry.counter("c", "help", labels=("kind",))
    assert registry.counter("c", "other help", labels=("kind",)) is first
    with pytest.raises(ValueError):
        registry.gauge("c", labels=("kind",))
    with pytest.raises(ValueError):
        registry.counter("c")
    with pytest.raises(ValueError):
        registry.counter("c", labels=("kind",), channel="timing")
    with pytest.raises(ValueError):
        registry.counter("x", channel="nope")


def test_label_and_kind_guards():
    registry = MetricsRegistry()
    counter = registry.counter("c", labels=("kind",))
    with pytest.raises(ValueError):
        counter.inc()  # labeled: must go through .labels()
    with pytest.raises(ValueError):
        counter.labels(wrong="x")
    with pytest.raises(ValueError):
        counter.labels(kind="x").inc(-1)
    hist = registry.histogram("h")
    with pytest.raises(TypeError):
        hist._require_default().inc()
    with pytest.raises(TypeError):
        hist._require_default().set(1.0)


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


def test_concurrent_recording_loses_nothing():
    registry = MetricsRegistry()
    counter = registry.counter("hits", labels=("worker",))
    hist = registry.histogram("sizes", buckets=(1.0, 2.0, 4.0))
    threads, per_thread = 8, 2_000

    def work(worker: int) -> None:
        child = counter.labels(worker=str(worker))
        for i in range(per_thread):
            child.inc()
            hist.observe(float(worker % 4))

    pool = [
        threading.Thread(target=work, args=(worker,))
        for worker in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    snap = registry.snapshot()
    hits = snap["hits"]["series"]
    assert all(
        hits[f'{{worker="{w}"}}'] == per_thread for w in range(threads)
    )
    sizes = snap["sizes"]["series"][""]
    assert sizes["count"] == threads * per_thread
    assert sum(sizes["buckets"]) == sizes["count"]


def test_snapshot_isolation_no_torn_pairs():
    """A snapshot can never see count moved but sum unmoved (or v.v.)."""
    registry = MetricsRegistry()
    hist = registry.histogram("pairs", buckets=(10.0,))
    stop = threading.Event()

    def writer() -> None:
        while not stop.is_set():
            hist.observe(1.0)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(500):
            series = registry.snapshot()["pairs"]["series"][""]
            # Every observation is 1.0, so a consistent snapshot has
            # sum == count and buckets summing to count, exactly.
            assert series["sum"] == series["count"]
            assert sum(series["buckets"]) == series["count"]
    finally:
        stop.set()
        thread.join()


# ---------------------------------------------------------------------------
# Exposition round-trip and the drain/absorb fold
# ---------------------------------------------------------------------------


def _populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("req", "requests", labels=("route", "status")).labels(
        route="/v1/x", status="200"
    ).inc(3)
    registry.gauge("depth", "queue depth").set(7)
    registry.gauge("frac", channel="timing").set(0.25)
    hist = registry.histogram("lat", "latency", channel="timing")
    for value in (0.001, 0.01, 0.01, 5.0):
        hist.observe(value)
    return registry


def test_exposition_round_trips_through_parser():
    registry = _populated()
    families = parse_exposition(registry.exposition())
    assert families["req"].kind == "counter"
    assert families["req"].help == "requests"
    key = ("req", frozenset({("route", "/v1/x"), ("status", "200")}))
    assert families["req"].samples[key] == 3
    assert families["depth"].samples[("depth", frozenset())] == 7
    assert families["lat"].kind == "histogram"
    assert families["lat"].samples[("lat_count", frozenset())] == 4
    assert families["lat"].samples[("lat_sum", frozenset())] == pytest.approx(
        5.021
    )


def test_exposition_is_deterministic_and_channel_filtered():
    one, two = _populated(), _populated()
    assert one.exposition() == two.exposition()
    decision_only = one.exposition(channels=("decision",))
    assert "req" in decision_only and "depth" in decision_only
    assert "lat" not in decision_only and "frac" not in decision_only
    parse_exposition(decision_only)  # still well-formed


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("c", labels=("v",)).labels(v='a"b\\c\nd').inc()
    families = parse_exposition(registry.exposition())
    (key,) = families["c"].samples
    assert dict(key[1])["v"] == 'a"b\\c\nd'


def test_drain_absorb_reproduces_the_registry():
    source = _populated()
    target = MetricsRegistry()
    target.absorb(source.drain())
    assert target.exposition() == source.exposition()
    # Drain marks everything reported: a second drain is empty...
    assert all(
        entry["kind"] == "gauge"
        for entry in source.drain()["instruments"]
    )
    # ...and new recordings ship as deltas that fold additively.
    source.counter("req", labels=("route", "status")).labels(
        route="/v1/x", status="200"
    ).inc(2)
    target.absorb(source.drain())
    key = ("req", frozenset({("route", "/v1/x"), ("status", "200")}))
    assert parse_exposition(target.exposition())["req"].samples[key] == 5


def test_null_registry_is_falsy_and_inert():
    assert not NULL_REGISTRY
    assert MetricsRegistry()  # the real one is truthy
    NULL_REGISTRY.counter("c", labels=("x",)).labels(x="1").inc()
    NULL_REGISTRY.histogram("h").observe(3.0)
    NULL_REGISTRY.gauge("g").set(2.0)
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.exposition() == ""
    assert NULL_REGISTRY.drain() == {"instruments": []}
