"""Shared hypothesis strategies: random queries, boxes, and secrets.

The generators stay inside the section 5.1 query fragment (linear
arithmetic, abs, conditionals, boolean structure, finite-set membership)
so that everything they produce is fair game for every layer of the
system, from the abstract evaluator to full compilation.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolLit,
    Cmp,
    CmpOp,
    InSet,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box

__all__ = [
    "small_secret_spec",
    "int_exprs",
    "bool_exprs",
    "boxes_within",
    "points_within",
    "solver_cases",
    "renamings",
    "translations",
]

#: A compact two-field secret used across property tests.
SMALL_SPEC = SecretSpec.declare("Tiny", x=(-8, 12), y=(0, 15))


def small_secret_spec() -> SecretSpec:
    """The shared small secret type (21 x 16 = 336 points)."""
    return SMALL_SPEC


def _literals() -> st.SearchStrategy:
    return st.integers(min_value=-20, max_value=20).map(Lit)


def _leaf_conditions(var_names: tuple[str, ...]) -> st.SearchStrategy:
    """Shallow boolean conditions (for ITE) that avoid strategy recursion."""
    leaves = st.one_of(_literals(), st.sampled_from(var_names).map(Var))
    return st.tuples(st.sampled_from(list(CmpOp)), leaves, leaves).map(
        lambda oab: Cmp(*oab)
    )


def int_exprs(var_names: tuple[str, ...], max_depth: int = 3) -> st.SearchStrategy:
    """Random integer expressions over the given variables."""
    leaves = st.one_of(_literals(), st.sampled_from(var_names).map(Var))
    conditions = _leaf_conditions(var_names)

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        pairs = st.tuples(children, children)
        return st.one_of(
            pairs.map(lambda ab: Add(*ab)),
            pairs.map(lambda ab: Sub(*ab)),
            children.map(Neg),
            children.map(Abs),
            st.tuples(st.integers(-3, 3), children).map(lambda ca: Scale(*ca)),
            pairs.map(lambda ab: Min(*ab)),
            pairs.map(lambda ab: Max(*ab)),
            st.tuples(conditions, children, children).map(lambda cab: IntIte(*cab)),
        )

    return st.recursive(leaves, extend, max_leaves=max_depth * 3)


def _atoms(var_names: tuple[str, ...], max_depth: int) -> st.SearchStrategy:
    ints = int_exprs(var_names, max_depth=max_depth)
    comparisons = st.tuples(st.sampled_from(list(CmpOp)), ints, ints).map(
        lambda oab: Cmp(*oab)
    )
    memberships = st.tuples(
        ints,
        st.frozensets(st.integers(-15, 15), min_size=1, max_size=5),
    ).map(lambda av: InSet(*av))
    return st.one_of(
        comparisons,
        memberships,
        st.booleans().map(BoolLit),
    )


def bool_exprs(var_names: tuple[str, ...], max_depth: int = 2) -> st.SearchStrategy:
    """Random boolean formulas over the given variables."""
    leaves = _atoms(var_names, max_depth=max_depth)

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        lists = st.lists(children, min_size=2, max_size=3).map(tuple)
        return st.one_of(
            lists.map(And),
            lists.map(Or),
            children.map(Not),
        )

    return st.recursive(leaves, extend, max_leaves=4)


@st.composite
def boxes_within(draw, outer: Box) -> Box:
    """A random sub-box of ``outer``."""
    bounds = []
    for lo, hi in outer.bounds:
        a = draw(st.integers(min_value=lo, max_value=hi))
        b = draw(st.integers(min_value=lo, max_value=hi))
        bounds.append((min(a, b), max(a, b)))
    return Box(tuple(bounds))


@st.composite
def points_within(draw, box: Box) -> tuple[int, ...]:
    """A random integer point inside ``box``."""
    return tuple(
        draw(st.integers(min_value=lo, max_value=hi)) for lo, hi in box.bounds
    )


@st.composite
def solver_cases(
    draw, var_names: tuple[str, ...], outer: Box, max_depth: int = 2
) -> tuple:
    """A random ``(formula, box)`` decision problem inside ``outer``.

    The shared generator of the differential conformance suite: every
    pair it produces is small enough for brute-force enumeration, so
    engine verdicts can be checked against ground truth.
    """
    formula = draw(bool_exprs(var_names, max_depth=max_depth))
    box = draw(boxes_within(outer))
    return formula, box


@st.composite
def renamings(draw, var_names: tuple[str, ...]) -> dict[str, str]:
    """A bijective renaming of the variables (possibly a permutation)."""
    fresh = [f"v{index}_renamed" for index in range(len(var_names))]
    order = draw(st.permutations(fresh))
    return dict(zip(var_names, order))


@st.composite
def translations(
    draw, var_names: tuple[str, ...], max_shift: int = 30
) -> dict[str, int]:
    """A per-variable integer shift for coordinate-translation tests."""
    return {
        name: draw(st.integers(min_value=-max_shift, max_value=max_shift))
        for name in var_names
    }
