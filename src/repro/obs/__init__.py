"""Observability for the serving runtime: metrics, traces, introspection.

The serving stack (edge → gateway → shards → journal → store) is
instrumented through this package and nothing else — it is deliberately
dependency-free (stdlib only) and import-leaf: :mod:`repro.obs` imports
no other ``repro`` module, so every layer of the runtime can hold a
registry or tracer without cycles.

Three pieces:

* :mod:`repro.obs.metrics` — a thread-safe in-process registry of
  labeled counters, gauges, and fixed-log-bucket histograms with cheap
  hot-path recording, consistent point-in-time snapshots, and Prometheus
  text exposition.  Every instrument declares a *channel* — the
  secret-independence taxonomy DESIGN.md §13 describes — so the
  telemetry that must be bit-identical across secret-differing runs is
  mechanically separable from wall-clock timings and
  declassification-derived sizes.
* :mod:`repro.obs.trace` — replay-stable request tracing: trace and
  span ids derive deterministically from idempotency key + journal
  sequence number, so a replayed journal reproduces byte-identical
  trace trees (:class:`~repro.server.replay.ReplaySession` asserts it).
* :mod:`repro.obs.hub` — the :class:`~repro.obs.hub.MetricsHub` a
  gateway owns: one registry + one tracer, the fold point for the
  observation reports serving shards piggyback on their batch
  responses.
"""

from repro.obs.hub import MetricsHub
from repro.obs.metrics import (
    CHANNELS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    log_buckets,
)
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    span_id_for,
    trace_id_for,
)

__all__ = [
    "CHANNELS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "Span",
    "Tracer",
    "log_buckets",
    "span_id_for",
    "trace_id_for",
]
