#!/usr/bin/env python3
"""The section 6.2 secure advertising system, in miniature.

A restaurant chain wants to show ads to nearby users.  Every branch's
proximity check is a declassification, so the chain's total learning is
bounded by the policy "never pin the user below 100 possible locations".
This script compiles a 12-branch deployment for two abstract domains and
shows how far each gets before the policy trips — the Figure 6 effect.

Run:  python examples/location_advertising.py
(Full experiment: python -m repro.experiments.figure6)
"""

import random

from repro.benchsuite.advertising import build_system


def main() -> None:
    INSTANCES = 6
    QUERIES = 12

    print(f"Compiling two deployments ({QUERIES} branches each)...")
    for k, label in [(1, "interval domain (k=1)"), (5, "powersets of 5 intervals")]:
        system = build_system(k=k, num_queries=QUERIES, seed=99)
        rng = random.Random(7)
        print(f"\n{label}:")
        for instance in range(INSTANCES):
            user = (rng.randrange(400), rng.randrange(400))
            result = system.run_instance(user)
            bar = "#" * result.authorized
            status = "ran out of branches" if result.survived_all else "policy violation"
            print(
                f"  user {instance}: {bar:<{QUERIES}} "
                f"{result.authorized:2d} ads authorized ({status})"
            )

    print(
        "\nMore precise domains keep the knowledge under-approximation honest\n"
        "for longer, so more branches get an answer before the policy trips."
    )


if __name__ == "__main__":
    main()
