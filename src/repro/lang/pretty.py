"""Pretty-printer for the query language.

Produces the concrete text syntax accepted by :mod:`repro.lang.parser`;
``parse_bool(pretty(e))`` is structurally equal to ``fold_constants``-stable
expressions, which the round-trip property tests rely on.
"""

from __future__ import annotations

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolLit,
    Cmp,
    Expr,
    Iff,
    Implies,
    InSet,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)

__all__ = ["pretty"]

# Precedence levels, loosest binding first.  Used to insert the minimal
# parentheses needed for an unambiguous reparse.
_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_NOT = 5
_PREC_CMP = 6
_PREC_ADD = 7
_PREC_MUL = 8
_PREC_UNARY = 9
_PREC_ATOM = 10


def pretty(expr: Expr) -> str:
    """Render an expression in the concrete query syntax."""
    text, _prec = _render(expr)
    return text


def _parens(text: str, prec: int, context: int) -> str:
    return f"({text})" if prec < context else text


def _child(expr: Expr, context: int) -> str:
    text, prec = _render(expr)
    return _parens(text, prec, context)


def _render(expr: Expr) -> tuple[str, int]:
    match expr:
        case Lit(value):
            # Negative literals render via unary minus so the lexer stays
            # sign-free.
            if value < 0:
                return f"-{-value}", _PREC_UNARY
            return str(value), _PREC_ATOM
        case Var(name):
            return name, _PREC_ATOM
        case Add(left, right):
            return (
                f"{_child(left, _PREC_ADD)} + {_child(right, _PREC_ADD + 1)}",
                _PREC_ADD,
            )
        case Sub(left, right):
            return (
                f"{_child(left, _PREC_ADD)} - {_child(right, _PREC_ADD + 1)}",
                _PREC_ADD,
            )
        case Neg(arg):
            return f"-{_child(arg, _PREC_UNARY)}", _PREC_UNARY
        case Scale(coeff, arg):
            # The argument binds one level tighter so nested scalings
            # reparse as written: "0 * (0 * x)" rather than "0 * 0 * x",
            # whose left-associative reading (0*0)*x fails the parser's
            # linearity check.
            return f"{coeff} * {_child(arg, _PREC_MUL + 1)}", _PREC_MUL
        case Abs(arg):
            return f"abs({pretty(arg)})", _PREC_ATOM
        case Min(left, right):
            return f"min({pretty(left)}, {pretty(right)})", _PREC_ATOM
        case Max(left, right):
            return f"max({pretty(left)}, {pretty(right)})", _PREC_ATOM
        case IntIte(cond, then_branch, else_branch):
            # Precedence 0: parenthesized whenever nested, since the
            # else-branch would otherwise capture surrounding operators.
            return (
                f"if {pretty(cond)} then {_child(then_branch, _PREC_ADD)} "
                f"else {_child(else_branch, _PREC_ADD)}",
                0,
            )
        case BoolLit(value):
            return ("true" if value else "false"), _PREC_ATOM
        case Cmp(op, left, right):
            return (
                f"{_child(left, _PREC_ADD)} {op.value} {_child(right, _PREC_ADD)}",
                _PREC_CMP,
            )
        case And(args):
            parts = " and ".join(_child(arg, _PREC_AND) for arg in args)
            return parts, _PREC_AND
        case Or(args):
            parts = " or ".join(_child(arg, _PREC_OR) for arg in args)
            return parts, _PREC_OR
        case Not(arg):
            return f"not {_child(arg, _PREC_NOT)}", _PREC_NOT
        case Implies(antecedent, consequent):
            return (
                f"{_child(antecedent, _PREC_IMPLIES + 1)} => "
                f"{_child(consequent, _PREC_IMPLIES)}",
                _PREC_IMPLIES,
            )
        case Iff(left, right):
            return (
                f"{_child(left, _PREC_IFF + 1)} <=> {_child(right, _PREC_IFF + 1)}",
                _PREC_IFF,
            )
        case InSet(arg, values):
            members = ", ".join(str(v) for v in sorted(values))
            return f"{_child(arg, _PREC_ADD)} in {{{members}}}", _PREC_CMP
        case _:
            raise TypeError(f"unknown AST node: {expr!r}")
