"""The machine checker — this reproduction's Liquid Haskell.

Given a domain value and a :class:`~repro.refine.spec.Refinement`, the
checker discharges the two quantified obligations of the abstract
refinement encoding::

    positive:  ∀ x ∈ space.  x ∈ domain  ⇒  p(x)
    negative:  ∀ x ∈ space.  x ∉ domain  ⇒  n(x)

Membership is expressed with the domain's :meth:`member_formula`, so both
obligations are quantifier-free formulas over the bounded secret space,
decided *exactly* by :func:`repro.solver.decide.decide_forall`.  A passing
:class:`Certificate` is therefore a proof, not a test: the same theorem
Liquid Haskell establishes for the Haskell artifact.

The checker is deliberately independent of the synthesizer (the paper
stresses the same separation in section 2.3 Step IV): it can verify
hand-written domains just as well as synthesized ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang.ast import BoolLit, Implies, Not
from repro.lang.pretty import pretty
from repro.lang.transform import nnf
from repro.domains.base import AbstractDomain
from repro.refine.spec import Refinement
from repro.solver.boxes import Box
from repro.solver.decide import SolverStats, decide_forall, make_engine

__all__ = [
    "Certificate",
    "CheckOutcome",
    "VerificationError",
    "check_refinement",
    "verify_refinement",
    "verify_pair",
]


@dataclass(frozen=True)
class Certificate:
    """One discharged (or refuted) proof obligation."""

    obligation: str
    formula: str
    holds: bool
    search_nodes: int
    elapsed: float
    #: Sub-boxes the proof search finished on a NumPy grid.
    vector_boxes: int = 0


@dataclass(frozen=True)
class CheckOutcome:
    """The result of checking a domain against a refinement index."""

    certificates: tuple[Certificate, ...]

    @property
    def verified(self) -> bool:
        """Whether every obligation holds."""
        return all(cert.holds for cert in self.certificates)

    @property
    def total_nodes(self) -> int:
        """Total search nodes across obligations (proof effort metric)."""
        return sum(cert.search_nodes for cert in self.certificates)

    @property
    def elapsed(self) -> float:
        """Total wall-clock verification time in seconds."""
        return sum(cert.elapsed for cert in self.certificates)


class VerificationError(Exception):
    """A synthesized artifact failed verification (should never happen)."""

    def __init__(self, outcome: CheckOutcome):
        failing = [cert for cert in outcome.certificates if not cert.holds]
        details = "; ".join(f"{cert.obligation}: {cert.formula}" for cert in failing)
        super().__init__(f"refinement check failed: {details}")
        self.outcome = outcome


def check_refinement(
    domain: AbstractDomain, refinement: Refinement, *, engine=None
) -> CheckOutcome:
    """Check both obligations; never raises on failure.

    ``engine`` optionally shares a solver engine with the caller — the
    compile step passes its synthesis engine so the obligations reuse the
    already-lowered query kernels.
    """
    refinement.check_fields(domain.spec)
    space = Box(domain.spec.bounds())
    names = domain.spec.field_names
    member = domain.member_formula()
    if engine is None:
        # Both obligations share the membership formula (and usually the
        # query), so one engine lowers their common sub-kernels once.
        engine = make_engine(names)
    certificates = []

    if refinement.positive != BoolLit(True):
        certificates.append(
            _discharge(
                "positive",
                Implies(member, refinement.positive),
                space,
                names,
                engine,
            )
        )
    if refinement.negative != BoolLit(True):
        certificates.append(
            _discharge(
                "negative",
                Implies(nnf(Not(member)), refinement.negative),
                space,
                names,
                engine,
            )
        )
    return CheckOutcome(tuple(certificates))


def _discharge(obligation: str, formula, space: Box, names, engine=None) -> Certificate:
    stats = SolverStats()
    start = time.perf_counter()
    holds = decide_forall(formula, space, names, stats, engine=engine)
    elapsed = time.perf_counter() - start
    return Certificate(
        obligation=obligation,
        formula=pretty(formula),
        holds=holds,
        search_nodes=stats.nodes,
        elapsed=elapsed,
        vector_boxes=stats.vector_boxes,
    )


def verify_refinement(
    domain: AbstractDomain, refinement: Refinement, *, engine=None
) -> CheckOutcome:
    """Check and raise :class:`VerificationError` unless everything holds."""
    outcome = check_refinement(domain, refinement, engine=engine)
    if not outcome.verified:
        raise VerificationError(outcome)
    return outcome


def verify_pair(
    domains: tuple[AbstractDomain, AbstractDomain],
    specs: tuple[Refinement, Refinement],
    *,
    engine=None,
) -> tuple[CheckOutcome, CheckOutcome]:
    """Verify a (True-side, False-side) pair against its spec pair."""
    true_outcome = verify_refinement(domains[0], specs[0], engine=engine)
    false_outcome = verify_refinement(domains[1], specs[1], engine=engine)
    return true_outcome, false_outcome
