"""Tests for refinement specs, Figure 4 constructors, and the checker."""

import pytest

from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.ast import BoolLit, var
from repro.lang.secrets import SecretSpec
from repro.refine.checker import (
    VerificationError,
    check_refinement,
    verify_pair,
    verify_refinement,
)
from repro.refine.figure4 import (
    over_indset_spec,
    overapprox_spec,
    under_indset_spec,
    underapprox_spec,
)
from repro.refine.spec import TRUE_PREDICATE, Refinement
from repro.solver.boxes import Box

SPEC = SecretSpec.declare("S", x=(0, 19), y=(0, 19))
QUERY = var("x") + var("y") <= 10


class TestRefinement:
    def test_default_is_trivial(self):
        assert Refinement().trivial

    def test_describe_uses_angle_brackets(self):
        refinement = Refinement(positive=QUERY)
        assert refinement.describe().startswith("<{\\x ->")

    def test_check_fields_accepts_declared(self):
        Refinement(positive=QUERY).check_fields(SPEC)

    def test_check_fields_rejects_undeclared(self):
        with pytest.raises(ValueError, match="undeclared"):
            Refinement(positive=var("z") <= 1).check_fields(SPEC)


class TestFigure4Specs:
    def test_under_indset_positive_only(self):
        true_spec, false_spec = under_indset_spec(QUERY)
        assert true_spec.positive == QUERY
        assert true_spec.negative == TRUE_PREDICATE
        assert false_spec.negative == TRUE_PREDICATE

    def test_over_indset_negative_only(self):
        true_spec, false_spec = over_indset_spec(QUERY)
        assert true_spec.positive == TRUE_PREDICATE
        assert false_spec.positive == TRUE_PREDICATE

    def test_underapprox_strengthens_with_prior(self):
        prior = IntervalDomain(SPEC, Box.make((0, 5), (0, 5)))
        true_spec, _ = underapprox_spec(QUERY, prior)
        assert true_spec.positive != QUERY  # prior constraint added

    def test_overapprox_weakens_with_prior(self):
        prior = IntervalDomain(SPEC, Box.make((0, 5), (0, 5)))
        true_spec, _ = overapprox_spec(QUERY, prior)
        assert true_spec.negative != TRUE_PREDICATE


class TestChecker:
    def test_verifies_correct_under_domain(self):
        domain = IntervalDomain(SPEC, Box.make((0, 5), (0, 5)))
        outcome = verify_refinement(domain, Refinement(positive=QUERY))
        assert outcome.verified
        assert outcome.certificates[0].obligation == "positive"
        assert outcome.total_nodes >= 1

    def test_refutes_incorrect_under_domain(self):
        domain = IntervalDomain(SPEC, Box.make((0, 6), (0, 6)))  # (6,6) violates
        outcome = check_refinement(domain, Refinement(positive=QUERY))
        assert not outcome.verified

    def test_verify_raises_on_failure(self):
        domain = IntervalDomain(SPEC, Box.make((0, 19), (0, 19)))
        with pytest.raises(VerificationError):
            verify_refinement(domain, Refinement(positive=QUERY))

    def test_negative_obligation(self):
        # Everything outside the domain satisfies not-query: take the
        # bounding box of the query region.
        domain = IntervalDomain(SPEC, Box.make((0, 10), (0, 10)))
        spec = Refinement(negative=var("x") + var("y") > 10)
        assert verify_refinement(domain, spec).verified

    def test_trivial_spec_produces_no_certificates(self):
        domain = IntervalDomain.top(SPEC)
        outcome = check_refinement(domain, Refinement())
        assert outcome.certificates == ()
        assert outcome.verified

    def test_bottom_satisfies_any_positive(self):
        outcome = check_refinement(
            IntervalDomain.bottom(SPEC), Refinement(positive=BoolLit(False))
        )
        assert outcome.verified

    def test_top_satisfies_any_negative(self):
        outcome = check_refinement(
            IntervalDomain.top(SPEC), Refinement(negative=BoolLit(False))
        )
        assert outcome.verified

    def test_powerset_verification(self):
        domain = PowersetDomain(
            SPEC, (Box.make((0, 5), (0, 5)), Box.make((0, 10), (0, 0))), ()
        )
        assert verify_refinement(domain, Refinement(positive=QUERY)).verified

    def test_powerset_with_exclusions(self):
        # The cover [0,10]x[0,10] over-approximates the query region; the
        # excluded corner contains only non-query points.
        domain = PowersetDomain(
            SPEC,
            (Box.make((0, 10), (0, 10)),),
            (Box.make((6, 10), (6, 10)),),
        )
        spec = Refinement(negative=var("x") + var("y") > 10)
        assert verify_refinement(domain, spec).verified

    def test_verify_pair(self):
        true_domain = IntervalDomain(SPEC, Box.make((0, 5), (0, 5)))
        false_domain = IntervalDomain(SPEC, Box.make((11, 19), (0, 19)))
        outcomes = verify_pair(
            (true_domain, false_domain), under_indset_spec(QUERY)
        )
        assert outcomes[0].verified and outcomes[1].verified

    def test_certificates_carry_metadata(self):
        domain = IntervalDomain(SPEC, Box.make((0, 5), (0, 5)))
        outcome = check_refinement(domain, Refinement(positive=QUERY))
        cert = outcome.certificates[0]
        assert cert.holds
        assert cert.search_nodes > 0
        assert cert.elapsed >= 0
        assert "x" in cert.formula
