"""A minimal stdlib HTTP edge in front of the serving gateway.

The gateway (:class:`~repro.server.gateway.DeclassificationServer`) is
an asyncio object; real clients speak HTTP.  :class:`HttpEdge` bridges
the two with nothing beyond the standard library: a
:class:`http.server.ThreadingHTTPServer` accepts connections on worker
threads, and every request hops onto the gateway's dedicated event-loop
thread via ``asyncio.run_coroutine_threadsafe`` — the gateway's
single-loop concurrency assumptions (tick batching, in-flight
coalescing) stay intact no matter how many HTTP threads are talking.

The edge holds **zero domain rules**.  It decodes JSON with the codecs
in :mod:`repro.service.serialize` / :mod:`repro.lang.canonical`, passes
the ``Idempotency-Key`` header straight through to the journal layer,
and maps the runtime's typed failures onto transport semantics:

========================================  =====================================
condition                                 response
========================================  =====================================
:class:`ServerDegraded`                   ``503`` + ``Retry-After`` header
:class:`ServerOverloaded` / shard shed    ``503``
:class:`ShardFailure` (typed kinds)       ``502`` + ``exc.to_payload()`` body
``ValueError`` (malformed input)          ``400``
``KeyError`` (unknown name/session)       ``404``
anything else                             ``500``
========================================  =====================================

Every error body is structured — ``{"error": ..., "detail": ...}`` —
so retrying clients never parse prose.

Routes (all JSON)::

    POST   /v1/queries     {name, query, secret, options?}  -> compile receipt
    POST   /v1/sessions    {session_id, secret{spec,value}, user_id?} -> 201
    DELETE /v1/sessions/X                                   -> close summary
    POST   /v1/downgrades  {session_id, query_name}         -> downgrade result
    POST   /v1/epochs      {epochs?}                        -> {"epoch": n}
    GET    /v1/audit                                        -> audit summary
    GET    /v1/healthz      -> {"status", "degraded_fraction", ...}
    GET    /statusz         -> gateway runtime introspection (JSON)
    GET    /metrics         -> Prometheus text exposition (text/plain)

Observability: the edge records ``anosy_edge_requests_total`` and
``anosy_edge_request_seconds`` into the gateway's hub, and an opt-in
structured access log (``access_log=True`` for stderr, or any
``Callable[[str], None]``) emits one JSON line per request — method,
route, status, latency, idempotency key, and the trace id the gateway
bound to that key.

See ``examples/http_edge.py`` for an end-to-end walkthrough and
``docs/OPERATIONS.md`` for the retry discipline journaled deployments
should follow (always send an ``Idempotency-Key``; a retried request is
answered from the journal, never re-charged).
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Coroutine

from repro.lang.canonical import spec_from_json
from repro.monad.protected import ProtectedSecret
from repro.server.gateway import (
    DeclassificationServer,
    ServerDegraded,
    ServerOverloaded,
)
from repro.server.supervise import ShardFailure
from repro.server.workers import ShardOverloaded
from repro.service.api import CompileRequest
from repro.service.serialize import downgrade_result_to_json, options_from_json

__all__ = ["HttpEdge"]


def _require(body: dict[str, Any], name: str) -> Any:
    """A required request field; missing means a 400, never a 404."""
    try:
        return body[name]
    except (KeyError, TypeError):
        raise _EdgeError(
            400, {"error": "bad_request", "detail": f"missing field {name!r}"}
        ) from None


class _EdgeError(Exception):
    """A transport-level refusal with a fixed status and JSON body."""

    def __init__(self, status: int, body: dict[str, Any], headers: dict | None = None):
        super().__init__(body.get("detail", ""))
        self.status = status
        self.body = body
        self.headers = headers or {}


def _to_edge_error(exc: Exception) -> _EdgeError:
    """Map one runtime failure onto transport semantics (see module doc)."""
    if isinstance(exc, ServerDegraded):
        return _EdgeError(
            503,
            {"error": "degraded", "detail": str(exc), "retry_after": exc.retry_after},
            {"Retry-After": str(max(1, int(exc.retry_after + 0.999)))},
        )
    if isinstance(exc, (ServerOverloaded, ShardOverloaded)):
        return _EdgeError(503, {"error": "overloaded", "detail": str(exc)})
    if isinstance(exc, ShardFailure):
        return _EdgeError(502, {"error": "shard_failure", **exc.to_payload()})
    if isinstance(exc, ValueError):
        return _EdgeError(400, {"error": "bad_request", "detail": str(exc)})
    if isinstance(exc, KeyError):
        return _EdgeError(404, {"error": "not_found", "detail": str(exc)})
    return _EdgeError(500, {"error": "internal", "detail": str(exc)})


class HttpEdge:
    """Serve one gateway over HTTP; owns the gateway's event loop.

    The edge starts two kinds of threads: one dedicated loop thread
    running the gateway's asyncio world (ticker included), and the
    threading HTTP server's per-connection workers.  ``port=0`` binds an
    ephemeral port — read :attr:`address` after :meth:`start`.  Use as a
    context manager in tests::

        with HttpEdge(server) as edge:
            host, port = edge.address
            ...

    The edge never touches the gateway's store or journal directly; it
    forwards the ``Idempotency-Key`` header and lets the journal layer
    make duplicate deliveries exactly-once.
    """

    def __init__(
        self,
        server: DeclassificationServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        access_log: bool | Callable[[str], None] = False,
    ):
        self.server = server
        self.timeout = timeout
        if access_log is True:
            self._access_log: Callable[[str], None] | None = (
                lambda line: print(line, file=sys.stderr, flush=True)
            )
        elif access_log:
            self._access_log = access_log
        else:
            self._access_log = None
        self._loop = asyncio.new_event_loop()
        self._loop_thread: threading.Thread | None = None
        self._httpd = ThreadingHTTPServer((host, port), self._handler_class())
        self._httpd.daemon_threads = True
        self._http_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the edge is bound to."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Start the gateway loop thread and the HTTP acceptor thread."""
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="edge-gateway-loop", daemon=True
        )
        self._loop_thread.start()
        self._submit(self.server.start())
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="edge-http", daemon=True
        )
        self._http_thread.start()

    def stop(self) -> None:
        """Stop accepting, flush the gateway, and join both threads."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(self.timeout)
        if self._loop_thread is not None:
            self._submit(self.server.stop())
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(self.timeout)
            self._loop.close()

    def __enter__(self) -> "HttpEdge":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- loop bridging -----------------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _submit(self, coro: Coroutine[Any, Any, Any]) -> Any:
        """Run one coroutine on the gateway loop; block for its result.

        Synchronous gateway entry points are wrapped in coroutines and
        submitted too: every touch of gateway state happens on the loop
        thread, exactly as the gateway's concurrency model assumes.
        """
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(self.timeout)

    def _call(self, fn: Callable[[], Any]) -> Any:
        async def wrapped() -> Any:
            return fn()

        return self._submit(wrapped())

    # -- request handling --------------------------------------------------
    def _handler_class(self) -> type:
        edge = self

        class Handler(BaseHTTPRequestHandler):
            # Tests hammer the edge; per-request stderr lines are noise.
            def log_message(self, *args: Any) -> None:
                pass

            def do_GET(self) -> None:
                edge._dispatch(self, "GET")

            def do_POST(self) -> None:
                edge._dispatch(self, "POST")

            def do_DELETE(self) -> None:
                edge._dispatch(self, "DELETE")

        return Handler

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        started = time.perf_counter()
        try:
            status, body, headers = self._route(handler, method)
        except _EdgeError as exc:
            status, body, headers = exc.status, exc.body, exc.headers
        except Exception as exc:  # noqa: BLE001 - mapped, never propagated
            err = _to_edge_error(exc)
            status, body, headers = err.status, err.body, err.headers
        if isinstance(body, str):
            payload = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            payload = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            handler.send_header(name, value)
        handler.end_headers()
        handler.wfile.write(payload)
        self._observe_request(handler, method, status, time.perf_counter() - started)

    # -- edge observability ------------------------------------------------
    def _observe_request(
        self,
        handler: BaseHTTPRequestHandler,
        method: str,
        status: int,
        elapsed: float,
    ) -> None:
        """Record one finished request: metric series + access-log line.

        Runs on the HTTP worker thread; the hub's registry is
        thread-safe, and the trace lookup only reads the bounded
        key → trace map.
        """
        route = self._route_label(handler.path)
        hub = self.server.hub
        registry = hub.registry
        if registry:
            registry.counter(
                "anosy_edge_requests_total",
                "HTTP requests served by the edge.",
                labels=("method", "route", "status"),
            ).labels(method=method, route=route, status=str(status)).inc()
            registry.histogram(
                "anosy_edge_request_seconds",
                "Edge request latency (route-labeled).",
                labels=("route",),
                channel="timing",
            ).labels(route=route).observe(elapsed)
        if self._access_log is not None:
            key = handler.headers.get("Idempotency-Key")
            self._access_log(
                json.dumps(
                    {
                        "ts": time.time(),
                        "method": method,
                        "route": route,
                        "path": handler.path,
                        "status": status,
                        "ms": round(elapsed * 1000.0, 3),
                        "idempotency_key": key,
                        "trace_id": hub.trace_for_key(key),
                    },
                    sort_keys=True,
                )
            )

    @staticmethod
    def _route_label(path: str) -> str:
        """Collapse a request path to a bounded-cardinality route label."""
        path = path.split("?", 1)[0].rstrip("/")
        if path.startswith("/v1/sessions/"):
            return "/v1/sessions/{id}"
        known = {
            "/v1/healthz",
            "/v1/audit",
            "/v1/queries",
            "/v1/sessions",
            "/v1/downgrades",
            "/v1/epochs",
            "/metrics",
            "/statusz",
        }
        return path if path in known else "other"

    def _healthz_body(self) -> dict[str, Any]:
        """Liveness plus the three signals that mean 'alive but hurting'."""
        server = self.server
        fraction = (
            server.supervisor.open_fraction("serving", server.config.serving_shards)
            if server.serving_pool is not None
            else 0.0
        )
        breakers_open = sum(
            1
            for shards in server.supervisor.describe_breakers().values()
            for info in shards.values()
            if info["state"] == "open"
        )
        pending = 0 if server.journal is None else len(server.journal.pending())
        return {
            "status": "degraded" if fraction > 0.0 else "ok",
            "degraded_fraction": fraction,
            "breakers_open": breakers_open,
            "journal_pending": pending,
        }

    def _route(
        self, handler: BaseHTTPRequestHandler, method: str
    ) -> tuple[int, dict[str, Any] | str, dict[str, str]]:
        path = handler.path.rstrip("/")
        key = handler.headers.get("Idempotency-Key")
        if method == "GET" and path == "/v1/healthz":
            return 200, self._call(self._healthz_body), {}
        if method == "GET" and path == "/metrics":
            return 200, self._call(self.server.metrics_text), {}
        if method == "GET" and path == "/statusz":
            return 200, self._call(self.server.statusz), {}
        if method == "GET" and path == "/v1/audit":
            return 200, self._call(self.server.audit_summary), {}
        if method == "POST" and path == "/v1/queries":
            body = self._read_json(handler)
            request = CompileRequest(
                name=str(_require(body, "name")),
                query=str(_require(body, "query")),
                secret=spec_from_json(_require(body, "secret")),
                options=(
                    None
                    if body.get("options") is None
                    else options_from_json(body["options"])
                ),
            )
            receipt = self._submit(
                self.server.register_query(request, idempotency_key=key)
            )
            return 200, receipt.to_json(), {}
        if method == "POST" and path == "/v1/sessions":
            body = self._read_json(handler)
            sealed = _require(body, "secret")
            secret = ProtectedSecret.seal(
                spec_from_json(_require(sealed, "spec")),
                tuple(_require(sealed, "value")),
            )
            session = self._call(
                lambda: self.server.open_session(
                    str(_require(body, "session_id")),
                    secret,
                    user_id=body.get("user_id"),
                    idempotency_key=key,
                )
            )
            return (
                201,
                {
                    "session_id": session.session_id,
                    "secret": session.spec.name,
                },
                {},
            )
        if method == "DELETE" and path.startswith("/v1/sessions/"):
            session_id = path.rsplit("/", 1)[-1]
            session = self._call(
                lambda: self.server.close_session(session_id, idempotency_key=key)
            )
            return (
                200,
                {
                    "session_id": session_id,
                    "closed": True,
                    "downgrades": None if session is None else len(session.history),
                },
                {},
            )
        if method == "POST" and path == "/v1/downgrades":
            body = self._read_json(handler)
            result = self._submit(
                self.server.downgrade(
                    str(_require(body, "session_id")),
                    str(_require(body, "query_name")),
                    idempotency_key=key,
                )
            )
            return 200, downgrade_result_to_json(result), {}
        if method == "POST" and path == "/v1/epochs":
            body = self._read_json(handler)
            epoch = self._call(
                lambda: self.server.advance_epoch(
                    int(body.get("epochs", 1)), idempotency_key=key
                )
            )
            return 200, {"epoch": epoch}, {}
        raise _EdgeError(
            404, {"error": "not_found", "detail": f"no route {method} {path}"}
        )

    @staticmethod
    def _read_json(handler: BaseHTTPRequestHandler) -> dict[str, Any]:
        length = int(handler.headers.get("Content-Length") or 0)
        raw = handler.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _EdgeError(
                400, {"error": "bad_request", "detail": f"invalid JSON: {exc}"}
            ) from exc
        if not isinstance(body, dict):
            raise _EdgeError(
                400, {"error": "bad_request", "detail": "body must be a JSON object"}
            )
        return body
