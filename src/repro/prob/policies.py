"""Probabilistic declassification policies over beliefs.

The policy language of Mardziel et al. (the paper's [25]) bounds what an
attacker may *believe*: e.g. "the attacker must not learn that the secret
is any specific value with probability above 10%".  These combinators
express such thresshold policies against :class:`ConditionedBelief` and
against ANOSY's set-based knowledge (where a uniform belief over an
under-approximated knowledge of size ``n`` bounds the vulnerability by
``1/n`` — the bridge between the two policy styles).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.lang.ast import BoolExpr
from repro.prob.belief import ConditionedBelief
from repro.monad.policy import QuantitativePolicy

__all__ = [
    "BeliefPolicy",
    "vulnerability_below",
    "probability_below",
    "knowledge_policy_for_vulnerability",
]


@dataclass(frozen=True)
class BeliefPolicy:
    """A named predicate over conditioned beliefs."""

    name: str
    predicate: Callable[[ConditionedBelief], bool]

    def __call__(self, belief: ConditionedBelief) -> bool:
        return self.predicate(belief)


def vulnerability_below(threshold: Fraction) -> BeliefPolicy:
    """The attacker's single-guess success probability stays below ``threshold``."""
    return BeliefPolicy(
        name=f"vulnerability < {threshold}",
        predicate=lambda belief: belief.vulnerability() < threshold,
    )


def probability_below(predicate: BoolExpr, threshold: Fraction, label: str = "") -> BeliefPolicy:
    """P(predicate holds of the secret) stays below ``threshold``.

    The Mardziel et al. policy shape: "the attacker cannot learn that the
    secret satisfies P with probability higher than t".
    """
    return BeliefPolicy(
        name=f"P({label or 'predicate'}) < {threshold}",
        predicate=lambda belief: belief.probability_of(predicate) < threshold,
    )


def knowledge_policy_for_vulnerability(threshold: Fraction) -> QuantitativePolicy:
    """The set-based policy that soundly enforces a vulnerability bound.

    For uniform priors, a belief's vulnerability is ``1/|support|``; a
    knowledge under-approximation ``P ⊆ K`` has ``|P| <= |K|``, so
    requiring ``|P| > 1/threshold`` guarantees ``1/|K| < threshold``.
    This is how ANOSY's quantitative policies (section 2.1's ``qpolicy``)
    realize probabilistic guarantees without tracking distributions.
    """
    minimum_support = int(1 / threshold)
    return QuantitativePolicy(
        name=f"size > {minimum_support} (vulnerability < {threshold})",
        predicate=lambda knowledge: knowledge.size() > minimum_support,
    )
