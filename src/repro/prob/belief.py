"""Attacker beliefs: knowledge equipped with a probability distribution.

The paper's conclusion (section 8) points out that "enforcing
probabilistic policies requires combining knowledge, computed by Anosy,
with a probability distribution [Mardziel et al.]".  This module supplies
that combination for the uniform case, which is exactly the belief model
of the paper's benchmarks (secrets drawn uniformly from their bounds):

* a :class:`ConditionedBelief` is a uniform prior over the secret space
  conditioned on a list of observed query responses;
* conditioning is *symbolic* — the belief stores the observation formulas
  and answers probability queries by exact model counting, so every
  probability is an exact :class:`fractions.Fraction`, not a float
  estimate.

This gives the exact Bayesian semantics that ANOSY's set-based knowledge
approximates; the tests use it as ground truth for the monad layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.lang.ast import BoolExpr, Not
from repro.lang.secrets import SecretSpec, SecretValue
from repro.lang.transform import conjoin, nnf
from repro.solver.boxes import Box
from repro.solver.decide import count_models

__all__ = ["ConditionedBelief"]


@dataclass(frozen=True)
class ConditionedBelief:
    """A uniform belief over ``secret`` conditioned on observations.

    ``observations`` is a tuple of formulas known (by the attacker) to be
    true of the secret — typically ``query`` or ``not query`` for each
    declassified response.
    """

    secret: SecretSpec
    observations: tuple[BoolExpr, ...] = ()

    # -- conditioning ------------------------------------------------------
    def observe(self, query: BoolExpr, response: bool) -> "ConditionedBelief":
        """The posterior belief after observing ``query() == response``."""
        fact = query if response else nnf(Not(query))
        return ConditionedBelief(self.secret, self.observations + (fact,))

    def _evidence(self) -> BoolExpr:
        return conjoin(self.observations)

    # -- exact probability queries -----------------------------------------
    def support_size(self) -> int:
        """Number of secrets consistent with all observations."""
        space = Box(self.secret.bounds())
        return count_models(self._evidence(), space, self.secret.field_names)

    def probability_of(self, predicate: BoolExpr) -> Fraction:
        """Exact posterior probability that ``predicate`` holds."""
        space = Box(self.secret.bounds())
        names = self.secret.field_names
        consistent = self.support_size()
        if consistent == 0:
            raise ValueError("belief conditioned on contradictory observations")
        joint = count_models(
            conjoin((self._evidence(), predicate)), space, names
        )
        return Fraction(joint, consistent)

    def probability_of_secret(self, value: SecretValue) -> Fraction:
        """Exact posterior probability of one concrete secret."""
        checked = self.secret.validate_value(value)
        atoms = [
            var.eq(coordinate)
            for var, coordinate in zip(self.secret.vars(), checked)
        ]
        return self.probability_of(conjoin(atoms))

    def vulnerability(self) -> Fraction:
        """Bayes vulnerability: the best single-guess success probability.

        For a uniform conditioned belief this is ``1 / support_size`` —
        every consistent secret is equally likely.
        """
        size = self.support_size()
        if size == 0:
            raise ValueError("belief conditioned on contradictory observations")
        return Fraction(1, size)

    def is_consistent_with(self, value: SecretValue) -> bool:
        """Whether a concrete secret has non-zero posterior probability."""
        return self.probability_of_secret(value) > 0
