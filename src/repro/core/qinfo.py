"""``QInfo``: a query packaged with its verified posterior functions.

This is the run-time artifact the compile step produces for each
declassification query (paper Figure 2): the executable query plus
``approx`` functions that map any prior knowledge to the pair of
posteriors ``(postT, postF)`` by intersecting with the synthesized ind.
sets — which is why posterior computation is *free* at run time (no static
analysis, no SMT): just box intersections.

Note on Figure 4 of the paper: its ``underapprox`` body intersects the
prior with ``over_indset``; that contradicts both section 2.2 ("we
intersect with the under-approximate ind. set to produce an
under-approximation of the posterior") and the stated refinement type, so
we take it as an erratum and intersect with the matching ind. set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec, SecretValue
from repro.solver.kernels import concrete_predicate
from repro.domains.base import AbstractDomain
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain

__all__ = ["QInfo", "DomainPair", "intersect_knowledge"]

DomainPair = tuple[AbstractDomain, AbstractDomain]


def intersect_knowledge(a: AbstractDomain, b: AbstractDomain) -> AbstractDomain:
    """Intersection that lifts to the powerset domain on mixed operands."""
    if isinstance(a, IntervalDomain) and isinstance(b, IntervalDomain):
        return a.intersect(b)
    pa = a if isinstance(a, PowersetDomain) else PowersetDomain.from_interval(a)
    pb = b if isinstance(b, PowersetDomain) else PowersetDomain.from_interval(b)
    return pa.intersect(pb)


@dataclass(frozen=True)
class QInfo:
    """Query information: the query and its knowledge approximations.

    ``under_indset``/``over_indset`` are the verified (True-side,
    False-side) ind.-set pairs.  ``over_indset`` may be ``None`` when the
    compile step was asked for under-approximations only (the mode the
    paper's policy enforcement uses).
    """

    name: str
    query: BoolExpr
    secret: SecretSpec
    under_indset: DomainPair | None
    over_indset: DomainPair | None

    def run(self, secret_value: SecretValue | Mapping[str, int]) -> bool:
        """Execute the query on a concrete secret.

        Runs on the compiled concrete kernel, pinned on this instance so
        a service answering thousands of ``downgrade`` requests pays the
        lowering (and even the structural cache lookup, which hashes the
        query AST) once, not per request.
        """
        predicate = self.__dict__.get("_predicate")
        if predicate is None:
            predicate = concrete_predicate(self.query, self.secret.field_names)
            object.__setattr__(self, "_predicate", predicate)
        return predicate(self.secret.to_env(secret_value))

    def underapprox(self, prior: AbstractDomain) -> DomainPair:
        """Posterior under-approximations ``(postT, postF)`` for a prior."""
        return self.approx(prior, mode="under")

    def overapprox(self, prior: AbstractDomain) -> DomainPair:
        """Posterior over-approximations ``(postT, postF)`` for a prior."""
        return self.approx(prior, mode="over")

    def approx(self, prior: AbstractDomain, *, mode: str = "under") -> DomainPair:
        """The Figure 2 ``approx`` field: posterior pair for a prior."""
        true_ind, false_ind = self.indset_pair(mode=mode)
        return (
            intersect_knowledge(prior, true_ind),
            intersect_knowledge(prior, false_ind),
        )

    def indset_pair(self, *, mode: str = "under") -> DomainPair:
        """The shared, immutable (True-side, False-side) ind.-set pair.

        This is the compile-time artifact every session's posterior is an
        intersection with — batch serving fetches it once per query and
        reuses it across thousands of priors.
        """
        if mode not in ("under", "over"):
            raise ValueError(f"mode must be 'under' or 'over', got {mode!r}")
        pair = self.under_indset if mode == "under" else self.over_indset
        if pair is None:
            raise ValueError(f"query {self.name!r} compiled without {mode!r} mode")
        return pair

    def approx_batch(
        self, priors: Iterable[AbstractDomain], *, mode: str = "under"
    ) -> list[DomainPair]:
        """Posterior pairs for many priors against one shared ind.-set pair.

        Domains are immutable and hashable, so identical priors (the common
        case for fleets of fresh sessions, which all start at ⊤) are
        intersected once and the resulting pair is shared.
        """
        true_ind, false_ind = self.indset_pair(mode=mode)
        memo: dict[AbstractDomain, DomainPair] = {}
        results: list[DomainPair] = []
        for prior in priors:
            pair = memo.get(prior)
            if pair is None:
                pair = (
                    intersect_knowledge(prior, true_ind),
                    intersect_knowledge(prior, false_ind),
                )
                memo[prior] = pair
            results.append(pair)
        return results

    def as_function(self, *, mode: str = "under") -> Callable[[AbstractDomain], DomainPair]:
        """The posterior computation as a standalone closure."""

        def approx(prior: AbstractDomain) -> DomainPair:
            return self.approx(prior, mode=mode)

        return approx
