"""Ablation experiments (DESIGN.md A1-A3).

Three design decisions called out in DESIGN.md get dedicated evidence:

* **A1 — Pareto-balanced vs lexicographic growth** (section 5.3: the paper
  prefers 20x20 over 400x1 solutions).  We synthesize under-approximations
  with both growth strategies and report the width vectors and sizes.
* **A2 — powerset size k** (section 5.4 / Figure 6's tradeoff).  We sweep
  k and report under-approximation precision vs synthesis time.
* **A3 — solver machinery**: boundary-guided splitting and vectorized
  counting, the two optimizations that make the pure-Python solver viable
  (each can be disabled).

Run as::

    python -m repro.experiments.ablations [--which a1 a2 a3]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.benchsuite.advertising import USER_LOC, nearby_query
from repro.benchsuite.groundtruth import ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS
from repro.core.itersynth import iter_synth_powerset
from repro.core.synth import SynthOptions, synth_interval
from repro.experiments.report import TextTable, fmt_pct, fmt_size
from repro.solver.boxes import Box
from repro.solver.decide import count_models

__all__ = ["run_a1", "run_a2", "run_a3", "main"]


# ---------------------------------------------------------------------------
# A1: growth strategy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GrowthResult:
    """One growth strategy's synthesized box."""

    label: str
    widths: tuple[int, ...]
    size: int
    elapsed: float


def run_a1() -> list[GrowthResult]:
    """Balanced vs lexicographic growth on ``nearby`` and B2.

    The point-seed configurations isolate the growth strategy: starting
    from a single witness, lexicographic growth reproduces the degenerate
    elongated solutions (the paper's 400x1 example) that νZ's Pareto mode
    avoids, while balanced round-robin growth recovers square-ish boxes.
    """
    cases = [
        ("nearby(200,200)", nearby_query((200, 200)), USER_LOC),
        ("B2 Ship", ALL_BENCHMARKS["B2"].query, ALL_BENCHMARKS["B2"].secret),
    ]
    configurations = [
        ("balanced, box seed", SynthOptions(growth="balanced")),
        ("balanced, point seed", SynthOptions(growth="balanced", seed_pops=1)),
        ("lexicographic, point seed", SynthOptions(growth="lexicographic", seed_pops=1)),
    ]
    results = []
    for label, query, secret in cases:
        for config_label, options in configurations:
            start = time.perf_counter()
            outcome = synth_interval(
                query, secret, mode="under", polarity=True, options=options
            )
            elapsed = time.perf_counter() - start
            box = outcome.domain.box
            results.append(
                GrowthResult(
                    label=f"{label} [{config_label}]",
                    widths=box.widths() if box else (),
                    size=outcome.domain.size(),
                    elapsed=elapsed,
                )
            )
    return results


def render_a1(results: list[GrowthResult]) -> str:
    table = TextTable(
        headers=["case", "box widths", "size", "time"],
        rows=[
            [
                r.label,
                "x".join(map(str, r.widths)) or "-",
                fmt_size(r.size),
                f"{r.elapsed:.3f}s",
            ]
            for r in results
        ],
    )
    return table.render()


# ---------------------------------------------------------------------------
# A2: powerset size sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KSweepRow:
    """Precision/time of under-approximation at one powerset size."""

    bench_id: str
    k: int
    true_pct_diff: float
    false_pct_diff: float
    synth_time: float


def run_a2(
    bench_ids: tuple[str, ...] = ("B1", "B3", "B5"),
    ks: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
) -> list[KSweepRow]:
    """Sweep k on the point-wise-comparison benchmarks."""
    rows = []
    for bench_id in bench_ids:
        problem = ALL_BENCHMARKS[bench_id]
        truth = ground_truth(problem)
        for k in ks:
            start = time.perf_counter()
            true_side = iter_synth_powerset(
                problem.query, problem.secret, k=k, mode="under", polarity=True
            )
            false_side = iter_synth_powerset(
                problem.query, problem.secret, k=k, mode="under", polarity=False
            )
            elapsed = time.perf_counter() - start
            t_size = true_side.domain.size()
            f_size = false_side.domain.size()
            rows.append(
                KSweepRow(
                    bench_id=bench_id,
                    k=k,
                    true_pct_diff=(truth.true_size - t_size) / truth.true_size * 100,
                    false_pct_diff=(truth.false_size - f_size)
                    / truth.false_size
                    * 100,
                    synth_time=elapsed,
                )
            )
    return rows


def render_a2(rows: list[KSweepRow]) -> str:
    table = TextTable(
        headers=["#", "k", "% diff (T/F)", "synth time"],
        rows=[
            [
                r.bench_id,
                str(r.k),
                f"{fmt_pct(r.true_pct_diff)} / {fmt_pct(r.false_pct_diff)}",
                f"{r.synth_time:.3f}s",
            ]
            for r in rows
        ],
    )
    return table.render()


# ---------------------------------------------------------------------------
# A3: solver machinery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CounterResult:
    """Counting cost with one solver configuration."""

    bench_id: str
    configuration: str
    count: int
    elapsed: float


def run_a3(bench_ids: tuple[str, ...] = ("B2", "B5")) -> list[CounterResult]:
    """Vectorized vs pure-Python exact counting."""
    results = []
    for bench_id in bench_ids:
        problem = ALL_BENCHMARKS[bench_id]
        space = Box(problem.secret.bounds())
        names = problem.secret.field_names
        for label, threshold in (("vectorized", None), ("pure python", 0)):
            start = time.perf_counter()
            count = count_models(
                problem.query, space, names, vector_threshold=threshold
            )
            elapsed = time.perf_counter() - start
            results.append(CounterResult(bench_id, label, count, elapsed))
    return results


def render_a3(results: list[CounterResult]) -> str:
    table = TextTable(
        headers=["#", "configuration", "count", "time"],
        rows=[
            [r.bench_id, r.configuration, fmt_size(r.count), f"{r.elapsed:.3f}s"]
            for r in results
        ],
    )
    return table.render()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="ANOSY ablations")
    parser.add_argument(
        "--which", nargs="*", default=["a1", "a2", "a3"], choices=["a1", "a2", "a3"]
    )
    args = parser.parse_args(argv)
    if "a1" in args.which:
        print("A1: Pareto-balanced vs lexicographic under-approximation growth")
        print(render_a1(run_a1()))
        print()
    if "a2" in args.which:
        print("A2: powerset size sweep (under-approximation, % diff lower = better)")
        print(render_a2(run_a2()))
        print()
    if "a3" in args.which:
        print("A3: exact counting with and without vectorization")
        print(render_a3(run_a3()))


if __name__ == "__main__":
    main()
