"""Unit tests for the report formatting helpers."""

import pytest

from repro.experiments.report import (
    TextTable,
    ascii_chart,
    fmt_pct,
    fmt_size,
    fmt_timing,
    median_siqr,
)


class TestFormatting:
    def test_small_sizes_plain(self):
        assert fmt_size(259) == "259"
        assert fmt_size(13246) == "13246"

    def test_large_sizes_scientific(self):
        assert fmt_size(1_010_050) == "1.01e+06"
        assert fmt_size(2.43e7) == "2.43e+07"

    def test_pct(self):
        assert fmt_pct(0) == "0"
        assert fmt_pct(27.4) == "27"
        assert fmt_pct(4.04) == "4.0"
        assert fmt_pct(2.0) == "2"


class TestMedianSiqr:
    def test_single_sample(self):
        assert median_siqr([3.0]) == (3.0, 0.0)

    def test_median_of_odd(self):
        med, _ = median_siqr([1.0, 2.0, 100.0])
        assert med == 2.0

    def test_siqr_nonnegative(self):
        _, siqr = median_siqr([1.0, 2.0, 3.0, 4.0])
        assert siqr >= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_siqr([])

    def test_fmt_timing(self):
        text = fmt_timing([1.0, 1.1, 1.2])
        assert "±" in text


class TestTextTable:
    def test_alignment(self):
        table = TextTable(headers=["a", "long"], rows=[["xx", "y"]])
        lines = table.render().splitlines()
        assert len({len(line) for line in lines if line.strip()}) == 1

    def test_contains_all_cells(self):
        table = TextTable(headers=["h1", "h2"], rows=[["v1", "v2"], ["v3", "v4"]])
        text = table.render()
        for cell in ("h1", "h2", "v1", "v2", "v3", "v4"):
            assert cell in text


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_contains_legend_and_axis(self):
        text = ascii_chart({"k=1": [3, 2, 1], "k=3": [3, 3, 2]}, height=5)
        assert "k=1" in text and "k=3" in text
        assert "i-th query" in text

    def test_title(self):
        text = ascii_chart({"s": [1]}, title="Hello")
        assert text.startswith("Hello")
