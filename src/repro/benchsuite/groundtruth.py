"""Exact ind.-set sizes — the ground truth of Table 1.

The *precise* ind. sets of a query partition the secret space into the
secrets answering True and those answering False.  Their sizes are what
Table 1 reports and what the % diff columns of Figure 5 are measured
against.  We compute them exactly with the solver's model counter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec
from repro.benchsuite.mardziel import BenchmarkProblem
from repro.solver.boxes import Box
from repro.solver.decide import count_models

__all__ = ["GroundTruth", "exact_indset_sizes", "ground_truth"]


@dataclass(frozen=True)
class GroundTruth:
    """Exact ind.-set sizes for one query."""

    true_size: int
    false_size: int
    space_size: int
    count_time: float

    def size_for(self, response: bool) -> int:
        """The exact ind.-set size for one query response."""
        return self.true_size if response else self.false_size


def exact_indset_sizes(query: BoolExpr, secret: SecretSpec) -> GroundTruth:
    """Count the exact ind. sets of ``query`` over ``secret``'s space."""
    space = Box(secret.bounds())
    start = time.perf_counter()
    true_size = count_models(query, space, secret.field_names)
    elapsed = time.perf_counter() - start
    total = space.volume()
    return GroundTruth(
        true_size=true_size,
        false_size=total - true_size,
        space_size=total,
        count_time=elapsed,
    )


def ground_truth(problem: BenchmarkProblem) -> GroundTruth:
    """Ground truth for a Table 1 benchmark problem."""
    return exact_indset_sizes(problem.query, problem.secret)
