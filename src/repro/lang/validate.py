"""The section 5.1 query-language validator.

ANOSY rejects queries outside the fragment it can synthesize for: boolean
functions over one secret, built from *linear* integer arithmetic and
boolean connectives, with no recursion.  In this Python rendition queries
are ASTs, so "no recursion" is structural (ASTs are finite trees) and
linearity is enforced by construction (``Scale`` only takes constant
coefficients).  What remains to check:

* the query is boolean-valued (an :class:`~repro.lang.ast.BoolExpr`),
* every free variable is a declared field of the secret type,
* literals and set members are plain machine integers (sanity bound),
* the expression stays within a depth/size budget (guards the solver).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import BoolExpr, Expr, InSet, Lit
from repro.lang.secrets import SecretSpec
from repro.lang.transform import free_vars

__all__ = ["QueryValidationError", "ValidationReport", "validate_query"]

#: Default cap on AST size; queries in the paper's fragment are tiny.
MAX_NODES = 50_000

#: Literal magnitude guard: the solver does exact integer arithmetic, but a
#: query mentioning 10**30 is almost certainly a bug in the caller.
MAX_LITERAL = 10**15


class QueryValidationError(Exception):
    """The query is outside the fragment ANOSY supports (section 5.1)."""


@dataclass(frozen=True)
class ValidationReport:
    """Summary returned by :func:`validate_query` on success."""

    node_count: int
    variables: frozenset[str]
    literal_count: int
    set_atom_count: int


def validate_query(
    query: Expr, secret: SecretSpec, *, max_nodes: int = MAX_NODES
) -> ValidationReport:
    """Check that ``query`` is admissible for ``secret``.

    Returns a :class:`ValidationReport`; raises
    :class:`QueryValidationError` otherwise.
    """
    if not isinstance(query, BoolExpr):
        raise QueryValidationError(
            f"queries must be boolean-valued, got {type(query).__name__}"
        )

    node_count = query.node_count()
    if node_count > max_nodes:
        raise QueryValidationError(
            f"query too large: {node_count} nodes (limit {max_nodes})"
        )

    variables = free_vars(query)
    declared = set(secret.field_names)
    undeclared = variables - declared
    if undeclared:
        raise QueryValidationError(
            f"query mentions fields {sorted(undeclared)} not declared by "
            f"secret type {secret.name!r} (fields: {sorted(declared)})"
        )

    literal_count = 0
    set_atom_count = 0
    for node in _walk(query):
        if isinstance(node, Lit):
            literal_count += 1
            if abs(node.value) > MAX_LITERAL:
                raise QueryValidationError(
                    f"literal {node.value} exceeds the magnitude guard "
                    f"({MAX_LITERAL})"
                )
        elif isinstance(node, InSet):
            set_atom_count += 1
            if not node.values:
                # An empty membership test is just False; permitted, but it
                # is almost always a caller bug, so flag it loudly.
                raise QueryValidationError(
                    "membership test against an empty set (always false)"
                )
            if any(abs(v) > MAX_LITERAL for v in node.values):
                raise QueryValidationError(
                    "set member exceeds the magnitude guard"
                )

    return ValidationReport(
        node_count=node_count,
        variables=variables,
        literal_count=literal_count,
        set_atom_count=set_atom_count,
    )


def _walk(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)
