#!/usr/bin/env python3
"""A birthday-greeting service with probabilistic guarantees (benchmark B1).

A service wants to greet users whose birthday falls in the coming week.
Each check declassifies one bit about (birth day, birth year).  We enforce
a *probabilistic* policy — "the operator's chance of guessing the exact
birthday stays below 1/500" — by bridging it to ANOSY's set-based policy
(prob module), and we audit the exact leakage of each query with the QIF
module.

Run:  python examples/birthday_service.py
"""

from fractions import Fraction

from repro import (
    AnosyT,
    CompileOptions,
    ProtectedSecret,
    QueryRegistry,
    SecureRuntime,
    parse_bool,
)
from repro.benchsuite.mardziel import ALL_BENCHMARKS
from repro.prob import ConditionedBelief, knowledge_policy_for_vulnerability
from repro.qif import query_leakage, shannon_entropy


def main() -> None:
    birthday = ALL_BENCHMARKS["B1"]
    spec = birthday.secret  # bday in [0, 364], byear in [1956, 1992]

    # One "is your birthday in the week starting at day D?" query per month.
    queries = {
        f"week_at_{day}": parse_bool(f"bday >= {day} and bday < {day + 7}")
        for day in range(0, 360, 30)
    }

    registry = QueryRegistry()
    options = CompileOptions(domain="powerset", k=3, modes=("under",))
    for name, query in queries.items():
        registry.compile_and_register(name, query, spec, options)

    # Probabilistic policy, enforced through the set-based bridge.
    # A week-query's True response leaves 259 candidates, so a 1/100 bound
    # is the tightest that still allows any answer at all.
    policy = knowledge_policy_for_vulnerability(Fraction(1, 100))
    print(f"policy: {policy.name}")

    session = AnosyT(SecureRuntime(), policy, registry)
    user = ProtectedSecret.seal(spec, spec.make(bday=263, byear=1984 + 4))
    belief = ConditionedBelief(spec)  # the attacker's exact Bayesian belief

    print(f"\n{'query':<12} {'answer':<7} {'knowledge':>9} {'exact belief':>12} "
          f"{'entropy':>8} {'leak (bits)':>11}")
    for name, query in queries.items():
        decision = session.try_downgrade(user, name)
        if not decision.authorized:
            print(f"{name:<12} REFUSED   ({decision.reason})")
            break
        leakage = query_leakage(query, spec)
        belief = belief.observe(query, decision.response)
        knowledge = session.knowledge_of(user)
        print(
            f"{name:<12} {str(decision.response):<7} {knowledge.size():>9} "
            f"{belief.support_size():>12} {shannon_entropy(knowledge):>8.2f} "
            f"{leakage.shannon_leakage:>11.3f}"
        )

    knowledge = session.knowledge_of(user)
    if knowledge is not None:
        print(
            f"\ntracked knowledge: {knowledge.size()} secrets; "
            f"exact attacker belief: {belief.support_size()} secrets\n"
            f"operator guess probability: {belief.vulnerability()} "
            f"(policy bound: 1/100)"
        )
        assert knowledge.size() <= belief.support_size(), (
            "the under-approximation never claims more uncertainty than reality"
        )


if __name__ == "__main__":
    main()
