"""Deterministic, seeded fault injection for the serving runtime.

The chaos suite needs to drive every failure point in the serving tier
— worker crashes, hung jobs, duplicated deliveries, corrupted payloads,
a busy SQLite file — *reproducibly*.  This module is that switchboard:

* a :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries,
  each naming a *site* (a string like ``"serve"`` or ``"store.write"``),
  a fault *kind*, and how many times it fires.  Firing order is fully
  determined by ``(seed, specs, call sequence)`` — no wall clock, no
  global randomness;
* production code calls the module-level helpers (:func:`maybe_crash`,
  :func:`maybe_delay`, :func:`maybe_db_locked`, :func:`should_duplicate`,
  :func:`maybe_corrupt`) at its fault sites.  With no plan installed
  they are near-free no-ops, so the hooks stay in the shipped code
  paths rather than a test-only fork of them;
* plans cross the process boundary inside job payload JSON
  (:func:`encode_for_payload` / :func:`install_from_payload`), so shard
  worker processes fault exactly where the test asked, even after the
  supervisor replaces the process.

Crash faults come in two modes.  ``process`` mode calls
``os._exit(CRASH_EXIT_CODE)`` — a real abrupt death that the
``ProcessPoolExecutor`` machinery reports as ``BrokenProcessPool``.
``simulate`` mode (used by the ``inline_*`` pools, which execute in the
gateway process) raises :class:`BrokenProcessPool` instead, exercising
the identical recovery path without killing the test runner.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "call_suppressed",
    "clear_fault_plan",
    "encode_for_payload",
    "install_fault_plan",
    "install_from_payload",
    "maybe_corrupt",
    "maybe_crash",
    "maybe_db_locked",
    "maybe_delay",
    "should_duplicate",
]

#: Exit status used by injected ``process``-mode crashes, so a dead
#: worker in a chaos run is distinguishable from a genuine segfault.
CRASH_EXIT_CODE = 13

#: Every fault kind a :class:`FaultSpec` may carry.  The two
#: ``crash_after_journal…``/``crash_after_execute…`` kinds target the
#: write-ahead request journal's crash windows (fired at the gateway's
#: ``"journal"`` site): after the append but before execution, and after
#: execution (ledger folded) but before the acknowledgement — the two
#: states recovery must converge from.
FAULT_KINDS = (
    "crash_before_result",
    "crash_after_commit",
    "delay",
    "duplicate_delivery",
    "corrupt_payload",
    "db_locked",
    "crash_after_journal_before_execute",
    "crash_after_execute_before_ack",
)


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: *kind* at *site*, firing at most *times*.

    ``probability`` < 1 makes each eligible call a seeded coin flip —
    still deterministic for a fixed plan seed and call sequence.
    ``delay`` is only meaningful for ``kind="delay"``.
    """

    site: str
    kind: str
    times: int = 1
    delay: float = 0.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        """Reject unknown kinds early — a typo'd kind would never fire."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def to_json(self) -> dict:
        """Encode as a plain JSON-safe dict."""
        return {
            "site": self.site,
            "kind": self.kind,
            "times": self.times,
            "delay": self.delay,
            "probability": self.probability,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_json`."""
        return cls(
            site=data["site"],
            kind=data["kind"],
            times=int(data.get("times", 1)),
            delay=float(data.get("delay", 0.0)),
            probability=float(data.get("probability", 1.0)),
        )


class FaultPlan:
    """An ordered, seeded schedule of faults with per-spec firing budgets.

    Thread-safe: shard workers are single-threaded, but the gateway's
    inline pools and the store's writer can consult one plan from
    several threads.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = (), seed: int = 0):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._remaining = [spec.times for spec in self.specs]
        self._fired: list[tuple[str, str]] = []
        self._lock = threading.Lock()

    def fingerprint(self) -> str:
        """Stable identity of the *schedule* (not its firing state).

        Workers use this to keep one plan's counters alive across many
        job payloads: a payload carrying the same fingerprint as the
        installed plan must not reset ``times`` budgets already spent.
        """
        return json.dumps(
            {"seed": self.seed, "specs": [spec.to_json() for spec in self.specs]},
            sort_keys=True,
        )

    def take(self, site: str, kind: str) -> FaultSpec | None:
        """Consume one firing of *kind* at *site*, if the plan has one.

        Returns the matched spec (and decrements its budget) or ``None``.
        Specs match in plan order; a probabilistic spec that loses its
        coin flip stays armed for the next call.
        """
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site or spec.kind != kind or self._remaining[index] <= 0:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    return None
                self._remaining[index] -= 1
                self._fired.append((site, kind))
                return spec
        return None

    def fired(self) -> list[tuple[str, str]]:
        """``(site, kind)`` history of every fault this plan has fired."""
        with self._lock:
            return list(self._fired)

    def to_json(self) -> dict:
        """Encode the schedule (firing state intentionally excluded)."""
        return {"seed": self.seed, "specs": [spec.to_json() for spec in self.specs]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls(
            specs=[FaultSpec.from_json(item) for item in data.get("specs", [])],
            seed=int(data.get("seed", 0)),
        )


_LOCK = threading.Lock()
_ACTIVE: FaultPlan | None = None
_SIMULATE = False
#: PID that installed ``_ACTIVE``.  Worker processes are *forked* from
#: the gateway, so they inherit this module's globals; the pid guard
#: makes an inherited plan inert — a worker faults only when its own
#: payload installed the plan, never because the gateway had one.
_INSTALLED_PID: int | None = None


def install_fault_plan(plan: FaultPlan | None, *, simulate: bool = False) -> None:
    """Install *plan* as this process's active fault plan.

    Re-installing a plan with the fingerprint already active keeps the
    existing object — its spent ``times`` budgets persist, which is what
    lets a long-lived worker process fire ``times=1`` exactly once even
    though every job payload re-ships the plan.  A plan inherited across
    ``fork`` does not count as active (see ``_INSTALLED_PID``): the
    first payload install in a fresh worker starts its own counters.
    """
    global _ACTIVE, _SIMULATE, _INSTALLED_PID
    with _LOCK:
        if plan is None:
            _ACTIVE = None
            _INSTALLED_PID = None
        elif (
            _ACTIVE is None
            or _INSTALLED_PID != os.getpid()
            or _ACTIVE.fingerprint() != plan.fingerprint()
        ):
            _ACTIVE = plan
            _INSTALLED_PID = os.getpid()
        _SIMULATE = simulate


def clear_fault_plan() -> None:
    """Remove any active plan (tests call this between cases)."""
    install_fault_plan(None)


def active_fault_plan() -> FaultPlan | None:
    """The plan this process installed, if any (inherited plans are inert)."""
    return _ACTIVE if _INSTALLED_PID == os.getpid() else None


def encode_for_payload(plan: FaultPlan | None, *, simulate: bool) -> dict | None:
    """Payload fragment shipping *plan* across the process boundary."""
    if plan is None:
        return None
    return {"plan": plan.to_json(), "mode": "simulate" if simulate else "process"}


def install_from_payload(data: dict | None) -> None:
    """Install the plan carried by a job payload fragment.

    A payload *without* a fragment leaves any active plan untouched —
    clean payloads (heartbeats, degraded-mode fallbacks executing in the
    gateway process) must not reset an installed plan's fire counters.
    Removing a plan is always explicit: :func:`clear_fault_plan`.
    """
    if data is None:
        return
    install_fault_plan(
        FaultPlan.from_json(data["plan"]),
        simulate=data.get("mode") == "simulate",
    )


_SUPPRESSED = threading.local()


def call_suppressed(fn, *args, **kwargs):
    """Run *fn* with fault injection suppressed on this thread.

    Degraded-path fallbacks execute worker entry points inline in the
    gateway process, where any installed plan is process-global; they
    are defined to be fault-free (the fault already did its damage —
    that is why the fallback is running), so the helpers no-op here
    without disturbing the plan's fire counters.
    """
    _SUPPRESSED.active = True
    try:
        return fn(*args, **kwargs)
    finally:
        _SUPPRESSED.active = False


def _take(site: str, kind: str) -> FaultSpec | None:
    if getattr(_SUPPRESSED, "active", False):
        return None
    plan = active_fault_plan()
    return plan.take(site, kind) if plan is not None else None


def maybe_crash(site: str, kind: str) -> None:
    """Die here if the plan schedules a crash of *kind* at *site*."""
    if _take(site, kind) is None:
        return
    if _SIMULATE:
        raise BrokenProcessPool(f"injected {kind} at {site}")
    os._exit(CRASH_EXIT_CODE)


def maybe_delay(site: str) -> None:
    """Sleep for the scheduled delay at *site*, if one is armed."""
    spec = _take(site, "delay")
    if spec is not None and spec.delay > 0:
        time.sleep(spec.delay)


def maybe_db_locked(site: str) -> None:
    """Raise SQLite's busy error at *site*, if scheduled."""
    if _take(site, "db_locked") is not None:
        raise sqlite3.OperationalError("database is locked")


def should_duplicate(site: str) -> bool:
    """True when the plan schedules a duplicate delivery at *site*."""
    return _take(site, "duplicate_delivery") is not None


def maybe_corrupt(site: str, payload: str) -> str:
    """Mangle *payload* (a JSON string) if corruption is scheduled.

    The corruption is structural — truncation plus a marker — so every
    decoder sees it, rather than a subtle field flip only some do.
    """
    if _take(site, "corrupt_payload") is None:
        return payload
    return payload[: max(1, len(payload) // 2)] + "\x00corrupt"
