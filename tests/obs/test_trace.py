"""The replay-stable tracer: derived ids, canonical trees, digests."""

import json

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    span_id_for,
    trace_id_for,
)


def test_ids_are_deterministic_digests():
    assert trace_id_for("key", 7) == trace_id_for("key", 7)
    assert trace_id_for("key", 7) != trace_id_for("key", 8)
    assert trace_id_for("key", 7) != trace_id_for("other", 7)
    assert len(trace_id_for("key", 7)) == 32
    tid = trace_id_for("key", 7)
    assert span_id_for(tid, None, "downgrade", 0) == span_id_for(
        tid, None, "downgrade", 0
    )
    assert span_id_for(tid, None, "downgrade", 0) != span_id_for(
        tid, None, "downgrade", 1
    )
    assert len(span_id_for(tid, None, "downgrade", 0)) == 16


def test_repeated_names_get_per_parent_indices():
    tracer = Tracer()
    tid = trace_id_for("k", 1)
    first = tracer.record(tid, "retry")
    second = tracer.record(tid, "retry")
    assert first.span_id != second.span_id
    assert second.span_id == span_id_for(tid, None, "retry", 1)


def test_canonical_tree_excludes_transport_and_elapsed():
    tracer = Tracer()
    tid = trace_id_for("k", 1)
    root = tracer.record(tid, "downgrade", session="s1", elapsed=1.25)
    tracer.record(tid, "serve", parent_id=root.span_id, authorized=True)
    tracer.record(
        tid, "shard_roundtrip", parent_id=root.span_id, transport=True
    )
    tree = tracer.tree(tid)
    assert tree == {
        "name": "downgrade",
        "attrs": {"session": "s1"},
        "children": [
            {"name": "serve", "attrs": {"authorized": True}, "children": []}
        ],
    }
    # Transport spans still exist on the raw timeline.
    assert [s.name for s in tracer.spans(tid)] == [
        "downgrade",
        "serve",
        "shard_roundtrip",
    ]
    assert "elapsed" not in json.dumps(tree)


def test_child_order_is_canonical_not_arrival_order():
    def build(order: list[tuple[str, dict]]) -> Tracer:
        tracer = Tracer()
        tid = trace_id_for("k", 1)
        root = tracer.record(tid, "downgrade")
        for name, attrs in order:
            tracer.record(tid, name, parent_id=root.span_id, **attrs)
        return tracer

    forward = build([("admission", {"allowed": True}), ("serve", {})])
    reverse = build([("serve", {}), ("admission", {"allowed": True})])
    tid = trace_id_for("k", 1)
    assert forward.tree(tid) == reverse.tree(tid)
    assert forward.digest() == reverse.digest()


def test_absorb_round_trips_piggybacked_spans():
    source = Tracer()
    tid = trace_id_for("k", 1)
    root = source.record(tid, "downgrade", session="s1")
    source.record(tid, "serve", parent_id=root.span_id, authorized=False)

    target = Tracer()
    target.absorb(span.to_json() for span in source.spans(tid))
    assert target.tree(tid) == source.tree(tid)
    assert target.digest() == source.digest()
    decoded = Span.from_json(root.to_json())
    assert decoded == root


def test_capacity_evicts_oldest_trace():
    tracer = Tracer(capacity=2)
    ids = [trace_id_for("k", seq) for seq in range(3)]
    for tid in ids:
        tracer.record(tid, "downgrade")
    assert tracer.trace_ids() == ids[1:]
    assert tracer.tree(ids[0]) is None
    assert set(tracer.trees()) == set(ids[1:])


def test_digest_covers_trace_id_set_and_tree_bytes():
    one, two = Tracer(), Tracer()
    for tracer in (one, two):
        tracer.record(trace_id_for("k", 1), "downgrade", session="s1")
    assert one.digest() == two.digest()
    two.record(trace_id_for("k", 2), "downgrade", session="s2")
    assert one.digest() != two.digest()


def test_null_tracer_is_falsy_with_stable_digest():
    assert not NULL_TRACER and Tracer()
    assert NULL_TRACER.record(trace_id_for("k", 1), "x") is None
    assert NULL_TRACER.trace_ids() == [] and NULL_TRACER.trees() == {}
    assert NULL_TRACER.digest() == NullTracer().digest()
    # An empty real tracer digests to the same seed value: "no traces"
    # is one well-defined state, observed or not.
    assert Tracer().digest() == NULL_TRACER.digest()
