"""Replay-stable request tracing for the serving runtime.

A trace reconstructs one downgrade's path through the stack — gateway
admission, shard serve, mirror-ledger fold — as a tree of named spans.
What makes this tracer unusual is the replay contract it inherits from
the journal (:mod:`repro.server.journal`):

* **identities are derived, never drawn.**  A trace id is a digest of
  the request's idempotency key and journal sequence number
  (:func:`trace_id_for`); a span id is a digest of its trace, parent,
  name, and per-parent occurrence index (:func:`span_id_for`).  No wall
  clock, no randomness — so re-executing a journal
  (:class:`~repro.server.replay.ReplaySession`) reproduces the same
  ids.
* **the canonical tree excludes transport.**  Spans carry a
  ``transport`` flag: gateway↔shard submission and the per-tick mirror
  fold are real timeline events worth showing an operator, but a
  replayed journal is served inline (no shards), so transport spans
  cannot be part of the bit-identity contract.  :meth:`Tracer.tree`
  returns only decision spans — name, attributes, children — and
  :meth:`Tracer.digest` chains their canonical JSON, which is the value
  replay compares.  Durations (``elapsed``) are wall-clock and likewise
  excluded from the canonical form.
* **attributes are decision-channel.**  Span attributes may carry only
  secret-independent facts (session id, query name, the pair-checked
  admission/authorization verdicts and refusal ``kind``) — never
  responses or knowledge sizes.  The secret-independence net in
  tests/obs/test_secret_independence.py holds trace trees to the same
  bit-identity standard as ``decision``-channel metrics.

Spans cross the gateway→shard process boundary inside the existing JSON
job payloads (a ``traces`` fragment on ``downgrade_batch`` ops) and ride
home encoded by :meth:`Span.to_json` in the batch response's ``obs``
piggyback, where the gateway's tracer :meth:`~Tracer.absorb` s them.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "span_id_for",
    "trace_id_for",
]

_TRACE_SEED = "anosy-trace-v1"


def trace_id_for(key: str, seq: int) -> str:
    """The deterministic trace id of one journaled request.

    ``key`` is the request's idempotency key (client-provided or the
    journal's ``auto/...`` key); ``seq`` its journal sequence number.
    Unjournaled servers pass a local monotone counter as ``seq`` with a
    synthetic key — still deterministic within a run, though only
    journaled histories carry the cross-restart replay guarantee.
    """
    raw = f"{_TRACE_SEED}|{key}|{seq}".encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:32]


def span_id_for(trace_id: str, parent_id: str | None, name: str, index: int) -> str:
    """The deterministic id of the ``index``-th ``name`` span under a parent."""
    raw = f"{_TRACE_SEED}|{trace_id}|{parent_id or ''}|{name}|{index}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Span:
    """One finished span.  Identity fields are deterministic; ``elapsed``
    is wall-clock and excluded from the canonical tree."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    attrs: Mapping[str, Any] = field(default_factory=dict)
    transport: bool = False
    elapsed: float = 0.0

    def to_json(self) -> dict[str, Any]:
        """Encode for the shard→gateway piggyback."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "transport": self.transport,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Span":
        """Decode a span encoded by :meth:`to_json`."""
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            transport=bool(data.get("transport", False)),
            elapsed=float(data.get("elapsed", 0.0)),
        )


class Tracer:
    """Collects finished spans per trace; bounded, thread-safe.

    ``capacity`` bounds the number of *traces* retained (oldest evicted
    first) so a long-lived gateway cannot grow without bound; the replay
    and secret-independence suites size it to cover their whole runs.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: dict[str, list[Span]] = {}
        self._indices: dict[tuple[str, str | None, str], int] = {}

    def __bool__(self) -> bool:
        return True

    # -- recording ---------------------------------------------------------
    def record(
        self,
        trace_id: str,
        name: str,
        *,
        parent_id: str | None = None,
        transport: bool = False,
        elapsed: float = 0.0,
        **attrs: Any,
    ) -> Span:
        """Finish one span now; returns it (its id names it as a parent)."""
        with self._lock:
            index_key = (trace_id, parent_id, name)
            index = self._indices.get(index_key, 0)
            self._indices[index_key] = index + 1
            span = Span(
                trace_id=trace_id,
                span_id=span_id_for(trace_id, parent_id, name, index),
                parent_id=parent_id,
                name=name,
                attrs=attrs,
                transport=transport,
                elapsed=elapsed,
            )
            self._store(span)
            return span

    def absorb(self, spans: Iterable[Mapping[str, Any]]) -> None:
        """Fold piggybacked shard spans (already carrying their ids)."""
        with self._lock:
            for data in spans:
                self._store(Span.from_json(data))

    def _store(self, span: Span) -> None:
        bucket = self._spans.get(span.trace_id)
        if bucket is None:
            if len(self._spans) >= self.capacity:
                oldest = next(iter(self._spans))
                del self._spans[oldest]
                self._indices = {
                    key: value
                    for key, value in self._indices.items()
                    if key[0] != oldest
                }
            bucket = self._spans[span.trace_id] = []
        bucket.append(span)

    # -- reading -----------------------------------------------------------
    def trace_ids(self) -> list[str]:
        """Retained trace ids, oldest first."""
        with self._lock:
            return list(self._spans)

    def spans(self, trace_id: str) -> list[Span]:
        """All spans of one trace, in arrival order (transport included)."""
        with self._lock:
            return list(self._spans.get(trace_id, ()))

    def tree(self, trace_id: str) -> dict[str, Any] | None:
        """The canonical decision tree of one trace (see module doc).

        ``{"name", "attrs", "children"}`` with children sorted by
        ``(name, span_id)`` — a pure function of the decision spans, so
        byte-identical across a run and its replay.  Returns ``None``
        for unknown traces; multiple roots collapse under a synthetic
        ``"trace"`` node (should not happen in practice).
        """
        with self._lock:
            spans = list(self._spans.get(trace_id, ()))
        decision = [span for span in spans if not span.transport]
        if not decision:
            return None
        by_parent: dict[str | None, list[Span]] = {}
        ids = {span.span_id for span in decision}
        for span in decision:
            parent = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(parent, []).append(span)

        def build(span: Span) -> dict[str, Any]:
            children = sorted(
                by_parent.get(span.span_id, ()),
                key=lambda child: (child.name, child.span_id),
            )
            return {
                "name": span.name,
                "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
                "children": [build(child) for child in children],
            }

        roots = sorted(
            by_parent.get(None, ()), key=lambda span: (span.name, span.span_id)
        )
        if len(roots) == 1:
            return build(roots[0])
        return {
            "name": "trace",
            "attrs": {},
            "children": [build(root) for root in roots],
        }

    def trees(self) -> dict[str, dict[str, Any]]:
        """Canonical trees of every retained trace, keyed by trace id."""
        return {
            trace_id: tree
            for trace_id in self.trace_ids()
            if (tree := self.tree(trace_id)) is not None
        }

    def canonical(self, trace_id: str) -> str | None:
        """The canonical JSON bytes of one trace tree."""
        tree = self.tree(trace_id)
        if tree is None:
            return None
        return json.dumps(tree, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """One digest over every retained trace tree, in trace-id order.

        The unit the replay conformance check compares: equal digests
        mean byte-identical canonical trees for byte-identical trace-id
        sets.
        """
        hasher = hashlib.sha256(_TRACE_SEED.encode("utf-8"))
        for trace_id in sorted(self.trace_ids()):
            canonical = self.canonical(trace_id)
            if canonical is None:
                continue
            hasher.update(trace_id.encode("utf-8"))
            hasher.update(b"|")
            hasher.update(canonical.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()


class NullTracer:
    """The no-op tracer (falsy, like the null registry)."""

    def __bool__(self) -> bool:
        return False

    def record(self, trace_id: str, name: str, **kwargs: Any) -> None:
        """Drop the span."""
        return None

    def absorb(self, spans: Iterable[Mapping[str, Any]]) -> None:
        """Drop the spans."""

    def trace_ids(self) -> list[str]:
        """Always empty."""
        return []

    def spans(self, trace_id: str) -> list:
        """Always empty."""
        return []

    def tree(self, trace_id: str) -> None:
        """Always ``None``."""
        return None

    def trees(self) -> dict:
        """Always empty."""
        return {}

    def canonical(self, trace_id: str) -> None:
        """Always ``None``."""
        return None

    def digest(self) -> str:
        """The empty-tracer digest (equal across all null tracers)."""
        return hashlib.sha256(_TRACE_SEED.encode("utf-8")).hexdigest()


#: The shared no-op tracer.
NULL_TRACER = NullTracer()
