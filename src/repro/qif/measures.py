"""Quantitative information-flow measures derived from knowledge.

Section 8 of the paper: "approximations of classical quantitative
information flow measures, such as Shannon entropy, can be derived from
the [attacker's] knowledge, i.e., by counting the number of concrete
elements represented by the knowledge."  This module does exactly that,
exactly:

* posterior measures of a knowledge set of size ``n`` under the uniform
  belief — Shannon entropy ``log2 n``, min-entropy ``log2 n`` (they agree
  for uniform distributions), Bayes vulnerability ``1/n``, and guessing
  entropy ``(n+1)/2``;
* *channel* measures of a whole query — the expected leakage over both
  responses, computed from the exact ind.-set counts:
  ``I(Q) = H(prior) − Σ_r P(r) · H(posterior_r)``, which for boolean
  queries is the binary entropy of the True-response probability.

Counts come from the exact solver, so all measures are exact (floats only
through ``math.log2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec
from repro.lang.transform import conjoin
from repro.domains.base import AbstractDomain
from repro.solver.boxes import Box
from repro.solver.decide import count_models

__all__ = [
    "shannon_entropy",
    "min_entropy",
    "bayes_vulnerability",
    "guessing_entropy",
    "QueryLeakage",
    "query_leakage",
]


def _positive_size(size: int) -> int:
    if size <= 0:
        raise ValueError("measures are undefined for empty knowledge")
    return size


def shannon_entropy(knowledge: AbstractDomain) -> float:
    """Shannon entropy (bits) of the uniform belief over ``knowledge``."""
    return math.log2(_positive_size(knowledge.size()))


def min_entropy(knowledge: AbstractDomain) -> float:
    """Min-entropy (bits); equals Shannon entropy for uniform beliefs."""
    return math.log2(_positive_size(knowledge.size()))


def bayes_vulnerability(knowledge: AbstractDomain) -> Fraction:
    """Probability of guessing the secret in one try (Smith 2009)."""
    return Fraction(1, _positive_size(knowledge.size()))


def guessing_entropy(knowledge: AbstractDomain) -> Fraction:
    """Expected number of guesses to find the secret (Massey 1994)."""
    size = _positive_size(knowledge.size())
    return Fraction(size + 1, 2)


@dataclass(frozen=True)
class QueryLeakage:
    """Exact information-theoretic profile of one boolean query."""

    prior_size: int
    true_size: int
    false_size: int

    @property
    def probability_true(self) -> Fraction:
        """Probability (under the uniform prior) of the True response."""
        return Fraction(self.true_size, self.prior_size)

    @property
    def shannon_leakage(self) -> float:
        """Expected Shannon-entropy reduction: the binary entropy H(p)."""
        p = self.probability_true
        if p in (0, 1):
            return 0.0
        p = float(p)
        return -(p * math.log2(p) + (1 - p) * math.log2(1 - p))

    @property
    def worst_case_posterior_size(self) -> int:
        """Size of the smaller (more revealing) posterior."""
        return min(
            s for s in (self.true_size, self.false_size) if s > 0
        )

    @property
    def min_entropy_leakage(self) -> float:
        """Worst-case min-entropy leakage over the two responses."""
        return math.log2(self.prior_size) - math.log2(
            self.worst_case_posterior_size
        )


def query_leakage(
    query: BoolExpr,
    secret: SecretSpec,
    prior: AbstractDomain | None = None,
) -> QueryLeakage:
    """Exact leakage profile of ``query`` against a prior knowledge.

    With ``prior=None`` the prior is the full secret space (the ⊤
    knowledge the paper's experiments start from).
    """
    space = Box(secret.bounds())
    names = secret.field_names
    if prior is None:
        prior_size = space.volume()
        true_size = count_models(query, space, names)
    else:
        member = prior.member_formula()
        prior_size = prior.size()
        true_size = count_models(conjoin((member, query)), space, names)
    if prior_size == 0:
        raise ValueError("leakage is undefined for an empty prior")
    return QueryLeakage(
        prior_size=prior_size,
        true_size=true_size,
        false_size=prior_size - true_size,
    )
