"""Bounded downgrade on an IFC substrate.

``AnosyT`` (paper section 3) staged on a mini-LIO secure runtime, with
quantitative policies and labeled/protected values.
"""

from repro.monad.dynamic import DynamicAnosy, PolicySwitch
from repro.monad.anosy import (
    AnosyT,
    DowngradeDecision,
    DowngradeRecord,
    PolicyViolation,
    UnknownQuery,
)
from repro.monad.labels import PUBLIC, SECRET, Label, Level, ReaderSet, level_chain
from repro.monad.policy import (
    QuantitativePolicy,
    all_of,
    any_of,
    check_monotone_on,
    size_above,
    size_at_least,
)
from repro.monad.protected import ProtectedSecret, Unprotectable
from repro.monad.secure import IFCViolation, Labeled, SecureRuntime

__all__ = [
    "DynamicAnosy",
    "PolicySwitch",
    "AnosyT",
    "DowngradeDecision",
    "DowngradeRecord",
    "PolicyViolation",
    "UnknownQuery",
    "PUBLIC",
    "SECRET",
    "Label",
    "Level",
    "ReaderSet",
    "level_chain",
    "QuantitativePolicy",
    "all_of",
    "any_of",
    "check_monotone_on",
    "size_above",
    "size_at_least",
    "ProtectedSecret",
    "Unprotectable",
    "IFCViolation",
    "Labeled",
    "SecureRuntime",
]
