"""PrivacyBudgetLedger property tests.

The two acceptance invariants, driven by Hypothesis over random secrets,
random threshold-query workloads, and random floors:

1. a **refused** charge never changes any of the user's bounds;
2. after any **accepted** sequence, the sound bound still satisfies the
   floor (and a rogue ``commit`` that would cross it raises *without*
   mutating).

Queries are built directly as :class:`~repro.core.qinfo.QInfo` values
with exact ind.-set pairs (no synthesis), so hundreds of ledger
histories run in milliseconds.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.qinfo import QInfo
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.monad.protected import ProtectedSecret
from repro.server.ledger import (
    DecayPolicy,
    LedgerFormatError,
    LedgerInvariantError,
    PrivacyBudgetLedger,
)
from repro.server.store import SQLiteStore
from repro.solver.boxes import Box

SPEC = SecretSpec.declare("Grid", x=(0, 15), y=(0, 15))


def threshold_qinfo(axis: str, threshold: int) -> QInfo:
    """An exact compiled artifact for ``axis <= threshold``."""
    if axis == "x":
        true_box = Box(((0, threshold), (0, 15)))
        false_box = Box(((threshold + 1, 15), (0, 15)))
    else:
        true_box = Box(((0, 15), (0, threshold)))
        false_box = Box(((0, 15), (threshold + 1, 15)))
    pair = (IntervalDomain(SPEC, true_box), IntervalDomain(SPEC, false_box))
    return QInfo(
        name=f"{axis}<={threshold}",
        query=parse_bool(f"{axis} <= {threshold}"),
        secret=SPEC,
        under_indset=pair,
        over_indset=pair,
    )


def snapshot(ledger: PrivacyBudgetLedger, user: str):
    account = ledger.account(user)
    return (
        dict(account.sound),
        dict(account.complete),
        list(account.charges),
    )


queries = st.lists(
    st.tuples(st.sampled_from(["x", "y"]), st.integers(min_value=0, max_value=14)),
    min_size=1,
    max_size=8,
)
secrets = st.tuples(
    st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15)
)
floors = st.integers(min_value=0, max_value=200)


@settings(max_examples=150, deadline=None)
@given(workload=queries, secret=secrets, floor=floors)
def test_refusal_never_updates_and_acceptance_never_crosses(
    workload, secret, floor
):
    ledger = PrivacyBudgetLedger(size_above(floor))
    protected = ProtectedSecret.seal(SPEC, secret)
    for axis, threshold in workload:
        qinfo = threshold_qinfo(axis, threshold)
        before = snapshot(ledger, "u")
        refusals_before = ledger.account("u").refusals
        decision = ledger.evaluate("u", qinfo, protected)
        account = ledger.account("u")
        if not decision.authorized:
            # Invariant 1: a refusal is bound-invisible.
            assert snapshot(ledger, "u") == before
            assert account.refusals == refusals_before + 1
            assert decision.response is None
        else:
            # Invariant 2: the sound bound still clears the floor, and the
            # charge trail reflects exactly this fold.
            bound = account.sound[SPEC.name]
            assert bound.size() > floor
            assert account.charges[-1].posterior_size == bound.size()
            assert account.charges[-1].response == decision.response
            # The bound is sound: it always contains the true secret.
            assert bound.contains(secret)
    # Monotone shrinkage: each accepted charge never grew the bound.
    sizes = [charge.posterior_size for charge in ledger.account("u").charges]
    priors = [charge.prior_size for charge in ledger.account("u").charges]
    assert all(post <= prior for post, prior in zip(sizes, priors))


@settings(max_examples=100, deadline=None)
@given(workload=queries, secret=secrets, floor=floors)
def test_preauthorize_never_mutates(workload, secret, floor):
    ledger = PrivacyBudgetLedger(size_above(floor))
    for axis, threshold in workload:
        qinfo = threshold_qinfo(axis, threshold)
        before = snapshot(ledger, "u")
        decision = ledger.preauthorize("u", qinfo)
        assert snapshot(ledger, "u") == before
        assert decision.remaining == ledger.remaining("u", SPEC)


@settings(max_examples=100, deadline=None)
@given(
    workload=queries,
    secret=secrets,
    floor=st.integers(min_value=8, max_value=200),
)
def test_rogue_commit_cannot_cross_the_floor(workload, secret, floor):
    """Even a caller that skips preauthorize cannot push a bound below
    the floor: the offending commit raises and mutates nothing."""
    ledger = PrivacyBudgetLedger(size_above(floor))
    protected = ProtectedSecret.seal(SPEC, secret)
    for axis, threshold in workload:
        qinfo = threshold_qinfo(axis, threshold)
        response = qinfo.run(protected.unprotect_tcb())
        before = snapshot(ledger, "u")
        try:
            ledger.commit("u", qinfo, response)
        except LedgerInvariantError:
            assert snapshot(ledger, "u") == before
        else:
            assert ledger.account("u").sound[SPEC.name].size() > floor


def test_accounts_are_per_user_and_per_spec():
    ledger = PrivacyBudgetLedger(size_above(4))
    qinfo = threshold_qinfo("x", 7)
    ledger.commit("alice", qinfo, True)
    assert ledger.remaining("alice", SPEC) == 8 * 16
    assert ledger.remaining("bob", SPEC) == SPEC.space_size()
    other = SecretSpec.declare("Other", z=(0, 9))
    assert ledger.remaining("alice", other) == other.space_size()
    assert ledger.users() == ["alice", "bob"]


def test_budget_survives_reconnect_scenario():
    """The cross-session scenario sessions cannot express: two sessions,
    one user, one budget."""
    ledger = PrivacyBudgetLedger(size_above(60))
    protected = ProtectedSecret.seal(SPEC, (3, 12))
    # Session 1 asks x<=7 (accepted: both posteriors are 128 > 60).
    assert ledger.evaluate("u", threshold_qinfo("x", 7), protected).authorized
    # Reconnect.  A fresh session's knowledge would reset to ⊤; the
    # ledger's does not: y<=7 still fits (64 > 60)...
    assert ledger.evaluate("u", threshold_qinfo("y", 7), protected).authorized
    # ...but a third halving would land at 32 <= 60 on both sides: refused,
    # even though a session-scoped tracker would have allowed it from ⊤.
    decision = ledger.evaluate("u", threshold_qinfo("x", 3), protected)
    assert not decision.authorized
    assert ledger.remaining("u", SPEC) == 64


def test_charge_records_are_frozen():
    record = PrivacyBudgetLedger(size_above(0))
    record.commit("u", threshold_qinfo("x", 7), True)
    charge = record.account("u").charges[-1]
    with pytest.raises(dataclasses.FrozenInstanceError):
        charge.response = False


# ---------------------------------------------------------------------------
# Durability: bounds survive a ledger restart through a LedgerBackend
# ---------------------------------------------------------------------------

ALL_POINTS = [(x, y) for x in range(16) for y in range(16)]


@settings(max_examples=60, deadline=None)
@given(workload=queries, secret=secrets, floor=floors)
def test_bounds_survive_a_backend_restart(workload, secret, floor):
    """A ledger reloaded from its backend is decision-identical: same
    remaining budget, same bounds, same preauthorize verdicts."""
    with SQLiteStore(":memory:") as store:
        ledger = PrivacyBudgetLedger(size_above(floor), store=store)
        protected = ProtectedSecret.seal(SPEC, secret)
        for axis, threshold in workload:
            ledger.evaluate("u", threshold_qinfo(axis, threshold), protected)
        reborn = PrivacyBudgetLedger(size_above(floor), store=store)
        assert reborn.remaining("u", SPEC) == ledger.remaining("u", SPEC)
        for axis, threshold in workload:
            qinfo = threshold_qinfo(axis, threshold)
            assert (
                reborn.preauthorize("u", qinfo).allowed
                == ledger.preauthorize("u", qinfo).allowed
            )
        old = ledger.account("u").sound.get(SPEC.name)
        new = reborn.account("u").sound.get(SPEC.name)
        if old is None:
            assert new is None
        else:
            assert all(
                old.contains(p) == new.contains(p) for p in ALL_POINTS
            )


def test_apply_payload_rejects_foreign_format_versions():
    ledger = PrivacyBudgetLedger(size_above(0))
    ledger.commit("u", threshold_qinfo("x", 7), True)
    payload = ledger.export_bound("u", SPEC)
    bad = dict(payload, version=999)
    with pytest.raises(LedgerFormatError, match="999"):
        ledger.apply_payload("u", SPEC.name, bad)
    with SQLiteStore(":memory:") as store:
        store.put_ledger_bound("u", SPEC.name, bad)
        with pytest.raises(LedgerFormatError):
            PrivacyBudgetLedger(size_above(0), store=store)


# ---------------------------------------------------------------------------
# Decay: epoch dilation never tightens a bound
# ---------------------------------------------------------------------------

boxes = st.builds(
    lambda x0, xw, y0, yw: Box(
        ((x0, min(15, x0 + xw)), (y0, min(15, y0 + yw)))
    ),
    st.integers(0, 15),
    st.integers(0, 15),
    st.integers(0, 15),
    st.integers(0, 15),
)


@settings(max_examples=100, deadline=None)
@given(
    workload=queries,
    secret=secrets,
    floor=floors,
    radius=st.integers(min_value=0, max_value=4),
    epochs=st.integers(min_value=1, max_value=3),
)
def test_decay_is_never_tighter(workload, secret, floor, radius, epochs):
    """The soundness property of epoch decay: every point a bound
    contained before ``advance_epoch`` it still contains after — decayed
    bounds remain sound over-approximations of retained knowledge."""
    ledger = PrivacyBudgetLedger(
        size_above(floor), decay=DecayPolicy(radius=radius)
    )
    protected = ProtectedSecret.seal(SPEC, secret)
    for axis, threshold in workload:
        ledger.evaluate("u", threshold_qinfo(axis, threshold), protected)
    account = ledger.account("u")
    before = {
        key: [p for p in ALL_POINTS if bound.contains(p)]
        for key, bound in {
            ("sound", name): b for name, b in account.sound.items()
        }.items()
    }
    before.update(
        {
            ("complete", name): [
                p for p in ALL_POINTS if bound.contains(p)
            ]
            for name, bound in account.complete.items()
        }
    )
    assert ledger.advance_epoch(epochs) == epochs
    for (kind, name), points in before.items():
        bounds = account.sound if kind == "sound" else account.complete
        after = bounds[name]
        assert all(after.contains(p) for p in points)
        assert after.size() >= len(points)
        # The true secret never leaves a sound bound.
        if kind == "sound":
            assert after.contains(secret)


@settings(max_examples=80, deadline=None)
@given(
    include=st.lists(boxes, min_size=1, max_size=3),
    exclude=st.lists(boxes, min_size=0, max_size=3),
    radius=st.integers(min_value=0, max_value=4),
)
def test_dilate_powerset_is_never_tighter(include, exclude, radius):
    """Dilation on the powerset domain (grown includes, shrunk/dropped
    excludes) also only ever grows the represented set."""
    bound = PowersetDomain(SPEC, tuple(include), tuple(exclude))
    dilated = DecayPolicy(radius=radius).dilate(bound)
    for point in ALL_POINTS:
        if bound.contains(point):
            assert dilated.contains(point)


def test_decay_restores_refused_budget():
    """A user parked at the floor regains budget as epochs pass: the
    operational purpose of decay."""
    ledger = PrivacyBudgetLedger(size_above(100), decay=DecayPolicy(radius=2))
    protected = ProtectedSecret.seal(SPEC, (3, 3))
    assert ledger.evaluate("u", threshold_qinfo("x", 7), protected).authorized
    # x<=7 again: the false posterior is now empty, so check-both refuses.
    refused = threshold_qinfo("x", 6)
    assert not ledger.evaluate("u", refused, protected).authorized
    # Three epochs of radius-2 dilation re-widen the bound far enough
    # that both posteriors of the same query clear the floor again.
    ledger.advance_epoch(3)
    assert ledger.remaining("u", SPEC) > 128
    assert ledger.evaluate("u", refused, protected).authorized


def test_advance_epoch_requires_a_decay_policy():
    ledger = PrivacyBudgetLedger(size_above(0))
    with pytest.raises(ValueError, match="DecayPolicy"):
        ledger.advance_epoch()
    with pytest.raises(ValueError, match="radius"):
        DecayPolicy(radius=-1)


def test_decayed_bounds_persist_through_the_backend():
    with SQLiteStore(":memory:") as store:
        ledger = PrivacyBudgetLedger(
            size_above(0), store=store, decay=DecayPolicy(radius=1)
        )
        ledger.commit("u", threshold_qinfo("x", 7), True)
        assert ledger.remaining("u", SPEC) == 128
        ledger.advance_epoch()
        assert ledger.remaining("u", SPEC) == 144  # 9 x 16, clamped
        reborn = PrivacyBudgetLedger(
            size_above(0), store=store, decay=DecayPolicy(radius=1)
        )
        assert reborn.remaining("u", SPEC) == 144
        assert reborn.epoch == 1


@settings(max_examples=60, deadline=None)
@given(
    workload=queries,
    user_secrets=st.lists(secrets, min_size=1, max_size=6),
    floor=floors,
)
def test_preauthorize_batch_matches_scalar(workload, user_secrets, floor):
    """Batch admission is per-user identical to scalar ``preauthorize`` —
    decisions, reasons, ``remaining``, and refusal tallies."""
    scalar = PrivacyBudgetLedger(size_above(floor))
    batch = PrivacyBudgetLedger(size_above(floor))
    users = [f"u{i}" for i in range(len(user_secrets))]
    # Diversify the sound bounds first so the batch sees mixed priors.
    for uid, secret in zip(users, user_secrets):
        protected = ProtectedSecret.seal(SPEC, secret)
        for axis, threshold in workload[:2]:
            qinfo = threshold_qinfo(axis, threshold)
            for ledger in (scalar, batch):
                ledger.evaluate(uid, qinfo, protected)
    for axis, threshold in workload:
        qinfo = threshold_qinfo(axis, threshold)
        expected = {uid: scalar.preauthorize(uid, qinfo) for uid in users}
        actual = batch.preauthorize_batch(users, qinfo)
        assert actual == expected
        for uid in users:
            assert scalar.account(uid).refusals == batch.account(uid).refusals


def test_preauthorize_batch_collapses_duplicate_ids():
    ledger = PrivacyBudgetLedger(size_above(10**9))  # refuses everything
    qinfo = threshold_qinfo("x", 7)
    decisions = ledger.preauthorize_batch(["u", "u", "u"], qinfo)
    assert list(decisions) == ["u"]
    assert not decisions["u"].allowed
    assert ledger.account("u").refusals == 1
