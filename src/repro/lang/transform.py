"""Generic AST traversals: free variables, substitution, NNF, folding.

These are the reusable "compiler middle-end" pieces: the synthesizer
substitutes concrete bounds into sketches, the solver pushes negations to
the leaves before splitting, and everything asks for free variables.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    Expr,
    Iff,
    Implies,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)

__all__ = [
    "free_vars",
    "substitute",
    "map_expr",
    "nnf",
    "fold_constants",
    "conjoin",
    "disjoin",
]


def free_vars(expr: Expr) -> frozenset[str]:
    """The set of variable names occurring in ``expr``."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    result: frozenset[str] = frozenset()
    for child in expr.children():
        result |= free_vars(child)
    return result


def map_expr(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Rebuild ``expr`` bottom-up, letting ``fn`` replace any node.

    ``fn`` is called on each node *after* its children have been rewritten;
    returning ``None`` keeps the rebuilt node.
    """
    rebuilt = _rebuild(expr, fn)
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def _rebuild(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    match expr:
        case Lit() | Var() | BoolLit():
            return expr
        case Add(left, right):
            return Add(map_expr(left, fn), map_expr(right, fn))
        case Sub(left, right):
            return Sub(map_expr(left, fn), map_expr(right, fn))
        case Neg(arg):
            return Neg(map_expr(arg, fn))
        case Scale(coeff, arg):
            return Scale(coeff, map_expr(arg, fn))
        case Abs(arg):
            return Abs(map_expr(arg, fn))
        case Min(left, right):
            return Min(map_expr(left, fn), map_expr(right, fn))
        case Max(left, right):
            return Max(map_expr(left, fn), map_expr(right, fn))
        case IntIte(cond, then_branch, else_branch):
            return IntIte(
                map_expr(cond, fn), map_expr(then_branch, fn), map_expr(else_branch, fn)
            )
        case Cmp(op, left, right):
            return Cmp(op, map_expr(left, fn), map_expr(right, fn))
        case And(args):
            return And(tuple(map_expr(arg, fn) for arg in args))
        case Or(args):
            return Or(tuple(map_expr(arg, fn) for arg in args))
        case Not(arg):
            return Not(map_expr(arg, fn))
        case Implies(antecedent, consequent):
            return Implies(map_expr(antecedent, fn), map_expr(consequent, fn))
        case Iff(left, right):
            return Iff(map_expr(left, fn), map_expr(right, fn))
        case InSet(arg, values):
            return InSet(map_expr(arg, fn), values)
        case _:
            raise TypeError(f"unknown AST node: {expr!r}")


def substitute(expr: Expr, bindings: Mapping[str, IntExpr | int]) -> Expr:
    """Replace free variables by integer expressions (or constants)."""

    def replace(node: Expr) -> Expr | None:
        if isinstance(node, Var) and node.name in bindings:
            value = bindings[node.name]
            return Lit(value) if isinstance(value, int) else value
        return None

    return map_expr(expr, replace)


def nnf(expr: BoolExpr) -> BoolExpr:
    """Negation normal form: negations pushed to comparison atoms.

    ``Implies``/``Iff`` are eliminated; ``Not`` survives only directly above
    ``InSet`` atoms (the solver treats negated membership natively).
    """
    return _nnf(expr, negate=False)


def _nnf(expr: BoolExpr, negate: bool) -> BoolExpr:
    match expr:
        case BoolLit(value):
            return BoolLit(value != negate)
        case Cmp(op, left, right):
            return Cmp(op.negate(), left, right) if negate else expr
        case InSet():
            return Not(expr) if negate else expr
        case Not(arg):
            return _nnf(arg, not negate)
        case And(args):
            parts = tuple(_nnf(arg, negate) for arg in args)
            return Or(parts) if negate else And(parts)
        case Or(args):
            parts = tuple(_nnf(arg, negate) for arg in args)
            return And(parts) if negate else Or(parts)
        case Implies(antecedent, consequent):
            return _nnf(Or((Not(antecedent), consequent)), negate)
        case Iff(left, right):
            both = And((left, right))
            neither = And((Not(left), Not(right)))
            return _nnf(Or((both, neither)), negate)
        case _:
            raise TypeError(f"not a boolean expression: {expr!r}")


def conjoin(parts) -> BoolExpr:
    """N-ary conjunction that flattens and drops trivial literals."""
    flat: list[BoolExpr] = []
    for part in parts:
        if isinstance(part, BoolLit):
            if not part.value:
                return BoolLit(False)
            continue
        if isinstance(part, And):
            flat.extend(part.args)
        else:
            flat.append(part)
    if not flat:
        return BoolLit(True)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(parts) -> BoolExpr:
    """N-ary disjunction that flattens and drops trivial literals."""
    flat: list[BoolExpr] = []
    for part in parts:
        if isinstance(part, BoolLit):
            if part.value:
                return BoolLit(True)
            continue
        if isinstance(part, Or):
            flat.extend(part.args)
        else:
            flat.append(part)
    if not flat:
        return BoolLit(False)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def fold_constants(expr: Expr) -> Expr:
    """Constant-fold an expression bottom-up.

    Performs the usual algebraic folds (literal arithmetic, ``x*0``,
    ``and``/``or`` unit and absorbing elements, decided comparisons of
    literals).  The result is semantically equal to the input.
    """

    def fold(node: Expr) -> Expr | None:
        match node:
            case Add(Lit(a), Lit(b)):
                return Lit(a + b)
            case Sub(Lit(a), Lit(b)):
                return Lit(a - b)
            case Neg(Lit(a)):
                return Lit(-a)
            case Scale(coeff, Lit(a)):
                return Lit(coeff * a)
            case Scale(0, _):
                return Lit(0)
            case Scale(1, arg):
                return arg
            case Abs(Lit(a)):
                return Lit(abs(a))
            case Min(Lit(a), Lit(b)):
                return Lit(min(a, b))
            case Max(Lit(a), Lit(b)):
                return Lit(max(a, b))
            case IntIte(BoolLit(c), then_branch, else_branch):
                return then_branch if c else else_branch
            case Cmp(op, Lit(a), Lit(b)):
                return BoolLit(op.holds(a, b))
            case InSet(Lit(a), values):
                return BoolLit(a in values)
            case Not(BoolLit(b)):
                return BoolLit(not b)
            case And(args):
                return conjoin(args)
            case Or(args):
                return disjoin(args)
            case Implies(BoolLit(a), consequent):
                return consequent if a else BoolLit(True)
            case Implies(_, BoolLit(True)):
                return BoolLit(True)
            case Iff(BoolLit(a), right):
                return right if a else fold_constants(Not(right))
            case _:
                return None

    return map_expr(expr, fold)
