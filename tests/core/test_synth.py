"""Tests for Synth (interval synthesis) and IterSynth (Algorithm 1)."""

import pytest
from hypothesis import given, settings

from repro.core.itersynth import iter_synth_powerset
from repro.core.synth import synth_interval
from repro.lang.ast import Not, var
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.lang.transform import nnf
from repro.solver.boxes import Box, boxes_are_disjoint
from tests.strategies import bool_exprs

SPEC = SecretSpec.declare("S", x=(-8, 12), y=(0, 15))
SPACE = Box(SPEC.bounds())
NAMES = SPEC.field_names


def _region(formula, polarity=True):
    target = formula if polarity else nnf(Not(formula))
    return {
        p for p in SPACE.iter_points() if eval_bool(target, dict(zip(NAMES, p)))
    }


class TestSynthInterval:
    @given(bool_exprs(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_under_box_inside_region(self, query):
        result = synth_interval(query, SPEC, mode="under", polarity=True)
        if result.domain.box is not None:
            assert set(result.domain.box.iter_points()) <= _region(query)
        else:
            assert not _region(query)

    @given(bool_exprs(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_over_box_covers_region(self, query):
        result = synth_interval(query, SPEC, mode="over", polarity=True)
        region = _region(query)
        if result.domain.box is None:
            assert not region
        else:
            assert region <= set(result.domain.box.iter_points())

    @given(bool_exprs(NAMES))
    @settings(max_examples=40, deadline=None)
    def test_false_polarity_targets_complement(self, query):
        result = synth_interval(query, SPEC, mode="under", polarity=False)
        if result.domain.box is not None:
            assert set(result.domain.box.iter_points()) <= _region(query, False)

    def test_region_constraint_respected(self):
        query = var("x") >= 0
        region = var("y") <= 5
        result = synth_interval(
            query, SPEC, mode="under", polarity=True, region=region
        )
        assert result.domain.box is not None
        for point in result.domain.box.iter_points():
            assert point[1] <= 5

    def test_empty_region_synthesizes_bottom(self):
        result = synth_interval(var("x").eq(99), SPEC, mode="under", polarity=True)
        assert result.domain.is_empty()
        assert result.proved_empty

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            synth_interval(var("x") <= 0, SPEC, mode="middle", polarity=True)

    def test_result_metadata(self):
        result = synth_interval(var("x") <= 0, SPEC, mode="under", polarity=True)
        assert result.elapsed >= 0
        assert not result.timed_out


class TestIterSynthUnder:
    def test_disjoint_includes(self):
        query = var("x").in_set({-5, 0, 5, 10})
        result = iter_synth_powerset(query, SPEC, k=3, mode="under", polarity=True)
        assert boxes_are_disjoint(list(result.domain.include))
        assert not result.domain.exclude

    def test_monotone_in_k(self):
        query = var("x").in_set({-5, 0, 5, 10})
        sizes = [
            iter_synth_powerset(query, SPEC, k=k, mode="under", polarity=True)
            .domain.size()
            for k in (1, 2, 3, 4)
        ]
        assert sizes == sorted(sizes)

    def test_exactness_when_region_is_k_boxes(self):
        # The True region splits into exactly 2 boxes: k=2 captures it all.
        query = (var("x") <= -5) | (var("x") >= 10)
        result = iter_synth_powerset(query, SPEC, k=3, mode="under", polarity=True)
        assert result.domain.size() == len(_region(query))
        assert result.iterations == 2  # early exhaustion

    def test_under_soundness(self):
        query = abs(var("x")) + abs(var("y") - 8) <= 6
        result = iter_synth_powerset(query, SPEC, k=4, mode="under", polarity=True)
        points = {
            p for p in SPACE.iter_points() if result.domain.contains(p)
        }
        assert points <= _region(query)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            iter_synth_powerset(var("x") <= 0, SPEC, k=0, mode="under", polarity=True)


class TestIterSynthOver:
    def test_cover_plus_exclusions_still_covers(self):
        query = abs(var("x")) + abs(var("y") - 8) <= 6
        result = iter_synth_powerset(query, SPEC, k=4, mode="over", polarity=True)
        region = _region(query)
        points = {p for p in SPACE.iter_points() if result.domain.contains(p)}
        assert region <= points

    def test_exclusions_improve_precision(self):
        query = abs(var("x")) + abs(var("y") - 8) <= 6
        k1 = iter_synth_powerset(query, SPEC, k=1, mode="over", polarity=True)
        k4 = iter_synth_powerset(query, SPEC, k=4, mode="over", polarity=True)
        assert k4.domain.size() <= k1.domain.size()

    def test_empty_region_gives_bottom(self):
        result = iter_synth_powerset(
            var("x").eq(99), SPEC, k=3, mode="over", polarity=True
        )
        assert result.domain.is_empty()

    def test_exclusions_disjoint_and_inside_cover(self):
        query = abs(var("x")) + abs(var("y") - 8) <= 6
        result = iter_synth_powerset(query, SPEC, k=4, mode="over", polarity=True)
        domain = result.domain
        assert boxes_are_disjoint(list(domain.exclude))
        cover = domain.include[0]
        for hole in domain.exclude:
            assert cover.contains_box(hole)
