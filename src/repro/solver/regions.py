"""Formulas describing box regions.

The synthesizer often needs "the part of the query region not yet covered
by previously synthesized boxes" (Algorithm 1).  These helpers turn box
geometry back into query-language formulas so the decision procedures can
reason about such regions directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang.ast import BoolExpr, BoolLit, Lit, Not, Var
from repro.lang.transform import conjoin, disjoin, nnf
from repro.solver.boxes import Box

__all__ = ["box_formula", "any_box_formula", "outside_boxes_formula"]


def box_formula(box: Box, names: Sequence[str]) -> BoolExpr:
    """Membership formula ``/\\_i lo_i <= x_i <= hi_i`` for a box."""
    if box.arity != len(names):
        raise ValueError(
            f"box has {box.arity} dimensions but {len(names)} names given"
        )
    atoms: list[BoolExpr] = []
    for name, (lo, hi) in zip(names, box.bounds):
        variable = Var(name)
        atoms.append(variable >= Lit(lo))
        atoms.append(variable <= Lit(hi))
    return conjoin(atoms)


def any_box_formula(boxes: Iterable[Box], names: Sequence[str]) -> BoolExpr:
    """Membership in the union of ``boxes`` (False for an empty list)."""
    parts = [box_formula(box, names) for box in boxes]
    if not parts:
        return BoolLit(False)
    return disjoin(parts)


def outside_boxes_formula(boxes: Iterable[Box], names: Sequence[str]) -> BoolExpr:
    """Non-membership in every one of ``boxes`` (True for an empty list)."""
    parts = [nnf(Not(box_formula(box, names))) for box in boxes]
    return conjoin(parts)
