"""Tests for boundary-guided split selection (the decide.py heuristics)."""

from repro.lang.ast import CmpOp, Lit, Neg, Scale, Sub, Var, var
from repro.lang.parser import parse_bool
from repro.solver.boxes import Box
from repro.solver.decide import SolverStats, _choose_split, _var_bound, decide_forall


class TestVarBound:
    def test_plain_variable(self):
        assert _var_bound(var("x") <= 5) == ("x", CmpOp.LE, 5)

    def test_constant_on_left_flips(self):
        assert _var_bound(Lit(5) <= var("x")) == ("x", CmpOp.GE, 5)

    def test_offset_addition(self):
        assert _var_bound(var("x") + 3 <= 5) == ("x", CmpOp.LE, 2)

    def test_offset_subtraction(self):
        assert _var_bound(var("x") - 3 <= 5) == ("x", CmpOp.LE, 8)

    def test_reversed_subtraction(self):
        # 3 - x <= 5  <=>  x >= -2
        assert _var_bound(Sub(Lit(3), Var("x")) <= 5) == ("x", CmpOp.GE, -2)

    def test_negation(self):
        # -x <= 5  <=>  x >= -5
        assert _var_bound(Neg(Var("x")) <= 5) == ("x", CmpOp.GE, -5)

    def test_positive_scale(self):
        # 2x <= 6  <=>  x <= 3
        assert _var_bound(Scale(2, Var("x")) <= 6) == ("x", CmpOp.LE, 3)

    def test_indivisible_scale_skipped(self):
        assert _var_bound(Scale(2, Var("x")) <= 5) is None

    def test_two_variable_atom_skipped(self):
        assert _var_bound(var("x") <= var("y")) is None


class TestChooseSplit:
    def test_cuts_at_atom_boundary(self):
        box = Box.make((0, 99), (0, 99))
        formula = parse_bool("x >= 40")
        dim, cut = _choose_split(formula, box, ("x", "y"))
        assert (dim, cut) == (0, 39)  # low half decides False, high True

    def test_le_atom_cut(self):
        box = Box.make((0, 99),)
        dim, cut = _choose_split(parse_bool("x <= 25"), box, ("x",))
        assert (dim, cut) == (0, 25)

    def test_falls_back_to_midpoint(self):
        box = Box.make((0, 99), (0, 9))
        # x == y: no single-variable bound; widest dim, midpoint.
        formula = parse_bool("x == y")
        dim, cut = _choose_split(formula, box, ("x", "y"))
        assert dim == 0
        assert cut == 49

    def test_inset_run_boundary(self):
        box = Box.make((0, 99),)
        formula = parse_bool("x in {10, 11, 12, 50}")
        dim, cut = _choose_split(formula, box, ("x",))
        assert dim == 0
        assert cut == 9  # everything below the first member decides False

    def test_efficiency_on_cross_dimension_conjunction(self):
        # The case that motivated the heuristic: a conjunction of bounds
        # on different variables over a huge box must not blow up.
        box = Box.make((0, 99_999), (0, 99_999), (1900, 2010))
        formula = parse_bool(
            "x >= 40000 and x <= 60000 and y >= 40000 and y <= 60000 "
            "and byear >= 1985"
        )
        stats = SolverStats()
        assert not decide_forall(formula, box, ("x", "y", "byear"), stats)
        assert stats.nodes < 50
