"""Property tests for interval arithmetic: tightest-range exactness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import interval

ranges = st.tuples(st.integers(-30, 30), st.integers(-30, 30)).map(
    lambda ab: (min(ab), max(ab))
)


def _points(rng):
    return range(rng[0], rng[1] + 1)


def _exact(op, a, b=None):
    if b is None:
        values = [op(x) for x in _points(a)]
    else:
        values = [op(x, y) for x in _points(a) for y in _points(b)]
    return (min(values), max(values))


class TestBinaryOps:
    @given(ranges, ranges)
    @settings(max_examples=80, deadline=None)
    def test_add_exact(self, a, b):
        assert interval.add(a, b) == _exact(lambda x, y: x + y, a, b)

    @given(ranges, ranges)
    @settings(max_examples=80, deadline=None)
    def test_sub_exact(self, a, b):
        assert interval.sub(a, b) == _exact(lambda x, y: x - y, a, b)

    @given(ranges, ranges)
    @settings(max_examples=80, deadline=None)
    def test_min_exact(self, a, b):
        assert interval.min_(a, b) == _exact(min, a, b)

    @given(ranges, ranges)
    @settings(max_examples=80, deadline=None)
    def test_max_exact(self, a, b):
        assert interval.max_(a, b) == _exact(max, a, b)


class TestUnaryOps:
    @given(ranges)
    @settings(max_examples=80, deadline=None)
    def test_neg_exact(self, a):
        assert interval.neg(a) == _exact(lambda x: -x, a)

    @given(ranges)
    @settings(max_examples=80, deadline=None)
    def test_abs_exact(self, a):
        assert interval.abs_(a) == _exact(abs, a)

    @given(st.integers(-5, 5), ranges)
    @settings(max_examples=80, deadline=None)
    def test_scale_exact(self, coeff, a):
        assert interval.scale(coeff, a) == _exact(lambda x: coeff * x, a)


class TestLatticeOps:
    @given(ranges, ranges)
    @settings(max_examples=80, deadline=None)
    def test_join_contains_both(self, a, b):
        lo, hi = interval.join(a, b)
        assert lo <= a[0] and lo <= b[0]
        assert hi >= a[1] and hi >= b[1]

    @given(ranges, ranges)
    @settings(max_examples=80, deadline=None)
    def test_meet_is_intersection(self, a, b):
        result = interval.meet(a, b)
        expected = set(_points(a)) & set(_points(b))
        if result is None:
            assert not expected
        else:
            assert set(_points(result)) == expected

    def test_meet_disjoint(self):
        assert interval.meet((0, 1), (3, 4)) is None
