"""Tests for the B1-B5 benchmark definitions and ground truth."""

import pytest

from repro.benchsuite.groundtruth import exact_indset_sizes, ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS, benchmark
from repro.lang.validate import validate_query


class TestDefinitions:
    def test_all_five_present(self):
        assert sorted(ALL_BENCHMARKS) == ["B1", "B2", "B3", "B4", "B5"]

    def test_lookup(self):
        assert benchmark("B1").name == "Birthday"
        with pytest.raises(KeyError, match="unknown benchmark"):
            benchmark("B9")

    @pytest.mark.parametrize("bench_id", ["B1", "B2", "B3", "B4", "B5"])
    def test_queries_are_admissible(self, bench_id):
        problem = ALL_BENCHMARKS[bench_id]
        report = validate_query(problem.query, problem.secret)
        assert report.variables <= set(problem.secret.field_names)

    def test_field_counts_match_table1(self):
        expected = {"B1": 2, "B2": 3, "B3": 3, "B4": 4, "B5": 4}
        for bench_id, count in expected.items():
            assert ALL_BENCHMARKS[bench_id].field_count == count


class TestGroundTruth:
    def test_birthday_exact_sizes(self):
        truth = ground_truth(ALL_BENCHMARKS["B1"])
        assert truth.true_size == 259
        assert truth.false_size == 13246

    def test_photo_exact_sizes(self):
        truth = ground_truth(ALL_BENCHMARKS["B3"])
        assert truth.true_size == 4
        assert truth.false_size == 884

    def test_travel_exact_sizes(self):
        truth = ground_truth(ALL_BENCHMARKS["B5"])
        assert truth.true_size == 2160
        assert truth.false_size == 6_697_840

    def test_ship_exact_sizes(self):
        truth = ground_truth(ALL_BENCHMARKS["B2"])
        assert truth.true_size == 1_010_050
        assert truth.false_size == 24_290_850

    def test_sizes_partition_the_space(self):
        truth = ground_truth(ALL_BENCHMARKS["B1"])
        assert truth.true_size + truth.false_size == truth.space_size
        assert truth.size_for(True) == truth.true_size
        assert truth.size_for(False) == truth.false_size

    def test_exact_indset_sizes_on_custom_query(self, tiny_spec):
        from repro.lang.parser import parse_bool

        truth = exact_indset_sizes(parse_bool("x <= 0"), tiny_spec)
        assert truth.true_size == 9 * 16


@pytest.mark.slow
class TestGroundTruthSlow:
    def test_pizza_exact_sizes(self):
        truth = ground_truth(ALL_BENCHMARKS["B4"])
        assert truth.true_size == 14_977_248_052
        assert truth.true_size + truth.false_size == truth.space_size
