"""ShardedCompilePool: routing, codec fidelity, admission control."""

import pytest

from repro.core.plugin import CompileOptions, compile_query
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.server.workers import ShardOverloaded, ShardedCompilePool, shard_of

SPEC = SecretSpec.declare("UserLoc", x=(0, 99), y=(0, 99))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))
QUERY = "abs(x - 50) + abs(y - 50) <= 30"
#: The same query as another tenant writes it (commuted ``+``).
QUERY_REORDERED = "abs(y - 50) + abs(x - 50) <= 30"


def test_alpha_equivalent_queries_route_to_same_shard():
    a, b = parse_bool(QUERY), parse_bool(QUERY_REORDERED)
    for shards in (2, 3, 7):
        assert shard_of(a, shards) == shard_of(b, shards)
    pool = ShardedCompilePool(4, inline=True)
    assert pool.shard_for(QUERY) == pool.shard_for(QUERY_REORDERED)


def test_routing_is_stable_and_in_range():
    queries = [f"x <= {t}" for t in range(20)]
    pool = ShardedCompilePool(4, inline=True)
    shards = [pool.shard_for(q) for q in queries]
    assert shards == [pool.shard_for(q) for q in queries]
    assert all(0 <= s < 4 for s in shards)
    # The hash spreads work: 20 distinct queries never pile onto one shard.
    assert len(set(shards)) > 1


def test_inline_compile_matches_local_compile():
    pool = ShardedCompilePool(2, inline=True)
    future = pool.submit("q", QUERY, SPEC, OPTIONS)
    compiled, provenance = pool.decode(future.result())
    local = compile_query("q", QUERY, SPEC, OPTIONS)
    assert compiled.name == "q"
    assert compiled.qinfo.under_indset == local.qinfo.under_indset
    assert compiled.qinfo.over_indset == local.qinfo.over_indset
    assert all(report.verified for report in compiled.reports.values())
    assert provenance["shard_cache_hit"] is False
    assert pool.total_submitted() == 1


def test_shard_local_cache_skips_resynthesis():
    pool = ShardedCompilePool(1, inline=True)
    first = pool.submit("a", QUERY, SPEC, OPTIONS).result()
    second = pool.submit("b", QUERY_REORDERED, SPEC, OPTIONS).result()
    _, prov1 = pool.decode(first)
    _, prov2 = pool.decode(second)
    compiled_b, _ = pool.decode(second)
    assert prov2["shard_cache_hit"] is True or prov1["shard_cache_hit"] is True
    assert compiled_b.name == "b"


def test_admission_control_sheds_at_bound():
    pool = ShardedCompilePool(1, max_pending=2, inline=True)
    # Hold reservations open the way in-flight process jobs would.
    pool._reserve(0)
    pool._reserve(0)
    with pytest.raises(ShardOverloaded):
        pool.submit("q", QUERY, SPEC, OPTIONS)
    assert pool.total_shed() == 1
    pool._release(0)
    # One slot free again: the job is admitted.
    future = pool.submit("q", QUERY, SPEC, OPTIONS)
    compiled, _ = pool.decode(future.result())
    assert compiled.name == "q"
    pool._release(0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        ShardedCompilePool(0)
    with pytest.raises(ValueError):
        ShardedCompilePool(1, max_pending=0)


def test_process_pool_compiles_and_shuts_down():
    """The real process path: fork, compile remotely, decode, tear down."""
    with ShardedCompilePool(2) as pool:
        futures = [
            pool.submit(f"q{t}", f"x <= {t}", SPEC, OPTIONS) for t in (10, 60)
        ]
        for t, future in zip((10, 60), futures):
            compiled, provenance = pool.decode(future.result(timeout=60))
            local = compile_query(f"q{t}", f"x <= {t}", SPEC, OPTIONS)
            assert compiled.qinfo.under_indset == local.qinfo.under_indset
            assert isinstance(provenance["pid"], int)
    assert pool.total_submitted() == 2
