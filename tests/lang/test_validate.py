"""Tests for the section 5.1 query-language validator."""

import pytest

from repro.lang.ast import InSet, Lit, Var, var
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec
from repro.lang.validate import (
    MAX_LITERAL,
    QueryValidationError,
    validate_query,
)


@pytest.fixture
def spec():
    return SecretSpec.declare("S", x=(0, 99), y=(0, 99))


class TestAccepts:
    def test_simple_query(self, spec):
        report = validate_query(parse_bool("x + y <= 50"), spec)
        assert report.variables == {"x", "y"}

    def test_nearby(self, spec, nearby):
        report = validate_query(nearby, spec)
        assert report.node_count == 11
        assert report.literal_count == 3

    def test_set_atoms_counted(self, spec):
        report = validate_query(parse_bool("x in {1, 2} and y in {3}"), spec)
        assert report.set_atom_count == 2

    def test_subset_of_fields_ok(self, spec):
        report = validate_query(parse_bool("x <= 3"), spec)
        assert report.variables == {"x"}


class TestRejects:
    def test_non_boolean_query(self, spec):
        with pytest.raises(QueryValidationError, match="boolean"):
            validate_query(var("x") + 1, spec)

    def test_undeclared_field(self, spec):
        with pytest.raises(QueryValidationError, match="undeclared|not declared"):
            validate_query(parse_bool("z <= 1"), spec)

    def test_oversized_query(self, spec):
        query = parse_bool("x <= 1 and y <= 2")
        with pytest.raises(QueryValidationError, match="too large"):
            validate_query(query, spec, max_nodes=3)

    def test_huge_literal(self, spec):
        query = var("x") <= Lit(MAX_LITERAL + 1)
        with pytest.raises(QueryValidationError, match="magnitude"):
            validate_query(query, spec)

    def test_empty_set_membership(self, spec):
        query = InSet(Var("x"), frozenset())
        with pytest.raises(QueryValidationError, match="empty set"):
            validate_query(query, spec)

    def test_huge_set_member(self, spec):
        query = InSet(Var("x"), frozenset({MAX_LITERAL + 1}))
        with pytest.raises(QueryValidationError, match="magnitude"):
            validate_query(query, spec)
