"""Integration tests: the full pipeline on small, brute-forceable spaces.

These tests tie every layer together: compile (sketch → synthesis →
verification) → register → downgrade through ``AnosyT`` → check the
section 3 soundness invariant P_i ⊆ K_i against brute-force enumeration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plugin import CompileOptions, QueryRegistry, compile_query
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import AnosyT
from repro.monad.policy import size_at_least
from repro.monad.protected import ProtectedSecret
from repro.monad.secure import SecureRuntime
from repro.refine.checker import verify_refinement
from repro.refine.figure4 import overapprox_spec, underapprox_spec
from repro.solver.boxes import Box
from tests.strategies import bool_exprs

SPEC = SecretSpec.declare("S", x=(-8, 12), y=(0, 15))
SPACE = Box(SPEC.bounds())
NAMES = SPEC.field_names


def _exact_knowledge(queries_and_responses):
    points = set(SPACE.iter_points())
    for query, response in queries_and_responses:
        points = {
            p
            for p in points
            if eval_bool(query, dict(zip(NAMES, p))) == response
        }
    return points


class TestPosteriorSpecsVerify:
    """The Figure 4 posterior functions carry their refinement types."""

    @given(bool_exprs(NAMES))
    @settings(max_examples=25, deadline=None)
    def test_underapprox_posterior_satisfies_spec(self, query):
        compiled = compile_query("q", query, SPEC, CompileOptions(domain="powerset", k=2))
        from repro.domains.powerset import PowersetDomain

        prior = PowersetDomain(SPEC, (Box.make((-8, 5), (0, 10)),), ())
        post_true, post_false = compiled.qinfo.underapprox(prior)
        specs = underapprox_spec(query, prior)
        assert verify_refinement(post_true, specs[0]).verified
        assert verify_refinement(post_false, specs[1]).verified

    @given(bool_exprs(NAMES))
    @settings(max_examples=25, deadline=None)
    def test_overapprox_posterior_satisfies_spec(self, query):
        compiled = compile_query("q", query, SPEC, CompileOptions(domain="powerset", k=2))
        from repro.domains.powerset import PowersetDomain

        prior = PowersetDomain(SPEC, (Box.make((-8, 5), (0, 10)),), ())
        post_true, post_false = compiled.qinfo.overapprox(prior)
        specs = overapprox_spec(query, prior)
        assert verify_refinement(post_true, specs[0]).verified
        assert verify_refinement(post_false, specs[1]).verified


class TestSection3Soundness:
    """P_i ⊆ K_i: tracked knowledge under-approximates true knowledge."""

    @given(
        st.lists(bool_exprs(NAMES), min_size=1, max_size=3),
        st.tuples(st.integers(-8, 12), st.integers(0, 15)),
    )
    @settings(max_examples=20, deadline=None)
    def test_tracked_knowledge_underapproximates(self, queries, secret_value):
        registry = QueryRegistry()
        options = CompileOptions(domain="powerset", k=2, modes=("under",))
        names = []
        for index, query in enumerate(queries):
            name = f"q{index}"
            registry.compile_and_register(name, query, SPEC, options)
            names.append(name)

        session = AnosyT(
            SecureRuntime(), size_at_least(1), registry, check_both=False
        )
        secret = ProtectedSecret.seal(SPEC, secret_value)
        observed = []
        for name, query in zip(names, queries):
            decision = session.try_downgrade(secret, name)
            if not decision.authorized:
                break
            observed.append((query, decision.response))

        if not observed:
            return
        knowledge = session.knowledge_of(secret)
        exact = _exact_knowledge(observed)
        tracked = {p for p in SPACE.iter_points() if knowledge.contains(p)}
        assert tracked <= exact

    def test_over_knowledge_always_contains_secret(self):
        registry = QueryRegistry()
        options = CompileOptions(domain="powerset", k=2)
        from repro.lang.ast import var

        registry.compile_and_register("q0", var("x") + var("y") <= 5, SPEC, options)
        registry.compile_and_register("q1", abs(var("x")) <= 4, SPEC, options)
        session = AnosyT(
            SecureRuntime(),
            size_at_least(1),
            registry,
            check_both=False,
            track_over=True,
        )
        secret_value = (3, 1)
        secret = ProtectedSecret.seal(SPEC, secret_value)
        session.downgrade(secret, "q0")
        session.downgrade(secret, "q1")
        key = session._key(secret)
        assert session.over_knowledge[key].contains(secret_value)
