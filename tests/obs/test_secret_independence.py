"""Telemetry is an output channel: it must not leak the secret.

ANOSY's guarantee covers everything the server emits — including its
metrics and traces.  The net here runs the *same request schedule*
against two servers that differ **only in the protected secret** and
asserts the ``decision`` channel (metric series, labels, values — the
exposition bytes themselves) and every canonical trace tree come out
bit-identical.  ``timing`` series are wall-clock and excluded;
``declassified`` series derive from responses the client already
received and are exercised separately below: once knowledge has been
declassified — a session's accumulated posterior, or a budget ledger's
sound bound — verdicts *may* differ between secrets, but only through
that declassified state, and only in the enumerated verdict-fed series
and span attributes.  Telemetry *shape* never differs.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plugin import CompileOptions
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.server.gateway import DeclassificationServer, ServerConfig
from repro.service.api import CompileRequest

SPEC = SecretSpec.declare("IndepLoc", x=(0, 199), y=(0, 199))
OPTIONS = CompileOptions(domain="interval", modes=("under", "over"))
#: "inner" splits the 40000-cell prior asymmetrically (10000 / 30000),
#: the sharpest source of secret-dependent *declassified* sizes.
QUERIES = (("west", "x <= 99"), ("south", "y <= 99"), ("inner", "x <= 49"))
QUERY_NAMES = tuple(name for name, _ in QUERIES) + ("ghost",)

secrets = st.tuples(st.integers(0, 199), st.integers(0, 199))
distinct_secret_pairs = st.tuples(secrets, secrets).filter(
    lambda pair: pair[0] != pair[1]
)


def run_schedule(secret, opens, schedule, *, budget_floor=None):
    """One run: fixed request stream, one secret; returns its telemetry."""

    async def scenario():
        server = DeclassificationServer(
            size_above(100),
            options=OPTIONS,
            budget_floor=budget_floor,
            config=ServerConfig(inline_compiles=True),
        )
        for name, text in QUERIES:
            await server.register_query(CompileRequest(name, text, SPEC))
        for session_id, user in opens:
            server.open_session(session_id, (SPEC, secret), user_id=user)
        for session_id, query_name in schedule:
            await server.downgrade(session_id, query_name)
        server.refresh_gauges()
        exposition = server.hub.registry.exposition(channels=("decision",))
        snapshot = server.hub.registry.snapshot(channels=("decision",))
        trees = server.hub.tracer.trees()
        digest = server.hub.tracer.digest()
        server.shutdown()
        return exposition, snapshot, trees, digest

    return asyncio.run(scenario())


@settings(max_examples=10, deadline=None)
@given(
    pair=distinct_secret_pairs,
    queries=st.lists(st.sampled_from(QUERY_NAMES), min_size=1, max_size=4),
)
def test_single_downgrade_streams_are_bit_identical(pair, queries):
    """One downgrade per session ⇒ full decision + trace bit-identity.

    Admission happens against each (distinct) user's *prior* bound, so
    even with a budget floor in play nothing the ledger decides can
    depend on the secret — the whole decision channel must match.
    """
    opens = [(f"s{i}", f"u{i}") for i in range(len(queries))]
    schedule = [(f"s{i}", name) for i, name in enumerate(queries)]
    runs = [
        run_schedule(
            secret, opens, schedule, budget_floor=size_above(4000)
        )
        for secret in pair
    ]
    (expo_a, _, trees_a, digest_a), (expo_b, _, trees_b, digest_b) = runs
    assert expo_a == expo_b  # byte-identical exposition
    assert digest_a == digest_b
    assert trees_a == trees_b
    assert trees_a  # non-vacuous: every downgrade left a tree


#: Decision-channel series *licensed* to differ between secrets: each
#: counts or classifies a verdict, and verdicts feed on declassified
#: state — the budget ledger's knowledge sizes, or the session's own
#: accumulated (declassified) knowledge that the both-branch check runs
#: against (see DESIGN.md §13).
VERDICT_FED = {
    "anosy_ledger_refusals_total",
    "anosy_gateway_downgrades_total",
    "anosy_serve_path_total",
    "anosy_serve_path_sessions_total",
    "anosy_gateway_stat",
    "anosy_audit_events_total",
}

#: Span attributes that carry verdicts (same license as above).
VERDICT_ATTRS = {"authorized", "kind", "allowed"}


def strip_verdicts(tree):
    """A trace tree with verdict-valued attributes removed."""
    return {
        "name": tree["name"],
        "attrs": {
            key: value
            for key, value in tree["attrs"].items()
            if key not in VERDICT_ATTRS
        },
        "children": [strip_verdicts(child) for child in tree["children"]],
    }


@settings(max_examples=10, deadline=None)
@given(
    pair=distinct_secret_pairs,
    schedule=st.lists(
        st.tuples(
            st.sampled_from(("s0", "s1", "ghost-session")),
            st.sampled_from(QUERY_NAMES),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_general_streams_diverge_only_in_verdicts(pair, schedule):
    """Arbitrary streams ⇒ identical telemetry *shape*, verdicts aside.

    Once a session has downgraded, its knowledge is declassified state
    and later verdicts legitimately depend on it (the client saw the
    response that shaped it).  What must never depend on the secret is
    everything else: which series exist, their labels and counts, which
    requests got traced, and every span's identity and structure.
    """
    opens = [("s0", "alice"), ("s1", "bob")]
    runs = [run_schedule(secret, opens, schedule) for secret in pair]
    (_, snap_a, trees_a, _), (_, snap_b, trees_b, _) = runs
    assert set(snap_a) == set(snap_b)
    for name in set(snap_a) - VERDICT_FED:
        assert snap_a[name] == snap_b[name], name
    assert set(trees_a) == set(trees_b)  # same requests traced
    for trace_id, tree in trees_a.items():
        assert strip_verdicts(tree) == strip_verdicts(trees_b[trace_id])


def test_binding_floor_divergence_is_confined_to_declassified_fed_series():
    """With a binding floor, only verdict-fed series may differ.

    Ledger admission refuses when *any possible response* would cross
    the floor, so a user's first query is judged on the prior —
    secret-independent by construction.  The second query is judged on
    the remaining bound the first response carved out: secret (30, 40)
    answers ``inner`` True (bound shrinks to 10000 cells, and ``west``
    could then empty it ⇒ refused); (150, 40) answers False (30000
    cells, both ``west`` outcomes stay above the floor ⇒ admitted).
    That divergence is real — and *licensed*, because the bound is a
    function of the already-declassified response.  Everything else in
    the decision channel must still match bit-for-bit.
    """
    opens = [("s1", "alice")]
    schedule = [("s1", "inner"), ("s1", "west")]
    floor = size_above(4_000)
    snap_a = run_schedule((30, 40), opens, schedule, budget_floor=floor)[1]
    snap_b = run_schedule((150, 40), opens, schedule, budget_floor=floor)[1]
    # Verdict-fed instruments declare lazily (the run that never
    # refused has no refusals counter at all); shape equality is only
    # demanded of everything else.
    assert set(snap_a) - VERDICT_FED == set(snap_b) - VERDICT_FED
    differing = {
        name
        for name in set(snap_a) | set(snap_b)
        if snap_a.get(name) != snap_b.get(name)
    }
    assert "anosy_ledger_refusals_total" in differing  # the floor did bind
    assert differing <= VERDICT_FED, differing - VERDICT_FED
