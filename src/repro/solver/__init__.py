"""Decision procedures and optimizers over finite integer boxes.

This package is the reproduction's stand-in for Z3 (see DESIGN.md):
complete ∀/∃/counting decisions by interval abstract evaluation plus
branch-and-bound splitting, and box optimizers replacing νZ's Pareto
``maximize``/``minimize`` directives.
"""

from repro.solver.boxes import (
    Box,
    boxes_are_disjoint,
    disjoint_pieces,
    subtract_box,
    subtract_boxes,
    union_volume,
)
from repro.solver.decide import (
    InterpEngine,
    KernelEngine,
    SolverBudgetExceeded,
    SolverStats,
    count_models,
    decide_exists,
    decide_forall,
    find_model,
    find_true_box,
    make_engine,
)
from repro.solver.kernels import BoolKernel, IntKernel, KernelSpace, concrete_predicate
from repro.solver.optimize import (
    OptimizeOptions,
    OptimizeOutcome,
    bounding_box,
    maximal_box,
)
from repro.solver.regions import any_box_formula, box_formula, outside_boxes_formula
from repro.solver.smtlib import forall_script, synthesis_script, to_smt

__all__ = [
    "Box",
    "boxes_are_disjoint",
    "disjoint_pieces",
    "subtract_box",
    "subtract_boxes",
    "union_volume",
    "SolverBudgetExceeded",
    "SolverStats",
    "InterpEngine",
    "KernelEngine",
    "make_engine",
    "BoolKernel",
    "IntKernel",
    "KernelSpace",
    "concrete_predicate",
    "count_models",
    "decide_exists",
    "decide_forall",
    "find_model",
    "find_true_box",
    "OptimizeOptions",
    "OptimizeOutcome",
    "bounding_box",
    "maximal_box",
    "any_box_formula",
    "box_formula",
    "outside_boxes_formula",
    "forall_script",
    "synthesis_script",
    "to_smt",
]
