"""Experiment E4 — Figure 6: sequential declassifications before violation.

The secure advertising system (section 6.2): 20 execution instances, each
with a fresh random user location, run through 50 random ``nearby``
queries under the policy ``size > 100``.  For every powerset size
``k ∈ {1, 3, 5, 7, 10}``, we record how many instances are still alive
(i.e. had every query so far authorized) after the i-th query — the
paper's survival curves.

Run as::

    python -m repro.experiments.figure6 [--instances 20] [--queries 50]
"""

from __future__ import annotations

import argparse
import random
import time
from dataclasses import dataclass

from repro.benchsuite.advertising import AdvertisingSystem, InstanceResult, build_system
from repro.experiments.report import TextTable, ascii_chart

__all__ = ["Figure6Series", "run_figure6", "render_figure6", "main"]

DEFAULT_KS = (1, 3, 5, 7, 10)


@dataclass(frozen=True)
class Figure6Series:
    """Survival data for one powerset size ``k``."""

    k: int
    results: tuple[InstanceResult, ...]
    num_queries: int
    compile_time: float
    run_time: float

    def alive_after(self, query_index: int) -> int:
        """Instances that answered at least ``query_index`` queries."""
        return sum(1 for r in self.results if r.authorized >= query_index)

    def survival_curve(self) -> list[int]:
        """``alive_after(i)`` for i = 1 .. num_queries."""
        return [self.alive_after(i) for i in range(1, self.num_queries + 1)]

    def max_authorized(self) -> int:
        """The most queries any instance answered (the paper's headline)."""
        return max(r.authorized for r in self.results)

    def mean_authorized(self) -> float:
        """Average authorized queries per instance."""
        return sum(r.authorized for r in self.results) / len(self.results)


def run_figure6(
    *,
    ks: tuple[int, ...] = DEFAULT_KS,
    instances: int = 20,
    num_queries: int = 50,
    seed: int = 2022,
    check_both: bool = False,
) -> list[Figure6Series]:
    """Build one system per ``k`` and run all instances through it.

    The same seeds are reused across ``k`` values (same restaurants, same
    user locations) so curves differ only in the abstract domain, exactly
    like the paper's setup.
    """
    series = []
    for k in ks:
        t0 = time.perf_counter()
        system: AdvertisingSystem = build_system(
            k=k, num_queries=num_queries, seed=seed, check_both=check_both
        )
        compile_time = time.perf_counter() - t0
        rng = random.Random(seed + 1)
        secrets = [
            (rng.randrange(400), rng.randrange(400)) for _ in range(instances)
        ]
        t0 = time.perf_counter()
        results = tuple(system.run_instance(secret) for secret in secrets)
        run_time = time.perf_counter() - t0
        series.append(
            Figure6Series(
                k=k,
                results=results,
                num_queries=num_queries,
                compile_time=compile_time,
                run_time=run_time,
            )
        )
    return series


def render_figure6(series: list[Figure6Series]) -> str:
    """Summary table plus the survival-curve chart."""
    table = TextTable(
        headers=[
            "k",
            "max authorized",
            "mean authorized",
            "compile time",
            "run time (all instances)",
        ],
        rows=[
            [
                str(s.k),
                str(s.max_authorized()),
                f"{s.mean_authorized():.1f}",
                f"{s.compile_time:.1f}s",
                f"{s.run_time:.2f}s",
            ]
            for s in series
        ],
    )
    max_interesting = max(s.max_authorized() for s in series) + 1
    chart = ascii_chart(
        {f"k={s.k:02d}": s.survival_curve()[:max_interesting] for s in series},
        title="Instances alive after the i-th declassification query",
    )
    return f"{table.render()}\n\n{chart}"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Reproduce Figure 6")
    parser.add_argument("--ks", type=int, nargs="*", default=list(DEFAULT_KS))
    parser.add_argument("--instances", type=int, default=20)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--check-both",
        action="store_true",
        help="check the policy on both posteriors (section 3 discipline)",
    )
    args = parser.parse_args(argv)
    series = run_figure6(
        ks=tuple(args.ks),
        instances=args.instances,
        num_queries=args.queries,
        seed=args.seed,
        check_both=args.check_both,
    )
    mode = "both posteriors" if args.check_both else "response posterior"
    print(
        "Figure 6: secure advertising system, policy size > 100 "
        f"(policy checked on: {mode})"
    )
    print(render_figure6(series))


if __name__ == "__main__":
    main()
