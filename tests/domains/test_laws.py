"""Property tests for the Figure 3 class laws (sizeLaw / subsetLaw)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains.base import check_size_law, check_subset_law
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box
from tests.strategies import boxes_within, points_within

SPEC = SecretSpec.declare("S", x=(0, 9), y=(0, 9))
SPACE = Box(SPEC.bounds())

interval_domains = st.one_of(
    st.just(IntervalDomain.bottom(SPEC)),
    boxes_within(SPACE).map(lambda b: IntervalDomain(SPEC, b)),
)

powerset_domains = st.builds(
    lambda inc, exc: PowersetDomain(SPEC, tuple(inc), tuple(exc)),
    st.lists(boxes_within(SPACE), max_size=3),
    st.lists(boxes_within(SPACE), max_size=2),
)


class TestIntervalLaws:
    @given(interval_domains, interval_domains)
    @settings(max_examples=100, deadline=None)
    def test_size_law(self, d1, d2):
        assert check_size_law(d1, d2)

    @given(interval_domains, interval_domains, st.data())
    @settings(max_examples=100, deadline=None)
    def test_subset_law(self, d1, d2, data):
        point = data.draw(points_within(SPACE))
        assert check_subset_law(point, d1, d2)

    @given(interval_domains, interval_domains)
    @settings(max_examples=100, deadline=None)
    def test_intersection_refines_both(self, d1, d2):
        result = d1.intersect(d2)
        assert result.is_subset(d1)
        assert result.is_subset(d2)
        assert check_size_law(result, d1)
        assert check_size_law(result, d2)


class TestPowersetLaws:
    @given(powerset_domains, powerset_domains)
    @settings(max_examples=80, deadline=None)
    def test_size_law(self, d1, d2):
        assert check_size_law(d1, d2)

    @given(powerset_domains, powerset_domains, st.data())
    @settings(max_examples=80, deadline=None)
    def test_subset_law(self, d1, d2, data):
        point = data.draw(points_within(SPACE))
        assert check_subset_law(point, d1, d2)

    @given(powerset_domains, powerset_domains)
    @settings(max_examples=80, deadline=None)
    def test_intersection_refines_both(self, d1, d2):
        result = d1.intersect(d2)
        assert result.is_subset(d1)
        assert result.is_subset(d2)


class TestCrossDomainLaws:
    @given(interval_domains, powerset_domains)
    @settings(max_examples=60, deadline=None)
    def test_interval_subset_of_powerset_is_exact(self, interval, powerset):
        expected = {
            p for p in SPACE.iter_points() if interval.contains(p)
        } <= {p for p in SPACE.iter_points() if powerset.contains(p)}
        assert interval.is_subset(powerset) == expected

    @given(interval_domains)
    @settings(max_examples=60, deadline=None)
    def test_lifting_preserves_size(self, interval):
        assert PowersetDomain.from_interval(interval).size() == interval.size()
