"""Brute-force-checked tests for the decision procedures."""

import pytest
from hypothesis import given, settings

from repro.lang.ast import BoolLit, var
from repro.lang.eval import eval_bool
from repro.solver.boxes import Box
from repro.solver.decide import (
    SolverBudgetExceeded,
    SolverStats,
    count_models,
    decide_exists,
    decide_forall,
    find_model,
    find_true_box,
)
from tests.strategies import bool_exprs, boxes_within

SPACE = Box.make((-8, 12), (0, 15))
NAMES = ("x", "y")


def _brute_force(formula, box):
    return [
        point
        for point in box.iter_points()
        if eval_bool(formula, dict(zip(NAMES, point)))
    ]


class TestDecideForall:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, formula, box):
        expected = len(_brute_force(formula, box)) == box.volume()
        assert decide_forall(formula, box, NAMES) == expected

    def test_trivial_formulas(self):
        assert decide_forall(BoolLit(True), SPACE, NAMES)
        assert not decide_forall(BoolLit(False), SPACE, NAMES)

    def test_nearby_box_inside(self, nearby):
        box = Box.make((150, 250), (150, 250))
        assert decide_forall(nearby, box, NAMES)

    def test_nearby_box_crossing(self, nearby):
        box = Box.make((150, 251), (150, 251))
        assert not decide_forall(nearby, box, NAMES)

    def test_budget_guard(self, nearby):
        stats = SolverStats(max_nodes=2)
        big = Box.make((0, 399), (0, 399))
        with pytest.raises(SolverBudgetExceeded):
            decide_forall(nearby, big, NAMES, stats)


class TestFindModel:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, formula, box):
        witness = find_model(formula, box, NAMES)
        expected = _brute_force(formula, box)
        if witness is None:
            assert not expected
        else:
            assert box.contains(witness)
            assert eval_bool(formula, dict(zip(NAMES, witness)))

    def test_exists_dual(self):
        formula = var("x").eq(3) & var("y").eq(7)
        assert decide_exists(formula, SPACE, NAMES)
        assert not decide_exists(var("x").eq(99), SPACE, NAMES)


class TestCountModels:
    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, formula, box):
        assert count_models(formula, box, NAMES) == len(_brute_force(formula, box))

    @given(bool_exprs(NAMES), boxes_within(SPACE))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_and_pure_agree(self, formula, box):
        vectorized = count_models(formula, box, NAMES)
        pure = count_models(formula, box, NAMES, vector_threshold=0)
        assert vectorized == pure

    def test_diamond_count(self, nearby):
        space = Box.make((0, 399), (0, 399))
        assert count_models(nearby, space, NAMES) == 2 * 100 * 100 + 2 * 100 + 1

    def test_factoring_multiplies_free_dimensions(self):
        # Constraint touches only x; the y dimension factors out.
        formula = var("x") <= 0
        stats = SolverStats()
        count = count_models(formula, SPACE, NAMES, stats)
        assert count == 9 * 16  # x in [-8, 0], y free


class TestFindTrueBox:
    def test_finds_interior_box(self, nearby):
        space = Box.make((0, 399), (0, 399))
        result = find_true_box(nearby, space, NAMES)
        assert result.box is not None
        assert decide_forall(nearby, result.box, NAMES)

    def test_empty_region_exhausts(self):
        result = find_true_box(var("x").eq(99), SPACE, NAMES)
        assert result.box is None
        assert result.exhausted

    def test_budget_exhaustion_reports_not_exhausted(self, nearby):
        space = Box.make((0, 399), (0, 399))
        result = find_true_box(nearby, space, NAMES, max_pops=1)
        assert result.box is None
        assert not result.exhausted
