"""Decision procedures over finite integer boxes.

These four procedures are the solver's public surface, and together they
play the role Z3 plays in the paper:

* :func:`decide_forall` — is ``phi`` true at *every* point of a box?
  (discharges the refinement-type obligations of Figure 4)
* :func:`decide_exists` / :func:`find_model` — is ``phi`` satisfiable in a
  box, and at which point?  (seeds and binary searches in the optimizer)
* :func:`find_true_box` — a large all-true sub-box, best-first by volume
  (the synthesis seed)
* :func:`count_models` — the exact number of satisfying points
  (ground truth for Table 1, and the ``size`` of exact knowledge)

All are complete: queries are quantifier-free formulas over finitely many
bounded integers, abstract evaluation is exact on single-point boxes, and
every split strictly shrinks a dimension, so branch-and-bound terminates
with a definite answer.  Splitting only happens along variables still free
in the *specialized* formula, which guarantees progress and lets whole
dimensions factor out of the count multiplicatively.

Two implementation decisions shape this module (see DESIGN.md):

* **Explicit worklists.**  Every search runs on an explicit stack (or
  heap), never Python recursion, so adversarial queries that slice one
  unit per split cannot blow the interpreter stack.  Visit order matches
  the old recursive formulation exactly (low half first).
* **Pluggable evaluation engines.**  A :class:`KernelEngine` (default)
  drives the search with the compiled closures of
  :mod:`repro.solver.kernels`; an :class:`InterpEngine` drives it with the
  tree-walking interpreter of :mod:`repro.solver.abseval`.  Both make
  identical decisions — same truth values, same split choices, same node
  and split counts — which the differential tests assert.  Vectorized
  small-box finishing (NumPy grids, see :mod:`repro.solver.vectoreval`)
  is available to all four procedures under both engines and is counted
  in :class:`SolverStats`.

A fifth, *fused* procedure backs the optimizer's batched growth rounds:
:func:`decide_forall_front` decides many probe boxes of one formula on a
single shared worklist, parking small undecided sub-boxes and flushing
them in stacked NumPy fronts.  Its engine-parity contract is weaker by
exactly one counter: verdicts, ``nodes``, ``splits``, and ``front_boxes``
are engine-independent, but ``probe_fronts`` (how many stacked
evaluations a flush needs) depends on residual-identity grouping, which
hash-consing makes denser under :class:`KernelEngine`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, fields
from typing import Sequence

from repro.lang.ast import BoolExpr, Expr
from repro.lang.ternary import FALSE, TRUE
from repro.lang.transform import free_vars
from repro.solver import vectoreval
from repro.solver.abseval import specialize
from repro.solver.boxes import Box
from repro.solver.kernels import BoolKernel, KernelSpace
from repro.solver.split import choose_split, split_at, var_bound, walk_atoms

__all__ = [
    "SolverBudgetExceeded",
    "SolverStats",
    "InterpEngine",
    "KernelEngine",
    "make_engine",
    "decide_forall",
    "decide_forall_front",
    "decide_exists",
    "find_model",
    "find_true_box",
    "TrueBoxResult",
    "count_models",
    "small_formula",
    "SMALL_FORMULA_NODE_LIMIT",
]

# Re-exported for tests and external callers of the split heuristics.
_choose_split = choose_split
_var_bound = var_bound
_walk_atoms = walk_atoms
_split_at = split_at


class SolverBudgetExceeded(Exception):
    """Raised when a decision exceeds its node budget (guard, not timeout)."""


@dataclass
class SolverStats:
    """Mutable counters threaded through a decision (observability/tests)."""

    nodes: int = 0
    max_nodes: int | None = None
    splits: int = 0
    #: Sub-boxes finished on a NumPy grid instead of further splitting.
    vector_boxes: int = 0
    #: Fused growth rounds executed by the balanced optimizer.
    fused_rounds: int = 0
    #: Stacked grid evaluations performed by the probe-front decider
    #: (each resolves a whole group of parked boxes in one NumPy pass).
    probe_fronts: int = 0
    #: Parked sub-boxes resolved through stacked probe fronts.
    front_boxes: int = 0

    def tick(self) -> None:
        self.nodes += 1
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            raise SolverBudgetExceeded(
                f"decision exceeded {self.max_nodes} search nodes"
            )

    def merge(self, other: "SolverStats") -> None:
        """Fold another decision's counters into this one."""
        self.nodes += other.nodes
        self.splits += other.splits
        self.vector_boxes += other.vector_boxes
        self.fused_rounds += other.fused_rounds
        self.probe_fronts += other.probe_fronts
        self.front_boxes += other.front_boxes


# ---------------------------------------------------------------------------
# Evaluation engines
# ---------------------------------------------------------------------------


class KernelEngine:
    """Drive the search with compiled kernels (the default, fast path)."""

    uses_kernels = True

    def __init__(
        self,
        names: Sequence[str],
        space: KernelSpace | None = None,
        *,
        legacy_splits: bool = False,
    ):
        self.names = tuple(names)
        self.space = (
            space
            if space is not None
            else KernelSpace(self.names, legacy_splits=legacy_splits)
        )
        self.legacy_splits = self.space.legacy_splits

    def lower(self, phi: BoolExpr | BoolKernel) -> BoolKernel:
        if isinstance(phi, BoolKernel):
            return phi
        return self.space.lower(phi)

    def specialize(self, node: BoolKernel, box: Box):
        return node.specialize(box.bounds)

    def choose_split(self, node: BoolKernel, box: Box) -> tuple[int, int]:
        return node.choose_split(box)

    def free(self, node: BoolKernel) -> frozenset[str]:
        return node.free

    def expr_of(self, node: BoolKernel) -> BoolExpr:
        return node.expr

    def grid_count(self, node: BoolKernel, box: Box) -> int:
        return node.grid_count(box)

    def grid_all(self, node: BoolKernel, box: Box) -> bool:
        return node.grid_all(box)

    def grid_find(self, node: BoolKernel, box: Box) -> tuple[int, ...] | None:
        return node.grid_find(box)

    def grid_mask(self, node: BoolKernel, box: Box):
        return node.grid_mask(box)

    def grid_all_stacked(self, node: BoolKernel, boxes: Sequence[Box]) -> list[bool]:
        return node.grid_all_stacked(boxes)


class InterpEngine:
    """Drive the search with the tree-walking interpreter (reference path)."""

    uses_kernels = False

    def __init__(self, names: Sequence[str], *, legacy_splits: bool = False):
        self.names = tuple(names)
        self.legacy_splits = legacy_splits

    def lower(self, phi: BoolExpr) -> BoolExpr:
        return phi

    def specialize(self, phi: BoolExpr, box: Box):
        shrunk, truth = specialize(phi, dict(zip(self.names, box.bounds)))
        return truth, shrunk

    def choose_split(self, phi: BoolExpr, box: Box) -> tuple[int, int]:
        return choose_split(phi, box, self.names, legacy=self.legacy_splits)

    def free(self, phi: BoolExpr) -> frozenset[str]:
        return free_vars(phi)

    def expr_of(self, phi: BoolExpr) -> BoolExpr:
        return phi

    def grid_count(self, phi: BoolExpr, box: Box) -> int:
        return vectoreval.count_box_vectorized(phi, box, self.names)

    def grid_all(self, phi: BoolExpr, box: Box) -> bool:
        return vectoreval.all_box_vectorized(phi, box, self.names)

    def grid_find(self, phi: BoolExpr, box: Box) -> tuple[int, ...] | None:
        return vectoreval.find_point_vectorized(phi, box, self.names)

    def grid_mask(self, phi: BoolExpr, box: Box):
        return vectoreval.mask_box_vectorized(phi, box, self.names)

    def grid_all_stacked(self, phi: BoolExpr, boxes: Sequence[Box]) -> list[bool]:
        return vectoreval.all_boxes_stacked(phi, boxes, self.names)


#: Formulas at or below this many AST nodes take the interpreter fast
#: path in one-shot :func:`count_models` calls: lowering a tiny formula
#: into kernels costs more than every tree walk it would save (the
#: ``count_models_birthday`` regression in ``BENCH_solver.json``).
SMALL_FORMULA_NODE_LIMIT = 16


def small_formula(phi: Expr, limit: int = SMALL_FORMULA_NODE_LIMIT) -> bool:
    """Whether the formula has at most ``limit`` AST nodes (early exit)."""
    count = 0
    stack: list[Expr] = [phi]
    while stack:
        node = stack.pop()
        count += 1
        if count > limit:
            return False
        for spec in fields(node):
            value = getattr(node, spec.name)
            if isinstance(value, Expr):
                stack.append(value)
            elif isinstance(value, tuple):
                stack.extend(item for item in value if isinstance(item, Expr))
    return True


def make_engine(
    names: Sequence[str], use_kernels: bool = True, *, legacy_splits: bool = False
):
    """An evaluation engine for one variable order.

    Reusing one engine across many decisions (as the optimizers do) shares
    the kernel compilation caches and the specialization memo between
    them, which is where the optimizer's overlapping probes win big.
    ``legacy_splits`` reverts to the pre-kernel split heuristic (benchmark
    baselines only).
    """
    if use_kernels:
        return KernelEngine(names, legacy_splits=legacy_splits)
    return InterpEngine(names, legacy_splits=legacy_splits)


def _resolve(
    engine,
    names: Sequence[str],
    use_kernels: bool,
    stats: SolverStats | None,
    vector_threshold: int | None,
    default_threshold: int,
    legacy_splits: bool = False,
) -> tuple[object, SolverStats, int]:
    if engine is None:
        engine = make_engine(names, use_kernels, legacy_splits=legacy_splits)
    if stats is None:
        stats = SolverStats()
    if vector_threshold is None:
        vector_threshold = default_threshold if vectoreval.AVAILABLE else 0
    return engine, stats, vector_threshold


# ---------------------------------------------------------------------------
# The four decision procedures (explicit worklists)
# ---------------------------------------------------------------------------


def decide_forall(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> bool:
    """Whether every point of ``box`` satisfies ``phi``."""
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_DECIDE_VECTOR_THRESHOLD,
    )
    stack = [(engine.lower(phi), box)]
    # Counters live in locals inside the loop (a method call per node is
    # measurable); the finally block flushes them even on budget raises.
    nodes = splits = vector_boxes = 0
    budget = None if stats.max_nodes is None else stats.max_nodes - stats.nodes
    try:
        while stack:
            node, current = stack.pop()
            nodes += 1
            if budget is not None and nodes > budget:
                raise SolverBudgetExceeded(
                    f"decision exceeded {stats.max_nodes} search nodes"
                )
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                continue
            if truth is FALSE:
                return False
            if 0 < current.volume() <= vt:
                vector_boxes += 1
                if engine.grid_all(shrunk, current):
                    continue
                return False
            splits += 1
            low, high = split_at(current, *engine.choose_split(shrunk, current))
            stack.append((shrunk, high))
            stack.append((shrunk, low))
        return True
    finally:
        stats.nodes += nodes
        stats.splits += splits
        stats.vector_boxes += vector_boxes


#: Flush a probe front once this many boxes are parked.  Bounds the
#: latency between a box becoming decidable and its probe learning the
#: verdict (late verdicts delay pruning of the failing probe's siblings).
FRONT_FLUSH_CAP = 128


def decide_forall_front(
    phi: BoolExpr,
    boxes: Sequence[Box],
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> list[bool]:
    """``decide_forall`` for many probe boxes of one formula, fused.

    All probes run on **one** worklist: the query is lowered once, every
    probe shares the engine's specialization memo, and sufficiently small
    undecided sub-boxes are *parked* instead of being ground out
    individually.  Parked boxes are flushed in *fronts*: grouped by
    (residual kernel, shape) and evaluated with one stacked NumPy pass
    per group (see :func:`repro.solver.vectoreval.make_stacked_grids`).
    A probe whose front entry comes back false is pruned — its remaining
    worklist entries are skipped.

    Verdicts are exactly those of one :func:`decide_forall` call per box
    (grid finishing and fronts are exactness-preserving; conjunction is
    order-independent).  Counter contract: ``nodes``/``splits`` and the
    set of parked boxes (``front_boxes``) are engine-independent, but
    ``probe_fronts`` — the number of stacked evaluations — depends on
    residual *identity* grouping, which hash-consing makes much denser
    under :class:`KernelEngine` than under :class:`InterpEngine`.

    With an explicit ``vector_threshold`` the parking threshold equals
    it (``0`` forces the pure-Python scalar path, as everywhere else);
    by default parking uses the larger
    :data:`~repro.solver.vectoreval.DEFAULT_FRONT_VECTOR_THRESHOLD`,
    because stacking amortizes per-call NumPy overhead over the front.
    """
    if engine is None:
        engine = make_engine(names, use_kernels)
    if stats is None:
        stats = SolverStats()
    if vector_threshold is None:
        fvt = (
            vectoreval.DEFAULT_FRONT_VECTOR_THRESHOLD if vectoreval.AVAILABLE else 0
        )
    else:
        fvt = vector_threshold
    verdicts: list[bool | None] = [None] * len(boxes)
    root = engine.lower(phi)
    stack = [
        (index, root, box) for index, box in reversed(list(enumerate(boxes)))
    ]
    parked: list[tuple[int, object, Box]] = []
    nodes = splits = front_boxes = fronts = 0
    budget = None if stats.max_nodes is None else stats.max_nodes - stats.nodes

    def flush() -> None:
        nonlocal fronts, front_boxes
        groups: dict[tuple[int, tuple[int, ...]], list[tuple[int, object, Box]]] = {}
        for entry in parked:
            index, node, box = entry
            if verdicts[index] is False:
                continue  # probe already failed; skip the stale park
            groups.setdefault((id(node), box.widths()), []).append(entry)
        parked.clear()
        for entries in groups.values():
            fronts += 1
            front_boxes += len(entries)
            if len(entries) == 1:
                # Singleton group: the scalar grid path, without the
                # batch-axis reshaping overhead.
                index, node, box = entries[0]
                if not engine.grid_all(node, box):
                    verdicts[index] = False
                continue
            flat = engine.grid_all_stacked(
                entries[0][1], [box for _, _, box in entries]
            )
            for (index, _, _), all_true in zip(entries, flat):
                if not all_true:
                    verdicts[index] = False

    try:
        while stack:
            index, node, current = stack.pop()
            if verdicts[index] is False:
                continue
            nodes += 1
            if budget is not None and nodes > budget:
                raise SolverBudgetExceeded(
                    f"decision exceeded {stats.max_nodes} search nodes"
                )
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                continue
            if truth is FALSE:
                verdicts[index] = False
                continue
            if 0 < current.volume() <= fvt:
                parked.append((index, shrunk, current))
                if len(parked) >= FRONT_FLUSH_CAP:
                    flush()
                continue
            splits += 1
            low, high = split_at(current, *engine.choose_split(shrunk, current))
            stack.append((index, shrunk, high))
            stack.append((index, shrunk, low))
        if parked:
            flush()
        return [verdict is not False for verdict in verdicts]
    finally:
        stats.nodes += nodes
        stats.splits += splits
        stats.probe_fronts += fronts
        stats.front_boxes += front_boxes


def find_model(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> tuple[int, ...] | None:
    """A point of ``box`` satisfying ``phi``, or ``None`` if none exists."""
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_DECIDE_VECTOR_THRESHOLD,
    )
    stack = [(engine.lower(phi), box)]
    nodes = splits = vector_boxes = 0
    budget = None if stats.max_nodes is None else stats.max_nodes - stats.nodes
    try:
        while stack:
            node, current = stack.pop()
            nodes += 1
            if budget is not None and nodes > budget:
                raise SolverBudgetExceeded(
                    f"decision exceeded {stats.max_nodes} search nodes"
                )
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                return current.any_point()
            if truth is FALSE:
                continue
            if 0 < current.volume() <= vt:
                vector_boxes += 1
                witness = engine.grid_find(shrunk, current)
                if witness is not None:
                    return witness
                continue
            splits += 1
            low, high = split_at(current, *engine.choose_split(shrunk, current))
            stack.append((shrunk, high))
            stack.append((shrunk, low))
        return None
    finally:
        stats.nodes += nodes
        stats.splits += splits
        stats.vector_boxes += vector_boxes


def decide_exists(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
) -> bool:
    """Whether some point of ``box`` satisfies ``phi``."""
    return (
        find_model(
            phi,
            box,
            names,
            stats,
            engine=engine,
            use_kernels=use_kernels,
            vector_threshold=vector_threshold,
        )
        is not None
    )


@dataclass(frozen=True)
class TrueBoxResult:
    """Result of :func:`find_true_box`."""

    box: Box | None
    #: True when the search space was exhausted, i.e. ``box is None`` proves
    #: the region empty rather than reflecting a spent budget.
    exhausted: bool


def find_true_box(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    max_pops: int = 100_000,
    stats: SolverStats | None = None,
    *,
    engine=None,
    use_kernels: bool = True,
    vector_threshold: int | None = None,
    seed_boxes: Sequence[Box] | None = None,
) -> TrueBoxResult:
    """Search for a *large* all-true sub-box, best-first by volume.

    Used to seed the maximal-box optimizer: expanding from a fat core box
    converges much faster (and to better Pareto points) than expanding from
    a single witness point.

    ``seed_boxes`` warm-starts the search from a cover of the region
    instead of the whole ``box``: the iterative powerset synthesizer
    passes the residue pieces of the space (previous iterations' accepted
    boxes carved out), so later iterations never re-split through regions
    their own exclusion conjuncts already falsify.  The caller guarantees
    the seeds jointly cover every satisfying point of ``phi`` inside
    ``box`` — then ``exhausted`` keeps its meaning for the whole space.
    """
    # The seeder defaults to the larger *front* threshold: it evaluates
    # one mask per small subtree and decides every descendant by slicing,
    # so a bigger grid amortizes over the whole subtree instead of paying
    # one NumPy call per box (measured on the cold-compile benchmark).
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_FRONT_VECTOR_THRESHOLD,
    )
    root = engine.lower(phi)
    if seed_boxes is None:
        counter = 0
        heap = [(-box.volume(), counter, box, root, None)]
    else:
        counter = -1
        heap = []
        for seed in seed_boxes:
            counter += 1
            heap.append((-seed.volume(), counter, seed, root, None))
        heapq.heapify(heap)
    pops = 0
    while heap and pops < max_pops:
        neg_volume, _, current, node, mask = heapq.heappop(heap)
        pops += 1
        stats.nodes += 1
        if stats.max_nodes is not None and stats.nodes > stats.max_nodes:
            raise SolverBudgetExceeded(
                f"decision exceeded {stats.max_nodes} search nodes"
            )
        if mask is not None:
            # An ancestor already evaluated this subtree's mask; deciding a
            # sub-box is a slice + sum, not a re-evaluation.
            satisfied = int(mask.sum())
            if satisfied == -neg_volume:
                return TrueBoxResult(current, exhausted=False)
            if satisfied == 0:
                continue
            # Mixed: abstraction cannot be decided either (it is sound),
            # so specialize only to shrink the formula for splitting.
            _, shrunk = engine.specialize(node, current)
        else:
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                return TrueBoxResult(current, exhausted=False)
            if truth is FALSE:
                continue
            if 0 < current.volume() <= vt:
                # One grid pass per subtree decides everything below it.
                stats.vector_boxes += 1
                mask = engine.grid_mask(shrunk, current)
                satisfied = int(mask.sum())
                if satisfied == current.volume():
                    return TrueBoxResult(current, exhausted=False)
                if satisfied == 0:
                    continue
        stats.splits += 1
        for half in split_at(current, *engine.choose_split(shrunk, current)):
            counter += 1
            sub_mask = None
            if mask is not None:
                sub_mask = mask[
                    tuple(
                        slice(lo - plo, hi - plo + 1)
                        for (lo, hi), (plo, _) in zip(half.bounds, current.bounds)
                    )
                ]
            heapq.heappush(
                heap, (-half.volume(), counter, half, shrunk, sub_mask)
            )
    return TrueBoxResult(None, exhausted=not heap)


def count_models(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    vector_threshold: int | None = None,
    engine=None,
    use_kernels: bool = True,
    legacy_splits: bool = False,
) -> int:
    """Exact number of points of ``box`` satisfying ``phi``.

    Dimensions that drop out of the specialized formula are factored out
    multiplicatively, so e.g. a constraint touching only 2 of 4 secret
    fields is counted on the 2-dimensional projection.  Undecided boxes at
    or below ``vector_threshold`` points are finished exactly on NumPy
    grids (see :mod:`repro.solver.vectoreval`); pass ``0`` to force the
    pure-Python path.

    One-shot calls (no shared ``engine``) on small formulas run on the
    interpreter engine even when ``use_kernels`` is set: kernel lowering
    cannot amortize over a single tiny count, and both engines are
    decision- and counter-identical, so only the constant factor changes.
    """
    if engine is None and use_kernels and small_formula(phi):
        use_kernels = False
    engine, stats, vt = _resolve(
        engine, names, use_kernels, stats, vector_threshold,
        vectoreval.DEFAULT_VECTOR_THRESHOLD, legacy_splits,
    )
    names = tuple(names)
    total = 0
    stack = [(engine.lower(phi), box)]
    nodes = splits = vector_boxes = 0
    budget = None if stats.max_nodes is None else stats.max_nodes - stats.nodes
    try:
        while stack:
            node, current = stack.pop()
            nodes += 1
            if budget is not None and nodes > budget:
                raise SolverBudgetExceeded(
                    f"decision exceeded {stats.max_nodes} search nodes"
                )
            truth, shrunk = engine.specialize(node, current)
            if truth is TRUE:
                total += current.volume()
                continue
            if truth is FALSE:
                continue
            live = engine.free(shrunk)
            factor = 1
            for name, (lo, hi) in zip(names, current.bounds):
                if name not in live:
                    factor *= hi - lo + 1
            if factor > 1:
                # Project onto the live dimensions and count there.  This is
                # the only (bounded) recursion left: each projection strictly
                # reduces the arity, so the depth is at most len(names).
                kept = [i for i, name in enumerate(names) if name in live]
                sub_box = Box(tuple(current.bounds[i] for i in kept))
                sub_names = tuple(names[i] for i in kept)
                # Flush before recursing so the inner call sees the budget.
                stats.nodes += nodes
                stats.splits += splits
                stats.vector_boxes += vector_boxes
                nodes = splits = vector_boxes = 0
                try:
                    # The projected engine must inherit the caller's full
                    # configuration, not just the kernel/interpreter choice.
                    total += factor * count_models(
                        engine.expr_of(shrunk),
                        sub_box,
                        sub_names,
                        stats,
                        vector_threshold=vt,
                        use_kernels=engine.uses_kernels,
                        legacy_splits=engine.legacy_splits,
                    )
                finally:
                    budget = (
                        None
                        if stats.max_nodes is None
                        else stats.max_nodes - stats.nodes
                    )
                continue
            if 0 < current.volume() <= vt:
                vector_boxes += 1
                total += engine.grid_count(shrunk, current)
                continue
            splits += 1
            low, high = split_at(current, *engine.choose_split(shrunk, current))
            stack.append((shrunk, high))
            stack.append((shrunk, low))
        return total
    finally:
        stats.nodes += nodes
        stats.splits += splits
        stats.vector_boxes += vector_boxes
