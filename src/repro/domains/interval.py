"""``AInt`` — one-dimensional integer intervals (paper section 2.2).

The paper's ``data AInt = AInt {lower :: Int, upper :: Int}``.  The
n-dimensional interval domain :class:`repro.domains.box.IntervalDomain`
is a product of these, exactly as ``A_I``'s ``dom :: [AInt]``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AInt"]


@dataclass(frozen=True, order=True)
class AInt:
    """A non-empty integer interval ``[lower, upper]``."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"empty interval [{self.lower}, {self.upper}]")

    @property
    def width(self) -> int:
        """Number of integers in the interval."""
        return self.upper - self.lower + 1

    def contains(self, value: int) -> bool:
        """Membership test."""
        return self.lower <= value <= self.upper

    def is_subset(self, other: "AInt") -> bool:
        """Whether this interval is contained in ``other``."""
        return other.lower <= self.lower and self.upper <= other.upper

    def intersect(self, other: "AInt") -> "AInt | None":
        """Intersection, or ``None`` when disjoint."""
        lo = max(self.lower, other.lower)
        hi = min(self.upper, other.upper)
        if lo > hi:
            return None
        return AInt(lo, hi)

    def hull(self, other: "AInt") -> "AInt":
        """Smallest interval containing both."""
        return AInt(min(self.lower, other.lower), max(self.upper, other.upper))

    def as_pair(self) -> tuple[int, int]:
        """The ``(lower, upper)`` tuple used by the solver."""
        return (self.lower, self.upper)

    def __repr__(self) -> str:
        return f"AInt({self.lower}, {self.upper})"
