"""The persistent artifact store: compiled queries that survive restarts.

A serving fleet cannot afford to re-run synthesis because a process was
rescheduled.  :class:`SQLiteStore` is a durable, content-addressed table of
compiled-query artifacts that speaks the existing cache vocabulary — keys
are :func:`~repro.service.cache.cache_key` hashes, payloads are
:func:`~repro.service.serialize.compiled_query_to_json` encodings, and the
file records :data:`~repro.service.cache.CACHE_FORMAT_VERSION` so a store
written by an incompatible codec fails loudly instead of deserializing
garbage proofs.

It implements the :class:`~repro.service.cache.CacheBackend` protocol, so
``SynthesisCache(backend=SQLiteStore(path))`` warm-starts a whole process:
every artifact ever served by any shard is decoded into memory on boot and
every new compile is written through.  :meth:`export_cache_json` /
:meth:`import_cache_json` interoperate with the flat-file format of
:meth:`SynthesisCache.save <repro.service.cache.SynthesisCache.save>`, so
existing warm-start files migrate into a store (and back) losslessly.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from repro.service.cache import CACHE_FORMAT_VERSION

__all__ = ["StoreFormatError", "SQLiteStore"]


class StoreFormatError(RuntimeError):
    """The store was written by an incompatible artifact codec."""


class SQLiteStore:
    """A durable content-addressed store of compiled-query payloads.

    Safe for concurrent use from one process (one lock around the shared
    connection); concurrent *processes* are serialized by SQLite itself.
    ``path`` may be ``":memory:"`` for tests.
    """

    def __init__(self, path: str | Path, *, timeout: float = 10.0):
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        try:
            with self._lock, self._conn:
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT)"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS artifacts ("
                    "  key TEXT PRIMARY KEY,"
                    "  payload TEXT NOT NULL,"
                    "  created_at REAL NOT NULL"
                    ")"
                )
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key = 'format_version'"
                ).fetchone()
                if row is None:
                    self._conn.execute(
                        "INSERT INTO meta (key, value) "
                        "VALUES ('format_version', ?)",
                        (str(CACHE_FORMAT_VERSION),),
                    )
                elif int(row[0]) != CACHE_FORMAT_VERSION:
                    raise StoreFormatError(
                        f"store {self.path!r} has format version {row[0]}, "
                        f"this codec speaks {CACHE_FORMAT_VERSION}"
                    )
        except BaseException:
            # Refusing an incompatible store must not leak its handle.
            self._conn.close()
            raise

    # -- CacheBackend protocol ---------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored artifact payload for a key, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Durably store a payload under its content hash (last write wins)."""
        blob = json.dumps(payload, sort_keys=True)
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO artifacts (key, payload, created_at) "
                "VALUES (?, ?, ?)",
                (key, blob, time.time()),
            )

    def keys(self) -> Iterator[str]:
        """The stored keys (insertion order)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM artifacts ORDER BY created_at, key"
            ).fetchall()
        return iter(row[0] for row in rows)

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """All ``(key, payload)`` pairs in one scan (the warm-start read)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, payload FROM artifacts ORDER BY created_at, key"
            ).fetchall()
        return iter((key, json.loads(blob)) for key, blob in rows)

    # -- conveniences --------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM artifacts"
            ).fetchone()
        return int(count)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- flat-file interop ---------------------------------------------------
    def export_cache_json(self, path: str | Path) -> int:
        """Write the store as a ``SynthesisCache.save`` file; returns count."""
        entries = dict(self.items())
        Path(path).write_text(
            json.dumps(
                {"version": CACHE_FORMAT_VERSION, "entries": entries},
                sort_keys=True,
            )
        )
        return len(entries)

    def import_cache_json(self, path: str | Path) -> int:
        """Absorb a ``SynthesisCache.save`` file; returns entries imported."""
        data = json.loads(Path(path).read_text())
        version = data.get("version")
        if version != CACHE_FORMAT_VERSION:
            raise StoreFormatError(
                f"cache file {str(path)!r} has format version {version!r}, "
                f"this codec speaks {CACHE_FORMAT_VERSION}"
            )
        for key, payload in data["entries"].items():
            self.put(key, payload)
        return len(data["entries"])
