"""Experiment drivers regenerating every table and figure of the paper.

==========  ==========================================  =============================
Experiment  Paper artifact                              Module
==========  ==========================================  =============================
E1          Table 1 (exact ind.-set sizes)              :mod:`repro.experiments.table1`
E2          Figure 5a (interval domain)                 :mod:`repro.experiments.figure5`
E3          Figure 5b (powersets, k=3)                  :mod:`repro.experiments.figure5`
E4          Figure 6 (sequential declassification)      :mod:`repro.experiments.figure6`
E5          Section 6.1 Prob comparison                 :mod:`repro.experiments.probcompare`
A1-A3       Ablations                                   :mod:`repro.experiments.ablations`
==========  ==========================================  =============================

Each module is runnable as ``python -m repro.experiments.<name>``.
"""

from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.probcompare import run_probcompare
from repro.experiments.table1 import run_table1

__all__ = ["run_figure5", "run_figure6", "run_probcompare", "run_table1"]
