"""Vectorized (NumPy) evaluation of query formulas over small boxes.

The branch-and-bound procedures handle enormous spaces by splitting, but
the cells straddling constraint boundaries must eventually be resolved at
unit resolution — expensive in pure Python for benchmarks like B4 (Pizza),
whose Manhattan-ball boundary crosses ~10^5 cells.  When a sub-box is
small enough, it is far cheaper to evaluate the formula *for every point
at once* on NumPy integer grids and reduce the boolean mask.

This module is an exactness-preserving accelerator shared by both solver
engines: it computes precisely the set ``{x in box | phi(x)}``, just
vectorized.  The tree-walking evaluator here serves the interpreter
engine; the compiled grid kernels of :mod:`repro.solver.kernels` produce
the same masks and reuse the :func:`mask_count` / :func:`mask_all` /
:func:`mask_find` reductions, so the two paths cannot diverge on how a
mask is turned into an answer.  Everything stays pure-Python-correct
without NumPy installed (``AVAILABLE`` guards the fast paths; thresholds
collapse to 0 and the procedures split all the way down).
"""

from __future__ import annotations

from typing import Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in this repo's env
    _np = None

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    CmpOp,
    Iff,
    Implies,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.solver.boxes import Box

__all__ = [
    "AVAILABLE",
    "DEFAULT_VECTOR_THRESHOLD",
    "DEFAULT_DECIDE_VECTOR_THRESHOLD",
    "DEFAULT_FRONT_VECTOR_THRESHOLD",
    "DEFAULT_GROWTH_WINDOW_CELLS",
    "MaskTable",
    "require_numpy",
    "make_grids",
    "make_stacked_grids",
    "mask_count",
    "mask_all",
    "mask_array",
    "mask_find",
    "stacked_mask_all",
    "count_box_vectorized",
    "all_box_vectorized",
    "find_point_vectorized",
    "mask_box_vectorized",
    "all_boxes_stacked",
]

AVAILABLE = _np is not None

#: Boxes up to this many points are counted on a grid; chosen so the
#: working set (a handful of int64 arrays) stays near ~100 MB.
DEFAULT_VECTOR_THRESHOLD = 4_000_000

#: Boxes up to this many points are *decided* on a grid (forall/exists/
#: seeding).  Deliberately much smaller than the counting threshold:
#: decisions usually die early by abstraction, so the grid should only
#: absorb the boundary cells where splitting degenerates to unit work.
#: 1024 measured best on the paper's Manhattan-ball benchmarks (see
#: benchmarks/test_solver_perf.py).
DEFAULT_DECIDE_VECTOR_THRESHOLD = 1024

#: Boxes up to this many points are *parked* by the fused probe-front
#: decider (:func:`repro.solver.decide.decide_forall_front`) and finished
#: in stacked batches.  Larger than the scalar decide threshold: stacking
#: amortizes the per-call NumPy overhead over a whole front, so trading
#: Python splits for grid cells pays off earlier (4096 measured best on
#: the Manhattan-ball compile benchmark, see benchmarks/test_solver_perf.py).
DEFAULT_FRONT_VECTOR_THRESHOLD = 4096

#: Cell budget for the balanced optimizer's *growth window*: one mask
#: evaluation covering the whole doubling neighborhood of the seed box,
#: from which every face probe of every round is answered by slicing.
#: Chosen so a full window (a handful of int64 intermediates) stays a
#: few megabytes; growth beyond the window refreshes it, and spaces too
#: large for any window fall back to fused probe fronts.
DEFAULT_GROWTH_WINDOW_CELLS = 1 << 18


def require_numpy():
    """NumPy, or a loud error where a caller forgot to check ``AVAILABLE``."""
    if _np is None:  # pragma: no cover - numpy present in the dev env
        raise RuntimeError("NumPy is not available")
    return _np


#: Small cache of ``arange`` axes: the solver's splitting produces the same
#: coordinate ranges over and over (slab probes, bisection halves).  Only
#: short axes are cached — the cap is on *elements*, not entries, so a
#: sweep of near-threshold 1-D counting boxes cannot pin gigabytes.
_AXIS_CACHE: dict[tuple[int, int, int, int], object] = {}
_AXIS_CACHE_CAP = 4096
_AXIS_CACHE_MAX_WIDTH = 4096


def _axis(lo: int, hi: int, dim: int, arity: int):
    """A (possibly cached) ``arange(lo, hi+1)`` broadcastable along ``dim``."""
    key = (lo, hi, dim, arity)
    axis = _AXIS_CACHE.get(key)
    if axis is None:
        np = require_numpy()
        shape = [1] * arity
        width = hi - lo + 1
        shape[dim] = width
        axis = np.arange(lo, hi + 1, dtype=np.int64).reshape(shape)
        if width <= _AXIS_CACHE_MAX_WIDTH:
            if len(_AXIS_CACHE) >= _AXIS_CACHE_CAP:
                _AXIS_CACHE.clear()
            _AXIS_CACHE[key] = axis
    return axis


def make_grids(box: Box) -> tuple:
    """Sparse (open) integer grids of a box, one int64 axis per dimension.

    The tuple is positional — aligned with the box's dimension order,
    which by solver convention is the variable order.  Each axis is shaped
    to broadcast against the others (the classic sparse meshgrid), and
    axes are cached because branch-and-bound revisits coordinate ranges
    constantly.
    """
    arity = box.arity
    return tuple(
        _axis(lo, hi, dim, arity) for dim, (lo, hi) in enumerate(box.bounds)
    )


class MaskTable:
    """O(2^d) box-count queries over a boolean mask (summed-area table).

    Built from one full-space satisfaction mask, the table answers "how
    many cells of this sub-box are true?" by inclusion-exclusion over the
    box's ``2^d`` corners — no slicing, no reductions, no per-query NumPy
    call graph.  This is what turns one stacked grid evaluation into an
    oracle for *every* probe of a synthesis run (see
    :class:`repro.solver.optimize.RegionOracle`).

    Lookups go through flat indices and ``ndarray.item`` — a probe costs
    ``2^d`` scalar reads, a few hundred nanoseconds each, which is what
    lets one table absorb hundreds of probes per synthesis run.
    """

    __slots__ = ("base", "flat", "strides", "arity")

    def __init__(self, mask, box: Box):
        np = require_numpy()
        self.base = tuple(lo for lo, _ in box.bounds)
        self.arity = box.arity
        # One zero layer on every low edge so corner lookups never branch.
        table = np.zeros(tuple(w + 1 for w in box.widths()), dtype=np.int64)
        table[(slice(1, None),) * box.arity] = np.broadcast_to(mask, box.widths())
        for dim in range(box.arity):
            np.cumsum(table, axis=dim, out=table)
        self.strides = tuple(
            stride // table.itemsize for stride in table.strides
        )
        self.flat = table.reshape(-1)

    def count(self, bounds: Sequence[tuple[int, int]]) -> int:
        """Number of true cells inside the (absolute-coordinate) box."""
        item = self.flat.item
        base = self.base
        strides = self.strides
        if self.arity == 2:
            (alo, ahi), (blo, bhi) = bounds
            b0, b1 = base
            s0, s1 = strides
            a_hi = (ahi - b0 + 1) * s0
            a_lo = (alo - b0) * s0
            c_hi = (bhi - b1 + 1) * s1
            c_lo = (blo - b1) * s1
            return (
                item(a_hi + c_hi)
                - item(a_hi + c_lo)
                - item(a_lo + c_hi)
                + item(a_lo + c_lo)
            )
        total = 0
        for corner in range(1 << self.arity):
            offset = 0
            sign = 1
            for dim, (lo, hi) in enumerate(bounds):
                if corner >> dim & 1:
                    offset += (hi - base[dim] + 1) * strides[dim]
                else:
                    offset += (lo - base[dim]) * strides[dim]
                    sign = -sign
            total += sign * item(offset)
        return total


def make_stacked_grids(boxes: Sequence[Box]) -> tuple:
    """Sparse integer grids for a *stack* of same-shaped boxes.

    Axis ``dim`` has shape ``(len(boxes), 1, …, w_dim, …, 1)`` — a leading
    batch axis over the boxes, then the usual sparse meshgrid layout.  Any
    formula evaluator that broadcasts (both the tree-walking evaluator here
    and the compiled grid kernels) therefore evaluates *every box of the
    front at once*; the per-box verdicts come back from
    :func:`stacked_mask_all`.  All boxes must share ``widths()``.
    """
    np = require_numpy()
    first = boxes[0]
    arity = first.arity
    count = len(boxes)
    batch_shape = (count,) + (1,) * arity
    grids = []
    for dim, width in enumerate(first.widths()):
        base = _axis(0, width - 1, dim, arity)
        los = np.fromiter(
            (box.bounds[dim][0] for box in boxes), dtype=np.int64, count=count
        )
        grids.append(los.reshape(batch_shape) + base)
    return tuple(grids)


def stacked_mask_all(result, boxes: Sequence[Box]) -> list[bool]:
    """Per-box ``all()`` reduction of a stacked-front evaluation mask."""
    count = len(boxes)
    if result is True:
        return [True] * count
    if result is False:
        return [False] * count
    np = require_numpy()
    full = np.broadcast_to(
        np.asarray(result, dtype=bool), (count,) + boxes[0].widths()
    )
    return [bool(v) for v in full.reshape(count, -1).all(axis=1)]


# ---------------------------------------------------------------------------
# Mask reductions (shared with the compiled grid kernels)
# ---------------------------------------------------------------------------


def _full_mask(result, box: Box):
    np = require_numpy()
    widths = box.widths()
    if getattr(result, "shape", None) == widths:
        return result
    return np.broadcast_to(np.asarray(result, dtype=bool), widths)


def mask_count(result, box: Box) -> int:
    """Number of true cells of an evaluation mask over ``box``."""
    if result is True:
        return box.volume()
    if result is False:
        return 0
    if getattr(result, "shape", None) == box.widths():
        # Fast path: the formula touched every dimension, the mask is full.
        return int(result.sum())
    return int(_full_mask(result, box).sum())


def mask_all(result, box: Box) -> bool:
    """Whether the mask is true on every cell of ``box``."""
    if result is True or result is False:
        return result
    # ``all`` is broadcast-invariant: a sparse mask is all-true iff its
    # broadcast expansion is.
    return bool(require_numpy().all(result))


def mask_array(result, box: Box):
    """The mask as a full boolean array over the box (broadcast view).

    Used when the caller wants to keep the mask around — e.g. the
    best-first seeder evaluates one mask per small subtree and lets every
    descendant decide by slicing it instead of re-evaluating.
    """
    return _full_mask(result, box)


def mask_find(result, box: Box) -> tuple[int, ...] | None:
    """The first true point of the mask in grid (C) order, or ``None``."""
    if result is False:
        return None
    if result is True:
        return tuple(lo for lo, _ in box.bounds)
    np = require_numpy()
    full = _full_mask(result, box)
    flat_index = int(np.argmax(full))
    if not full.flat[flat_index]:
        return None
    coords = np.unravel_index(flat_index, full.shape)
    return tuple(int(c) + lo for c, (lo, _) in zip(coords, box.bounds))


# ---------------------------------------------------------------------------
# Tree-walking grid evaluation (the interpreter engine's vector path)
# ---------------------------------------------------------------------------


def _eval_int(expr: IntExpr, grids: dict[str, "object"]):
    match expr:
        case Lit(value):
            return value
        case Var(name):
            return grids[name]
        case Add(left, right):
            return _eval_int(left, grids) + _eval_int(right, grids)
        case Sub(left, right):
            return _eval_int(left, grids) - _eval_int(right, grids)
        case Neg(arg):
            return -_eval_int(arg, grids)
        case Scale(coeff, arg):
            return coeff * _eval_int(arg, grids)
        case Abs(arg):
            return _np.abs(_eval_int(arg, grids))
        case Min(left, right):
            return _np.minimum(_eval_int(left, grids), _eval_int(right, grids))
        case Max(left, right):
            return _np.maximum(_eval_int(left, grids), _eval_int(right, grids))
        case IntIte(cond, then_branch, else_branch):
            return _np.where(
                _eval_bool(cond, grids),
                _eval_int(then_branch, grids),
                _eval_int(else_branch, grids),
            )
        case _:
            raise TypeError(f"not an integer expression: {expr!r}")


_CMP_NUMPY = {
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.GE: lambda a, b: a >= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
}


def _eval_bool(expr: BoolExpr, grids: dict[str, "object"]):
    match expr:
        case BoolLit(value):
            return value
        case Cmp(op, left, right):
            return _CMP_NUMPY[op](_eval_int(left, grids), _eval_int(right, grids))
        case And(args):
            result = True
            for arg in args:
                result = result & _eval_bool(arg, grids)
            return result
        case Or(args):
            result = False
            for arg in args:
                result = result | _eval_bool(arg, grids)
            return result
        case Not(arg):
            # logical_not, not ``~``: scalar Python bools would become ints.
            return _np.logical_not(_eval_bool(arg, grids))
        case Implies(antecedent, consequent):
            return _np.logical_not(_eval_bool(antecedent, grids)) | _eval_bool(
                consequent, grids
            )
        case Iff(left, right):
            return _eval_bool(left, grids) == _eval_bool(right, grids)
        case InSet(arg, values):
            inner = _eval_int(arg, grids)
            return _np.isin(inner, _np.array(sorted(values), dtype=_np.int64))
        case _:
            raise TypeError(f"not a boolean expression: {expr!r}")


def _evaluate(phi: BoolExpr, box: Box, names: Sequence[str]):
    grids = dict(zip(names, make_grids(box)))
    return _eval_bool(phi, grids)


def count_box_vectorized(phi: BoolExpr, box: Box, names: Sequence[str]) -> int:
    """Exact model count of ``phi`` on ``box`` via grid evaluation.

    The caller is responsible for checking :data:`AVAILABLE` and for
    keeping ``box.volume()`` within a sane threshold.
    """
    return mask_count(_evaluate(phi, box, names), box)


def all_box_vectorized(phi: BoolExpr, box: Box, names: Sequence[str]) -> bool:
    """Whether every point of ``box`` satisfies ``phi`` (grid evaluation)."""
    return mask_all(_evaluate(phi, box, names), box)


def find_point_vectorized(
    phi: BoolExpr, box: Box, names: Sequence[str]
) -> tuple[int, ...] | None:
    """First satisfying point of ``box`` in grid order, or ``None``."""
    return mask_find(_evaluate(phi, box, names), box)


def mask_box_vectorized(phi: BoolExpr, box: Box, names: Sequence[str]):
    """The full boolean satisfaction mask of ``phi`` over ``box``."""
    return mask_array(_evaluate(phi, box, names), box)


def all_boxes_stacked(
    phi: BoolExpr, boxes: Sequence[Box], names: Sequence[str]
) -> list[bool]:
    """Per-box ``forall`` of ``phi`` over a stack of same-shaped boxes.

    The interpreter engine's side of one fused probe-front flush: one
    tree walk over batched grids instead of one walk per box.
    """
    grids = dict(zip(names, make_stacked_grids(boxes)))
    return stacked_mask_all(_eval_bool(phi, grids), boxes)
