"""A small Prometheus text-exposition (0.0.4) parser and validator.

Used by tests/obs/test_metrics.py and test_endpoints.py, and by the CI
``metrics`` job, to check that what the edge serves at ``/metrics`` is
well-formed: every sample belongs to a ``# TYPE``-declared family,
histogram buckets are cumulative and consistent with ``_count``, and
values parse.  Deliberately tiny — it parses what
:meth:`repro.obs.metrics.MetricsRegistry.exposition` emits, not the
whole Prometheus grammar.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass
class Family:
    """One metric family: its declared type, help, and samples."""

    name: str
    kind: str
    help: str = ""
    #: ``(sample_name, frozenset(labels.items())) -> value``
    samples: dict[tuple[str, frozenset], float] = field(default_factory=dict)


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _family_of(sample_name: str, families: dict[str, Family]) -> Family | None:
    """The declared family a sample belongs to (histogram suffixes ok)."""
    if sample_name in families:
        return families[sample_name]
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = families.get(sample_name[: -len(suffix)])
            if family is not None and family.kind == "histogram":
                return family
    return None


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse and validate one exposition; raises ``ValueError`` on junk.

    Validations: samples only under a declared ``# TYPE``; parseable
    values; per-series histogram buckets cumulative (non-decreasing in
    ``le``) with the ``+Inf`` bucket equal to ``_count``.
    """
    families: dict[str, Family] = {}
    buckets: dict[tuple[str, frozenset], list[tuple[float, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, Family(name, "untyped")).help = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            family = families.setdefault(name, Family(name, kind))
            family.kind = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = match.group("name")
        labels = {
            key: _unescape(value)
            for key, value in _LABEL.findall(match.group("labels") or "")
        }
        value = _parse_value(match.group("value"))
        family = _family_of(sample_name, families)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE"
            )
        key = (sample_name, frozenset(labels.items()))
        if key in family.samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        family.samples[key] = value
        if family.kind == "histogram" and sample_name.endswith("_bucket"):
            series = frozenset(
                item for item in labels.items() if item[0] != "le"
            )
            buckets.setdefault((family.name, series), []).append(
                (_parse_value(labels["le"]), value)
            )

    for (name, series), pairs in buckets.items():
        ordered = sorted(pairs)
        counts = [count for _, count in ordered]
        if counts != sorted(counts):
            raise ValueError(f"{name}{dict(series)}: buckets not cumulative")
        if not ordered or ordered[-1][0] != math.inf:
            raise ValueError(f"{name}{dict(series)}: missing +Inf bucket")
        total = families[name].samples.get((f"{name}_count", series))
        if total is not None and total != ordered[-1][1]:
            raise ValueError(
                f"{name}{dict(series)}: +Inf bucket {ordered[-1][1]} "
                f"!= count {total}"
            )
    return families
