"""Tests for the AnosyT bounded-downgrade transformer (Figure 2)."""

import pytest

from repro.core.plugin import CompileOptions, QueryRegistry
from repro.lang.ast import var
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import AnosyT, PolicyViolation, UnknownQuery
from repro.monad.policy import size_above
from repro.monad.protected import ProtectedSecret
from repro.monad.secure import SecureRuntime

SPEC = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))


def _nearby(ox, oy):
    x, y = var("x"), var("y")
    return abs(x - ox) + abs(y - oy) <= 100


@pytest.fixture(scope="module")
def registry():
    registry = QueryRegistry()
    options = CompileOptions(modes=("under", "over"))
    for ox, oy in [(200, 200), (300, 200), (400, 200)]:
        registry.compile_and_register(f"nearby_{ox}_{oy}", _nearby(ox, oy), SPEC, options)
    return registry


def _session(registry, **kwargs):
    return AnosyT(SecureRuntime(), size_above(100), registry, **kwargs)


class TestPaperSection3Scenario:
    """The running example: secret at (300, 200), three nearby queries."""

    def test_first_two_queries_authorized_third_rejected(self, registry):
        session = _session(registry)
        secret = ProtectedSecret.seal(SPEC, (300, 200))
        assert session.downgrade(secret, "nearby_200_200") is True
        assert session.downgrade(secret, "nearby_300_200") is True
        with pytest.raises(PolicyViolation):
            session.downgrade(secret, "nearby_400_200")
        assert session.authorized_count() == 2

    def test_knowledge_shrinks_monotonically(self, registry):
        session = _session(registry)
        secret = ProtectedSecret.seal(SPEC, (300, 200))
        session.downgrade(secret, "nearby_200_200")
        first = session.knowledge_of(secret)
        session.downgrade(secret, "nearby_300_200")
        second = session.knowledge_of(secret)
        assert second.is_subset(first)
        assert second.size() <= first.size()

    def test_history_records_decisions(self, registry):
        session = _session(registry)
        secret = ProtectedSecret.seal(SPEC, (300, 200))
        session.downgrade(secret, "nearby_200_200")
        session.try_downgrade(secret, "nearby_400_200")
        assert [h.authorized for h in session.history] == [True, False]
        assert session.history[0].posterior_size is not None
        assert session.history[1].posterior_size is None


class TestDowngradeErrors:
    def test_unknown_query(self, registry):
        session = _session(registry)
        secret = ProtectedSecret.seal(SPEC, (10, 10))
        with pytest.raises(UnknownQuery, match="Can't downgrade"):
            session.downgrade(secret, "never_compiled")

    def test_secret_type_mismatch(self, registry):
        other_spec = SecretSpec.declare("Other", a=(0, 9))
        session = _session(registry)
        secret = ProtectedSecret.seal(other_spec, (3,))
        decision = session.try_downgrade(secret, "nearby_200_200")
        assert not decision.authorized
        assert "is over" in decision.reason

    def test_try_downgrade_never_raises(self, registry):
        session = _session(registry)
        secret = ProtectedSecret.seal(SPEC, (0, 0))
        decision = session.try_downgrade(secret, "never_compiled")
        assert not decision.authorized


class TestCheckingModes:
    QUERIES = ["nearby_200_200", "nearby_300_200", "nearby_400_200"]

    def _authorized_prefix(self, registry, secret_value, check_both):
        session = _session(registry, check_both=check_both)
        secret = ProtectedSecret.seal(SPEC, secret_value)
        count = 0
        for name in self.QUERIES:
            if not session.try_downgrade(secret, name).authorized:
                break
            count += 1
        return count

    @pytest.mark.parametrize(
        "secret_value", [(200, 200), (0, 0), (300, 200), (399, 399)]
    )
    def test_check_both_is_stricter(self, registry, secret_value):
        strict = self._authorized_prefix(registry, secret_value, check_both=True)
        lenient = self._authorized_prefix(registry, secret_value, check_both=False)
        assert strict <= lenient

    def test_check_both_rejects_on_untaken_branch(self, registry):
        # Secret (0, 0) answers False to the second query; its False
        # posterior stays large, but the True posterior is tiny.  The
        # section 3 discipline rejects regardless of the actual response;
        # the evaluation-faithful mode authorizes.
        session = _session(registry, check_both=True)
        secret = ProtectedSecret.seal(SPEC, (0, 0))
        session.try_downgrade(secret, "nearby_200_200")
        assert not session.try_downgrade(secret, "nearby_300_200").authorized

        session = _session(registry, check_both=False)
        secret = ProtectedSecret.seal(SPEC, (0, 0))
        session.try_downgrade(secret, "nearby_200_200")
        assert session.try_downgrade(secret, "nearby_300_200").authorized

    def test_same_history_same_decisions_under_check_both(self, registry):
        # Two secrets with identical response histories carry identical
        # priors, so every authorization decision matches.
        traces = []
        for secret_value in [(300, 200), (250, 200)]:
            session = _session(registry, check_both=True)
            secret = ProtectedSecret.seal(SPEC, secret_value)
            trace = []
            for name in self.QUERIES:
                decision = session.try_downgrade(secret, name)
                trace.append(decision.authorized)
                if not decision.authorized:
                    break
            traces.append(trace)
        assert traces[0] == traces[1]

    def test_bad_mode_rejected(self, registry):
        with pytest.raises(ValueError):
            AnosyT(SecureRuntime(), size_above(1), registry, mode="diagonal")


class TestKnowledgeTracking:
    def test_no_prior_knowledge_before_first_downgrade(self, registry):
        session = _session(registry)
        secret = ProtectedSecret.seal(SPEC, (50, 50))
        assert session.knowledge_of(secret) is None

    def test_equal_secrets_share_knowledge(self, registry):
        session = _session(registry)
        first = ProtectedSecret.seal(SPEC, (300, 200))
        second = ProtectedSecret.seal(SPEC, (300, 200))
        session.downgrade(first, "nearby_200_200")
        assert session.knowledge_of(second) is not None

    def test_different_secrets_tracked_separately(self, registry):
        session = _session(registry)
        near = ProtectedSecret.seal(SPEC, (200, 200))
        far = ProtectedSecret.seal(SPEC, (0, 0))
        session.downgrade(near, "nearby_200_200")
        session.downgrade(far, "nearby_200_200")
        assert session.knowledge_of(near) is not None
        assert session.knowledge_of(far) is not None
        assert session.knowledge_of(near).size() != session.knowledge_of(far).size()

    def test_posterior_is_sound_underapproximation(self, registry):
        # P_i ⊆ K_i: every point in the tracked knowledge must be
        # consistent with the observed responses (section 3's induction).
        session = _session(registry)
        secret_value = (250, 180)
        secret = ProtectedSecret.seal(SPEC, secret_value)
        responses = {}
        for name in ["nearby_200_200", "nearby_300_200"]:
            responses[name] = session.downgrade(secret, name)
        knowledge = session.knowledge_of(secret)
        compiled = {n: registry.lookup(n).qinfo for n in responses}
        # Sample the tracked knowledge and check consistency.
        for piece in knowledge.boxes():
            for point in list(piece.iter_points())[::17]:
                for name, response in responses.items():
                    assert compiled[name].run(point) == response

    def test_track_over_keeps_parallel_map(self, registry):
        session = _session(registry, track_over=True)
        secret = ProtectedSecret.seal(SPEC, (300, 200))
        session.downgrade(secret, "nearby_200_200")
        key = session._key(secret)
        assert key in session.over_knowledge
        # Over-approximation must contain the true secret.
        assert session.over_knowledge[key].contains((300, 200))

    def test_lift_runs_in_underlying_monad(self, registry):
        session = _session(registry)
        label = session.lift(lambda runtime: runtime.current_label)
        assert label == SecureRuntime().current_label
