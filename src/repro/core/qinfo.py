"""``QInfo``: a query packaged with its verified posterior functions.

This is the run-time artifact the compile step produces for each
declassification query (paper Figure 2): the executable query plus
``approx`` functions that map any prior knowledge to the pair of
posteriors ``(postT, postF)`` by intersecting with the synthesized ind.
sets — which is why posterior computation is *free* at run time (no static
analysis, no SMT): just box intersections.

Note on Figure 4 of the paper: its ``underapprox`` body intersects the
prior with ``over_indset``; that contradicts both section 2.2 ("we
intersect with the under-approximate ind. set to produce an
under-approximation of the posterior") and the stated refinement type, so
we take it as an erratum and intersect with the matching ind. set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec, SecretValue
from repro.solver import vectoreval
from repro.solver.kernels import KernelSpace, concrete_predicate
from repro.domains import box as box_domain
from repro.domains import powerset as powerset_domain
from repro.domains.base import AbstractDomain
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain

__all__ = ["QInfo", "DomainPair", "intersect_knowledge", "intersect_many"]

DomainPair = tuple[AbstractDomain, AbstractDomain]

#: Below this many *distinct* priors the stacked tensor path costs more
#: than it saves; scalar intersections run instead.
_TENSOR_MIN_DISTINCT = 2


def intersect_knowledge(a: AbstractDomain, b: AbstractDomain) -> AbstractDomain:
    """Intersection that lifts to the powerset domain on mixed operands."""
    if isinstance(a, IntervalDomain) and isinstance(b, IntervalDomain):
        return a.intersect(b)
    pa = a if isinstance(a, PowersetDomain) else PowersetDomain.from_interval(a)
    pb = b if isinstance(b, PowersetDomain) else PowersetDomain.from_interval(b)
    return pa.intersect(pb)


def intersect_many(
    priors: Sequence[AbstractDomain], ind: AbstractDomain
) -> list[AbstractDomain]:
    """``[intersect_knowledge(p, ind) for p in priors]``, vectorized.

    One broadcasted clamp over the whole stack when NumPy is available
    and the operands are homogeneous enough; bit-identical results (same
    domain objects by equality, same lifting rules) either way.  Callers
    pass *distinct* priors — the dedup lives in :meth:`QInfo.approx_batch`.
    """
    if vectoreval.AVAILABLE and len(priors) >= _TENSOR_MIN_DISTINCT:
        if isinstance(ind, PowersetDomain):
            lifted = [
                p if isinstance(p, PowersetDomain) else PowersetDomain.from_interval(p)
                for p in priors
            ]
            return powerset_domain.intersect_stacked(lifted, ind)
        if isinstance(ind, IntervalDomain):
            interval_rows = [
                i for i, p in enumerate(priors) if isinstance(p, IntervalDomain)
            ]
            if len(interval_rows) == len(priors):
                return box_domain.intersect_stacked(priors, ind)
            # Mixed fleet: interval priors clamp against the interval ind.
            # set, powerset priors lift it — exactly intersect_knowledge's
            # per-pair dispatch, just grouped.
            results: list[AbstractDomain | None] = [None] * len(priors)
            if len(interval_rows) >= _TENSOR_MIN_DISTINCT:
                stacked = box_domain.intersect_stacked(
                    [priors[i] for i in interval_rows], ind
                )
                for i, domain in zip(interval_rows, stacked):
                    results[i] = domain
            for i, prior in enumerate(priors):
                if results[i] is None:
                    results[i] = intersect_knowledge(prior, ind)
            return results
    return [intersect_knowledge(prior, ind) for prior in priors]


@dataclass(frozen=True)
class QInfo:
    """Query information: the query and its knowledge approximations.

    ``under_indset``/``over_indset`` are the verified (True-side,
    False-side) ind.-set pairs.  ``over_indset`` may be ``None`` when the
    compile step was asked for under-approximations only (the mode the
    paper's policy enforcement uses).
    """

    name: str
    query: BoolExpr
    secret: SecretSpec
    under_indset: DomainPair | None
    over_indset: DomainPair | None

    def run(self, secret_value: SecretValue | Mapping[str, int]) -> bool:
        """Execute the query on a concrete secret.

        Runs on the compiled concrete kernel, pinned on this instance so
        a service answering thousands of ``downgrade`` requests pays the
        lowering (and even the structural cache lookup, which hashes the
        query AST) once, not per request.
        """
        predicate = self.__dict__.get("_predicate")
        if predicate is None:
            predicate = concrete_predicate(self.query, self.secret.field_names)
            object.__setattr__(self, "_predicate", predicate)
        return predicate(self.secret.to_env(secret_value))

    def underapprox(self, prior: AbstractDomain) -> DomainPair:
        """Posterior under-approximations ``(postT, postF)`` for a prior."""
        return self.approx(prior, mode="under")

    def overapprox(self, prior: AbstractDomain) -> DomainPair:
        """Posterior over-approximations ``(postT, postF)`` for a prior."""
        return self.approx(prior, mode="over")

    def approx(self, prior: AbstractDomain, *, mode: str = "under") -> DomainPair:
        """The Figure 2 ``approx`` field: posterior pair for a prior."""
        true_ind, false_ind = self.indset_pair(mode=mode)
        return (
            intersect_knowledge(prior, true_ind),
            intersect_knowledge(prior, false_ind),
        )

    def indset_pair(self, *, mode: str = "under") -> DomainPair:
        """The shared, immutable (True-side, False-side) ind.-set pair.

        This is the compile-time artifact every session's posterior is an
        intersection with — batch serving fetches it once per query and
        reuses it across thousands of priors.
        """
        if mode not in ("under", "over"):
            raise ValueError(f"mode must be 'under' or 'over', got {mode!r}")
        pair = self.under_indset if mode == "under" else self.over_indset
        if pair is None:
            raise ValueError(f"query {self.name!r} compiled without {mode!r} mode")
        return pair

    def approx_batch(
        self, priors: Iterable[AbstractDomain], *, mode: str = "under"
    ) -> list[DomainPair]:
        """Posterior pairs for many priors against one shared ind.-set pair.

        Domains are immutable and hashable, so identical priors (the common
        case for fleets of fresh sessions, which all start at ⊤) are
        intersected once and the resulting pair is shared.
        """
        true_ind, false_ind = self.indset_pair(mode=mode)
        group: dict[AbstractDomain, int] = {}
        keys: list[int] = []
        distinct: list[AbstractDomain] = []
        for prior in priors:
            key = group.get(prior)
            if key is None:
                key = len(distinct)
                group[prior] = key
                distinct.append(prior)
            keys.append(key)
        pairs = list(
            zip(
                intersect_many(distinct, true_ind),
                intersect_many(distinct, false_ind),
            )
        )
        return [pairs[key] for key in keys]

    def run_batch(self, secret_rows) -> "object":
        """Vectorized :meth:`run`: int64 rows ``[n, arity]`` → bool ``[n]``.

        Rows must be validated secret tuples in field order (the SoA
        session store guarantees this).  Evaluates the same compiled
        grid kernel the solver's vectorized finishing uses, pinned on
        this instance like ``run``'s concrete kernel; per-row results
        are bit-identical to ``run`` (the grid/concrete kernel agreement
        is property-tested).
        """
        np = vectoreval.require_numpy()
        kernel = self.__dict__.get("_grid_kernel")
        if kernel is None:
            space = KernelSpace(self.secret.field_names)
            kernel = space.grid_bool(self.query)
            # The space owns the interned kernels the id-keyed grid cache
            # points at; keep it alive alongside the closure.
            object.__setattr__(self, "_grid_space", space)
            object.__setattr__(self, "_grid_kernel", kernel)
        grids = tuple(secret_rows[:, dim] for dim in range(self.secret.arity))
        mask = kernel(grids)
        if mask is True or mask is False:
            return np.full(len(secret_rows), mask, dtype=bool)
        return np.broadcast_to(np.asarray(mask, dtype=bool), (len(secret_rows),))

    def as_function(self, *, mode: str = "under") -> Callable[[AbstractDomain], DomainPair]:
        """The posterior computation as a standalone closure."""

        def approx(prior: AbstractDomain) -> DomainPair:
            return self.approx(prior, mode=mode)

        return approx
