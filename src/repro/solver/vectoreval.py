"""Vectorized (NumPy) evaluation of query formulas over small boxes.

The branch-and-bound counter handles enormous spaces by splitting, but the
cells straddling constraint boundaries must eventually be resolved at unit
resolution — expensive in pure Python for benchmarks like B4 (Pizza),
whose Manhattan-ball boundary crosses ~10^5 cells.  When a sub-box is
small enough, it is far cheaper to evaluate the formula *for every point
at once* on NumPy integer grids and sum the boolean result.

This module is an exactness-preserving accelerator: it computes precisely
``|{x in box | phi(x)}|``, just vectorized.  The counter consults
:func:`count_box_vectorized` for boxes whose live volume is below a
threshold; everything stays pure-Python-correct without NumPy installed
(``AVAILABLE`` guards the fast path).
"""

from __future__ import annotations

from typing import Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in this repo's env
    _np = None

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    CmpOp,
    Iff,
    Implies,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.solver.boxes import Box

__all__ = ["AVAILABLE", "count_box_vectorized", "DEFAULT_VECTOR_THRESHOLD"]

AVAILABLE = _np is not None

#: Boxes up to this many points are evaluated on a grid; chosen so the
#: working set (a handful of int64 arrays) stays near ~100 MB.
DEFAULT_VECTOR_THRESHOLD = 4_000_000


def _eval_int(expr: IntExpr, grids: dict[str, "object"]):
    match expr:
        case Lit(value):
            return value
        case Var(name):
            return grids[name]
        case Add(left, right):
            return _eval_int(left, grids) + _eval_int(right, grids)
        case Sub(left, right):
            return _eval_int(left, grids) - _eval_int(right, grids)
        case Neg(arg):
            return -_eval_int(arg, grids)
        case Scale(coeff, arg):
            return coeff * _eval_int(arg, grids)
        case Abs(arg):
            return _np.abs(_eval_int(arg, grids))
        case Min(left, right):
            return _np.minimum(_eval_int(left, grids), _eval_int(right, grids))
        case Max(left, right):
            return _np.maximum(_eval_int(left, grids), _eval_int(right, grids))
        case IntIte(cond, then_branch, else_branch):
            return _np.where(
                _eval_bool(cond, grids),
                _eval_int(then_branch, grids),
                _eval_int(else_branch, grids),
            )
        case _:
            raise TypeError(f"not an integer expression: {expr!r}")


_CMP_NUMPY = {
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.GE: lambda a, b: a >= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
}


def _eval_bool(expr: BoolExpr, grids: dict[str, "object"]):
    match expr:
        case BoolLit(value):
            return value
        case Cmp(op, left, right):
            return _CMP_NUMPY[op](_eval_int(left, grids), _eval_int(right, grids))
        case And(args):
            result = True
            for arg in args:
                result = result & _eval_bool(arg, grids)
            return result
        case Or(args):
            result = False
            for arg in args:
                result = result | _eval_bool(arg, grids)
            return result
        case Not(arg):
            return ~_eval_bool(arg, grids)
        case Implies(antecedent, consequent):
            return ~_eval_bool(antecedent, grids) | _eval_bool(consequent, grids)
        case Iff(left, right):
            return _eval_bool(left, grids) == _eval_bool(right, grids)
        case InSet(arg, values):
            inner = _eval_int(arg, grids)
            return _np.isin(inner, _np.array(sorted(values), dtype=_np.int64))
        case _:
            raise TypeError(f"not a boolean expression: {expr!r}")


def count_box_vectorized(
    phi: BoolExpr, box: Box, names: Sequence[str]
) -> int:
    """Exact model count of ``phi`` on ``box`` via grid evaluation.

    The caller is responsible for checking :data:`AVAILABLE` and for
    keeping ``box.volume()`` within a sane threshold.
    """
    if _np is None:  # pragma: no cover
        raise RuntimeError("NumPy is not available")
    axes = [
        _np.arange(lo, hi + 1, dtype=_np.int64) for lo, hi in box.bounds
    ]
    mesh = _np.meshgrid(*axes, indexing="ij", sparse=True)
    grids = dict(zip(names, mesh))
    result = _eval_bool(phi, grids)
    if result is True:
        return box.volume()
    if result is False:
        return 0
    # Broadcast against the full grid shape in case sparse axes never met.
    full = _np.broadcast_to(result, tuple(hi - lo + 1 for lo, hi in box.bounds))
    return int(full.sum())
