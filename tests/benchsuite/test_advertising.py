"""Tests for the section 6.2 advertising system."""

import pytest

from repro.benchsuite.advertising import (
    USER_LOC,
    build_system,
    nearby_query,
)
from repro.lang.eval import eval_bool


class TestNearbyQuery:
    def test_matches_manhattan_distance(self):
        query = nearby_query((200, 200))
        assert eval_bool(query, {"x": 300, "y": 200})
        assert not eval_bool(query, {"x": 301, "y": 200})

    def test_user_loc_space(self):
        assert USER_LOC.space_size() == 160_000


@pytest.fixture(scope="module")
def small_system():
    return build_system(k=2, num_queries=5, seed=7)


class TestSystem:
    def test_compiles_requested_number_of_queries(self, small_system):
        assert len(small_system.query_names) == 5
        assert small_system.registry.names() == sorted(small_system.query_names)

    def test_deterministic_given_seed(self):
        a = build_system(k=1, num_queries=3, seed=11)
        b = build_system(k=1, num_queries=3, seed=11)
        assert a.query_names == b.query_names

    def test_different_seeds_differ(self):
        a = build_system(k=1, num_queries=3, seed=11)
        b = build_system(k=1, num_queries=3, seed=12)
        assert a.query_names != b.query_names

    def test_instance_stops_at_first_violation(self, small_system):
        result = small_system.run_instance((200, 200))
        assert 0 <= result.authorized <= 5
        if result.violated:
            assert result.authorized < 5
        else:
            assert result.survived_all

    def test_instance_results_are_reproducible(self, small_system):
        first = small_system.run_instance((123, 321))
        second = small_system.run_instance((123, 321))
        assert first == second

    def test_check_both_is_not_more_permissive(self):
        lenient = build_system(k=2, num_queries=5, seed=7, check_both=False)
        strict = build_system(k=2, num_queries=5, seed=7, check_both=True)
        for secret in [(10, 10), (200, 200), (399, 0)]:
            assert (
                strict.run_instance(secret).authorized
                <= lenient.run_instance(secret).authorized
            )
