"""Probabilistic beliefs and policies (the paper's section 8 extension).

Exact Bayesian semantics over uniform priors by symbolic conditioning +
model counting, and the bridge from vulnerability thresholds to ANOSY's
set-based quantitative policies.
"""

from repro.prob.belief import ConditionedBelief
from repro.prob.policies import (
    BeliefPolicy,
    knowledge_policy_for_vulnerability,
    probability_below,
    vulnerability_below,
)

__all__ = [
    "ConditionedBelief",
    "BeliefPolicy",
    "knowledge_policy_for_vulnerability",
    "probability_below",
    "vulnerability_below",
]
