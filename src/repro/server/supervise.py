"""Shard supervision: typed failures, retries, and circuit breakers.

The serving tier runs one worker process per shard.  Processes die, jobs
hang, and payloads can arrive mangled; this module turns each of those
into a *typed* failure and drives a bounded recovery loop around it:

* :class:`ShardCrash` / :class:`ShardTimeout` / :class:`CodecError` —
  structured failure classes (:func:`classify_failure` maps raw
  executor/JSON exceptions onto them).  Anything that is not a shard
  failure — application errors, ``KeyboardInterrupt`` — passes through
  untouched, so the supervisor never retries a bug into submission;
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  seeded jitter (deterministic under a fixed seed, which the chaos suite
  relies on);
* :class:`CircuitBreaker` — per-shard ``closed → open → half-open``
  state machine: after ``threshold`` consecutive failures the shard is
  taken out of rotation for ``cooldown`` seconds, then a single probe
  attempt decides whether it rejoins;
* :class:`ShardSupervisor` — the driver: deadline → classify → restart →
  backoff → retry, falling over to a caller-supplied *fallback* (inline
  compile, gateway-local serving) when the breaker is open or retries
  are exhausted.

The supervisor is deliberately ignorant of pools, ledgers, and payload
formats: callers pass ``attempt`` / ``restart`` / ``fallback``
coroutines and keep ownership of state rebuilding (see
``DeclassificationServer._rehydrate_shard``).
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.obs.metrics import NULL_REGISTRY

__all__ = [
    "CircuitBreaker",
    "CodecError",
    "RetryPolicy",
    "ShardCrash",
    "ShardFailure",
    "ShardSupervisor",
    "ShardTimeout",
    "SupervisorStats",
    "classify_failure",
]


class ShardFailure(RuntimeError):
    """Base class for failures the supervisor may retry.

    Carries a structured payload (``kind``, ``shard``, ``site``,
    ``detail``) so audit trails and cross-process error reporting never
    have to string-match exception text.
    """

    kind = "failure"

    def __init__(self, detail: str, *, shard: int | None = None, site: str | None = None):
        super().__init__(detail)
        self.detail = detail
        self.shard = shard
        self.site = site

    def to_payload(self) -> dict:
        """JSON-safe description of this failure."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "shard": self.shard,
            "site": self.site,
        }


class ShardCrash(ShardFailure):
    """The shard's worker process died (or its executor broke)."""

    kind = "crash"


class ShardTimeout(ShardFailure):
    """A shard job missed its deadline; the worker may be hung."""

    kind = "timeout"


class CodecError(ShardFailure):
    """A payload crossing the shard JSON boundary failed to decode."""

    kind = "codec"


def classify_failure(
    exc: BaseException, *, shard: int | None = None, site: str | None = None
) -> BaseException:
    """Map a raw exception onto the typed failure hierarchy.

    Returns a :class:`ShardFailure` subclass for executor breakage,
    deadline misses, and JSON decode errors; every other exception is
    returned unchanged — the caller must re-raise it rather than retry.
    ``KeyboardInterrupt`` / ``SystemExit`` are never wrapped.
    """
    if isinstance(exc, (KeyboardInterrupt, SystemExit, asyncio.CancelledError)):
        return exc
    if isinstance(exc, ShardFailure):
        if exc.shard is None:
            exc.shard = shard
        if exc.site is None:
            exc.site = site
        return exc
    if isinstance(exc, BrokenExecutor):
        failure: ShardFailure = ShardCrash(
            str(exc) or "worker process died", shard=shard, site=site
        )
    elif isinstance(exc, (asyncio.TimeoutError, FutureTimeoutError, TimeoutError)):
        failure = ShardTimeout(str(exc) or "deadline exceeded", shard=shard, site=site)
    elif isinstance(exc, (json.JSONDecodeError, UnicodeDecodeError)):
        failure = CodecError(f"undecodable shard payload: {exc}", shard=shard, site=site)
    else:
        return exc
    failure.__cause__ = exc
    return failure


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with multiplicative jitter.

    Attempt ``n`` (1-based) sleeps ``base_delay * 2**(n-1)``, capped at
    ``max_delay``, then stretched by up to ``jitter`` (a fraction drawn
    from the supervisor's seeded RNG).
    """

    max_retries: int = 2
    base_delay: float = 0.02
    max_delay: float = 1.0
    jitter: float = 0.5

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry *attempt* (1-based)."""
        base = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        return base * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Per-shard ``closed → open → half-open`` failure gate.

    ``closed``: traffic flows; consecutive failures are counted.
    ``open``: after ``threshold`` consecutive failures — no traffic
    until ``cooldown`` seconds pass.  ``half_open``: cooldown elapsed;
    one probe attempt is let through.  Success closes the breaker,
    failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        self.threshold = max(1, int(threshold))
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._cooldown_override: float | None = None
        #: ``(state, cause, wall-clock timestamp)`` of the last *evented*
        #: transition — a failure opening the breaker, an operator
        #: :meth:`trip`, or a success closing it.  (The timed
        #: open→half_open step is computed, not evented.)  ``/statusz``
        #: surfaces this so a trip is visible after the fact.
        self.last_transition: tuple[str, str, float] | None = None
        self._on_transition = on_transition

    @property
    def _effective_cooldown(self) -> float:
        if self._cooldown_override is not None:
            return self._cooldown_override
        return self.cooldown

    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self._effective_cooldown:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """May an attempt proceed right now?"""
        return self.state() != "open"

    def _transition(self, state: str, cause: str) -> None:
        self.last_transition = (state, cause, time.time())
        if self._on_transition is not None:
            self._on_transition(state, cause)

    def record_success(self) -> None:
        """An attempt succeeded: close the breaker, reset counters."""
        was_tracking = self._opened_at is not None or self._failures > 0
        self._failures = 0
        self._opened_at = None
        self._cooldown_override = None
        if was_tracking:
            self._transition("closed", "success")

    def record_failure(self) -> bool:
        """Count a failure; returns True when this call opens the breaker."""
        self._failures += 1
        if self._failures >= self.threshold:
            was_open = self._opened_at is not None and self.state() == "open"
            self._opened_at = self._clock()
            if not was_open:
                self._transition("open", "failure")
                return True
        return False

    def trip(self, cooldown: float | None = None) -> None:
        """Force the breaker open (operator/chaos control).

        An explicit *cooldown* overrides the configured one until the
        next success — ``trip(cooldown=3600)`` pins a shard out of
        rotation for benchmark or maintenance purposes.  Trips are
        evented like any other transition, so the override shows up in
        breaker telemetry and ``/statusz`` rather than vanishing into
        in-memory state.
        """
        self._failures = max(self._failures, self.threshold)
        self._opened_at = self._clock()
        if cooldown is not None:
            self._cooldown_override = cooldown
        self._transition("open", "trip")

    def retry_after(self) -> float:
        """Seconds until the next probe is allowed (0 when not open)."""
        if self._opened_at is None:
            return 0.0
        remaining = self._effective_cooldown - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def describe(self) -> dict:
        """JSON-safe introspection for ``/statusz`` and audit summaries."""
        last = self.last_transition
        return {
            "state": self.state(),
            "failures": self._failures,
            "retry_after": self.retry_after(),
            "cooldown": self._effective_cooldown,
            "cooldown_override": self._cooldown_override,
            "last_transition": None
            if last is None
            else {"to": last[0], "cause": last[1], "at": last[2]},
        }


@dataclass
class SupervisorStats:
    """Counters the supervisor maintains across all pools and shards."""

    attempts: int = 0
    retries: int = 0
    restarts: int = 0
    failovers: int = 0
    breaker_opens: int = 0
    timeouts: int = 0
    crashes: int = 0
    codec_errors: int = 0

    def record(self, failure: ShardFailure) -> None:
        """Bump the per-kind counter for *failure*."""
        if isinstance(failure, ShardTimeout):
            self.timeouts += 1
        elif isinstance(failure, ShardCrash):
            self.crashes += 1
        elif isinstance(failure, CodecError):
            self.codec_errors += 1


class ShardSupervisor:
    """Drives supervised attempts against per-``(pool, shard)`` breakers.

    One supervisor serves every pool in a gateway; breakers are keyed by
    a pool name (``"compile"``, ``"serving"``) plus shard index.  All
    jitter comes from one seeded RNG, so a chaos run with a fixed seed
    replays the same backoff schedule.
    """

    #: Gauge encoding of breaker states (exposition-friendly).
    _STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}

    def __init__(
        self,
        *,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 0.25,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Any = None,
    ):
        self.retry = retry or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.stats = SupervisorStats()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._clock = clock
        self._rng = random.Random(seed)
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}

    def breaker(self, pool: str, shard: int) -> CircuitBreaker:
        """The (lazily created) breaker guarding ``pool/shard``."""
        key = (pool, shard)
        if key not in self._breakers:
            self._breakers[key] = CircuitBreaker(
                self.breaker_threshold,
                self.breaker_cooldown,
                clock=self._clock,
                on_transition=self._transition_recorder(pool, shard),
            )
        return self._breakers[key]

    def _transition_recorder(
        self, pool: str, shard: int
    ) -> Callable[[str, str], None]:
        """Metric hooks for one breaker's evented transitions."""
        metrics = self.metrics
        transitions = metrics.counter(
            "anosy_breaker_transitions_total",
            "Evented circuit-breaker transitions by target state and cause.",
            labels=("pool", "shard", "to", "cause"),
        )
        trips = metrics.counter(
            "anosy_breaker_trips_total",
            "Operator/chaos trip() overrides, per breaker.",
            labels=("pool", "shard"),
        )
        state_gauge = metrics.gauge(
            "anosy_breaker_state",
            "Breaker state at last transition (0 closed, 1 half_open, 2 open).",
            labels=("pool", "shard"),
        )
        stamp = metrics.gauge(
            "anosy_breaker_last_transition_timestamp",
            "Unix timestamp of the breaker's last evented transition.",
            labels=("pool", "shard"),
            channel="timing",
        )
        shard_label = str(shard)

        def on_transition(state: str, cause: str) -> None:
            transitions.labels(
                pool=pool, shard=shard_label, to=state, cause=cause
            ).inc()
            if cause == "trip":
                trips.labels(pool=pool, shard=shard_label).inc()
            state_gauge.labels(pool=pool, shard=shard_label).set(
                self._STATE_VALUES.get(state, -1)
            )
            stamp.labels(pool=pool, shard=shard_label).set(time.time())

        return on_transition

    def describe_breakers(self) -> dict[str, dict[str, dict]]:
        """Pool → shard → breaker introspection, for ``/statusz``."""
        out: dict[str, dict[str, dict]] = {}
        for (pool, shard), breaker in sorted(self._breakers.items()):
            out.setdefault(pool, {})[str(shard)] = breaker.describe()
        return out

    def breaker_states(self, pool: str) -> dict[int, str]:
        """Shard → breaker state, for *pool* (audit/telemetry)."""
        return {
            shard: breaker.state()
            for (name, shard), breaker in sorted(self._breakers.items())
            if name == pool
        }

    def open_fraction(self, pool: str, total_shards: int) -> float:
        """Fraction of *pool*'s shards currently open (degradation level)."""
        if total_shards <= 0:
            return 0.0
        down = sum(
            1
            for (name, _), breaker in self._breakers.items()
            if name == pool and breaker.state() == "open"
        )
        return down / total_shards

    def earliest_retry(self, pool: str) -> float:
        """Soonest ``retry_after`` across *pool*'s open breakers.

        This is the honest ``Retry-After`` hint for shed requests: the
        earliest instant at which capacity might return.
        """
        waits = [
            breaker.retry_after()
            for (name, _), breaker in self._breakers.items()
            if name == pool and breaker.state() == "open"
        ]
        return min(waits) if waits else 0.0

    async def supervise(
        self,
        pool: str,
        shard: int,
        attempt: Callable[[], Awaitable],
        *,
        deadline: float | None = None,
        restart: Callable[[], Awaitable[None]] | None = None,
        fallback: Callable[[], Awaitable] | None = None,
    ):
        """Run *attempt* under deadline/retry/breaker discipline.

        On each shard failure: record it, run *restart* (which owns
        killing the executor and rehydrating state), back off, retry —
        up to ``retry.max_retries`` times.  When the breaker is (or
        goes) open, or retries are exhausted, *fallback* is awaited
        instead; with no fallback the classified failure is raised.

        Non-shard exceptions (application errors, cancellation,
        ``KeyboardInterrupt``) propagate immediately and untouched.
        """
        breaker = self.breaker(pool, shard)
        if not breaker.allow():
            if fallback is not None:
                self.stats.failovers += 1
                return await fallback()
            raise ShardCrash(
                f"{pool} shard {shard} circuit open "
                f"(retry after {breaker.retry_after():.2f}s)",
                shard=shard,
                site=pool,
            )
        failures = 0
        while True:
            self.stats.attempts += 1
            try:
                coro = attempt()
                if deadline is not None:
                    result = await asyncio.wait_for(coro, deadline)
                else:
                    result = await coro
            except BaseException as exc:  # classified below; non-shard re-raised
                failure = classify_failure(exc, shard=shard, site=pool)
                if not isinstance(failure, ShardFailure):
                    raise
            else:
                breaker.record_success()
                return result
            self.stats.record(failure)
            if breaker.record_failure():
                self.stats.breaker_opens += 1
            if restart is not None:
                await restart()
                self.stats.restarts += 1
            failures += 1
            if failures > self.retry.max_retries or not breaker.allow():
                if fallback is not None:
                    self.stats.failovers += 1
                    return await fallback()
                raise failure
            self.stats.retries += 1
            await asyncio.sleep(self.retry.delay_for(failures, self._rng))
