"""The machine checker — this reproduction's Liquid Haskell.

Given a domain value and a :class:`~repro.refine.spec.Refinement`, the
checker discharges the two quantified obligations of the abstract
refinement encoding::

    positive:  ∀ x ∈ space.  x ∈ domain  ⇒  p(x)
    negative:  ∀ x ∈ space.  x ∉ domain  ⇒  n(x)

Membership is expressed with the domain's :meth:`member_formula`, so both
obligations are quantifier-free formulas over the bounded secret space,
decided *exactly* by the solver.  A passing :class:`Certificate` is
therefore a proof, not a test: the same theorem Liquid Haskell
establishes for the Haskell artifact.

Obligations are discharged by exact geometric case-split: a domain that
exposes its member set as disjoint boxes (both shipped domains do) turns
``∀x. member ⇒ p`` into one ``decide_forall(p, piece)`` per member piece
— and the negative obligation into one per piece of the complement —
decided together on one fused worklist
(:func:`repro.solver.decide.decide_forall_front`).  The case-split is an
exact partition, so the conjunction of piece verdicts *is* the original
quantified theorem; domains that expose no geometry fall back to the
monolithic implication over the whole space.

The checker is deliberately independent of the synthesizer (the paper
stresses the same separation in section 2.3 Step IV): it can verify
hand-written domains just as well as synthesized ones — it trusts
nothing but the artifact's own geometry and the query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang.ast import BoolExpr, BoolLit, Implies, Not
from repro.lang.pretty import pretty
from repro.lang.transform import nnf
from repro.domains.base import AbstractDomain
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.refine.spec import Refinement
from repro.solver.boxes import Box, subtract_boxes
from repro.solver.decide import SolverStats, decide_forall_front, make_engine

__all__ = [
    "Certificate",
    "CheckOutcome",
    "VerificationError",
    "check_refinement",
    "verify_refinement",
    "verify_pair",
]


@dataclass(frozen=True)
class Certificate:
    """One discharged (or refuted) proof obligation."""

    obligation: str
    formula: str
    holds: bool
    search_nodes: int
    elapsed: float
    #: Sub-boxes the proof search finished on a NumPy grid.
    vector_boxes: int = 0
    #: Stacked front evaluations / boxes resolved through them — the
    #: obligations run on the fused decider, so boundary cells are
    #: flushed in batches rather than ground out one grid call each.
    probe_fronts: int = 0
    front_boxes: int = 0


@dataclass(frozen=True)
class CheckOutcome:
    """The result of checking a domain against a refinement index."""

    certificates: tuple[Certificate, ...]

    @property
    def verified(self) -> bool:
        """Whether every obligation holds."""
        return all(cert.holds for cert in self.certificates)

    @property
    def total_nodes(self) -> int:
        """Total search nodes across obligations (proof effort metric)."""
        return sum(cert.search_nodes for cert in self.certificates)

    @property
    def elapsed(self) -> float:
        """Total wall-clock verification time in seconds."""
        return sum(cert.elapsed for cert in self.certificates)


class VerificationError(Exception):
    """A synthesized artifact failed verification (should never happen)."""

    def __init__(self, outcome: CheckOutcome):
        failing = [cert for cert in outcome.certificates if not cert.holds]
        details = "; ".join(f"{cert.obligation}: {cert.formula}" for cert in failing)
        super().__init__(f"refinement check failed: {details}")
        self.outcome = outcome


def _member_pieces(domain: AbstractDomain) -> list[Box] | None:
    """The domain's member set as disjoint boxes, or ``None`` if opaque.

    Soundness of the case-split requires the geometry to equal the
    member set *exactly*, so only the shipped domain types — whose
    ``pieces()``/``boxes()`` are exact by construction — qualify.
    Anything else (including subclasses, which may override
    ``member_formula``) is verified from the membership formula alone.
    """
    kind = type(domain)
    if kind is PowersetDomain:
        return list(domain.pieces())
    if kind is IntervalDomain:
        return list(domain.boxes())
    return None


def check_refinement(
    domain: AbstractDomain, refinement: Refinement, *, engine=None
) -> CheckOutcome:
    """Check both obligations; never raises on failure.

    ``engine`` optionally shares a solver engine with the caller — the
    compile step passes its synthesis engine so the obligations reuse the
    already-lowered query kernels.
    """
    refinement.check_fields(domain.spec)
    space = Box(domain.spec.bounds())
    names = domain.spec.field_names
    member = domain.member_formula()
    pieces = _member_pieces(domain)
    if engine is None:
        # Both obligations share the membership formula (and usually the
        # query), so one engine lowers their common sub-kernels once.
        engine = make_engine(names)
    certificates = []

    if refinement.positive != BoolLit(True):
        formula = Implies(member, refinement.positive)
        if pieces is None:
            certificates.append(
                _discharge("positive", formula, formula, [space], names, engine)
            )
        else:
            certificates.append(
                _discharge(
                    "positive", formula, refinement.positive, pieces, names, engine
                )
            )
    if refinement.negative != BoolLit(True):
        formula = Implies(nnf(Not(member)), refinement.negative)
        if pieces is None:
            certificates.append(
                _discharge("negative", formula, formula, [space], names, engine)
            )
        else:
            complement = subtract_boxes([space], pieces)
            certificates.append(
                _discharge(
                    "negative",
                    formula,
                    refinement.negative,
                    complement,
                    names,
                    engine,
                )
            )
    return CheckOutcome(tuple(certificates))


def _discharge(
    obligation: str,
    formula: BoolExpr,
    target: BoolExpr,
    boxes: list[Box],
    names,
    engine=None,
) -> Certificate:
    """Prove ``formula`` by deciding ``target`` on every box of ``boxes``.

    The geometric case-split (see module docstring) reduces the
    implication ``formula`` over the whole space to ``target`` over the
    listed boxes; an empty list means the obligation is vacuous.  All
    boxes are decided on one fused front — shared memo, stacked grid
    flushes.
    """
    stats = SolverStats()
    start = time.perf_counter()
    holds = (
        all(decide_forall_front(target, boxes, names, stats, engine=engine))
        if boxes
        else True
    )
    elapsed = time.perf_counter() - start
    return Certificate(
        obligation=obligation,
        formula=pretty(formula),
        holds=holds,
        search_nodes=stats.nodes,
        elapsed=elapsed,
        vector_boxes=stats.vector_boxes,
        probe_fronts=stats.probe_fronts,
        front_boxes=stats.front_boxes,
    )


def verify_refinement(
    domain: AbstractDomain, refinement: Refinement, *, engine=None
) -> CheckOutcome:
    """Check and raise :class:`VerificationError` unless everything holds."""
    outcome = check_refinement(domain, refinement, engine=engine)
    if not outcome.verified:
        raise VerificationError(outcome)
    return outcome


def verify_pair(
    domains: tuple[AbstractDomain, AbstractDomain],
    specs: tuple[Refinement, Refinement],
    *,
    engine=None,
) -> tuple[CheckOutcome, CheckOutcome]:
    """Verify a (True-side, False-side) pair against its spec pair."""
    true_outcome = verify_refinement(domains[0], specs[0], engine=engine)
    false_outcome = verify_refinement(domains[1], specs[1], engine=engine)
    return true_outcome, false_outcome
