"""Abstract-refinement specifications for knowledge domains.

The paper indexes abstract domains with two predicates (section 4.1)::

    a <p, n>  ~  { d : a | ∀x. x ∈ d ⇒ p x  ∧  ∀x. x ∉ d ⇒ n x }

``p`` (the *positive* predicate) constrains every member of the domain;
``n`` (the *negative* predicate) constrains every non-member.  The Liquid
Haskell encoding avoids the quantifiers with abstract refinements; here the
quantifiers are discharged directly by the exact decision procedure, which
plays the role of SMT-decidable refinement typing.

A :class:`Refinement` is the Python value of such an index pair.  Both
predicates are query-language formulas over the secret's fields, with
``BoolLit(True)`` as the "no constraint" default (the paper's ``true``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import BoolExpr, BoolLit
from repro.lang.pretty import pretty
from repro.lang.secrets import SecretSpec
from repro.lang.transform import free_vars

__all__ = ["Refinement", "TRUE_PREDICATE"]

TRUE_PREDICATE = BoolLit(True)


@dataclass(frozen=True)
class Refinement:
    """A pair of positive/negative predicates indexing a domain type.

    ``positive`` must hold for every secret *inside* the refined domain;
    ``negative`` must hold for every secret *outside* it.  ``describe()``
    renders the index in the paper's ``<p, n>`` notation.
    """

    positive: BoolExpr = TRUE_PREDICATE
    negative: BoolExpr = TRUE_PREDICATE

    def describe(self) -> str:
        """The index in the paper's angle-bracket notation."""
        return f"<{{\\x -> {pretty(self.positive)}}}, {{\\x -> {pretty(self.negative)}}}>"

    def check_fields(self, spec: SecretSpec) -> None:
        """Validate that both predicates only mention declared fields."""
        declared = set(spec.field_names)
        for label, predicate in (("positive", self.positive), ("negative", self.negative)):
            extra = free_vars(predicate) - declared
            if extra:
                raise ValueError(
                    f"{label} predicate mentions undeclared fields "
                    f"{sorted(extra)} for secret {spec.name!r}"
                )

    @property
    def trivial(self) -> bool:
        """Whether both predicates are ``true`` (no obligations)."""
        return self.positive == TRUE_PREDICATE and self.negative == TRUE_PREDICATE
