"""Decision procedures over finite integer boxes.

These four procedures are the solver's public surface, and together they
play the role Z3 plays in the paper:

* :func:`decide_forall` — is ``phi`` true at *every* point of a box?
  (discharges the refinement-type obligations of Figure 4)
* :func:`decide_exists` / :func:`find_model` — is ``phi`` satisfiable in a
  box, and at which point?  (seeds and binary searches in the optimizer)
* :func:`find_true_box` — a large all-true sub-box, best-first by volume
  (the synthesis seed)
* :func:`count_models` — the exact number of satisfying points
  (ground truth for Table 1, and the ``size`` of exact knowledge)

All are complete: queries are quantifier-free formulas over finitely many
bounded integers, abstract evaluation is exact on single-point boxes, and
every split strictly shrinks a dimension, so branch-and-bound terminates
with a definite answer.  Splitting only happens along variables still free
in the *specialized* formula, which guarantees progress and lets whole
dimensions factor out of the count multiplicatively.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.lang.ast import (
    Add,
    And,
    BoolExpr,
    Cmp,
    CmpOp,
    Iff,
    Implies,
    InSet,
    Lit,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.ternary import FALSE, TRUE
from repro.lang.transform import free_vars
from repro.solver import vectoreval
from repro.solver.abseval import specialize
from repro.solver.boxes import Box

__all__ = [
    "SolverBudgetExceeded",
    "SolverStats",
    "decide_forall",
    "decide_exists",
    "find_model",
    "find_true_box",
    "count_models",
]


class SolverBudgetExceeded(Exception):
    """Raised when a decision exceeds its node budget (guard, not timeout)."""


@dataclass
class SolverStats:
    """Mutable counters threaded through a decision (observability/tests)."""

    nodes: int = 0
    max_nodes: int | None = None
    splits: int = 0

    def tick(self) -> None:
        self.nodes += 1
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            raise SolverBudgetExceeded(
                f"decision exceeded {self.max_nodes} search nodes"
            )


def _env(box: Box, names: Sequence[str]) -> dict[str, tuple[int, int]]:
    return dict(zip(names, box.bounds))


def _var_bound(atom: BoolExpr) -> tuple[str, CmpOp, int] | None:
    """Normalize a single-variable bound atom to ``(name, op, const)``.

    Recognizes ``x op c`` modulo one level of linear wrapping
    (``x + a op c``, ``x - a op c``, ``c op x``, ``-x op c``,
    ``k * x op c``), which covers the box-membership and range atoms that
    dominate verification obligations and synthesis regions.
    """
    if not isinstance(atom, Cmp):
        return None
    op, left, right = atom.op, atom.left, atom.right
    if isinstance(left, Lit) and not isinstance(right, Lit):
        left, right, op = right, left, op.flip()
    if not isinstance(right, Lit):
        return None
    c = right.value
    match left:
        case Var(name):
            return name, op, c
        case Add(Var(name), Lit(a)) | Add(Lit(a), Var(name)):
            return name, op, c - a
        case Sub(Var(name), Lit(a)):
            return name, op, c + a
        case Sub(Lit(a), Var(name)):
            return name, op.flip(), a - c
        case Neg(Var(name)):
            return name, op.flip(), -c
        case Scale(k, Var(name)) if k > 0 and c % k == 0:
            return name, op, c // k
        case _:
            return None


def _walk_atoms(expr: BoolExpr):
    stack = [expr]
    while stack:
        node = stack.pop()
        match node:
            case Cmp() | InSet():
                yield node
            case And(args) | Or(args):
                stack.extend(args)
            case Not(arg):
                stack.append(arg)
            case Implies(a, b) | Iff(a, b):
                stack.extend((a, b))
            case _:
                pass


def _choose_split(phi: BoolExpr, box: Box, names: Sequence[str]) -> tuple[int, int]:
    """Pick a split ``(dim, cut)``: low half ``[lo, cut]``, high ``[cut+1, hi]``.

    Boundary-guided: if some undecided atom bounds a single variable by a
    constant inside its current range, cut exactly at that constant so the
    atom decides on both sides — this collapses the multiplicative
    blow-ups that midpoint bisection suffers on conjunctions over
    different variables.  Falls back to the midpoint of the widest live
    dimension.
    """
    index_of = {name: dim for dim, name in enumerate(names)}
    best: tuple[int, int, int] | None = None  # (width, dim, cut)
    for atom in _walk_atoms(phi):
        cut_point: tuple[str, int] | None = None
        if isinstance(atom, Cmp):
            bound = _var_bound(atom)
            if bound is not None:
                name, op, c = bound
                lo, hi = box.bounds[index_of[name]]
                if op in (CmpOp.LE, CmpOp.GT):
                    cut = c
                elif op in (CmpOp.LT, CmpOp.GE):
                    cut = c - 1
                else:  # EQ / NE: isolate c in the low half when possible
                    cut = c if c < hi else c - 1
                if lo <= cut < hi:
                    cut_point = (name, cut)
        elif isinstance(atom, InSet) and isinstance(atom.arg, Var):
            name = atom.arg.name
            lo, hi = box.bounds[index_of[name]]
            members = sorted(v for v in atom.values if lo <= v <= hi)
            if members:
                if lo < members[0]:
                    cut_point = (name, members[0] - 1)
                else:
                    run_end = members[0]
                    for value in members[1:]:
                        if value != run_end + 1:
                            break
                        run_end = value
                    if run_end < hi:
                        cut_point = (name, run_end)
        if cut_point is not None:
            name, cut = cut_point
            dim = index_of[name]
            width = box.bounds[dim][1] - box.bounds[dim][0] + 1
            if best is None or width > best[0]:
                best = (width, dim, cut)
    if best is not None:
        return best[1], best[2]

    live = free_vars(phi)
    best_dim = -1
    best_width = 0
    for dim, (name, (lo, hi)) in enumerate(zip(names, box.bounds)):
        width = hi - lo + 1
        if name in live and width > best_width:
            best_dim, best_width = dim, width
    if best_dim < 0 or best_width < 2:
        raise AssertionError(
            "specialized UNKNOWN formula with no splittable variable; "
            "abstract evaluation should decide single-point boxes"
        )
    lo, hi = box.bounds[best_dim]
    return best_dim, (lo + hi) // 2


def _split_at(box: Box, dim: int, cut: int) -> tuple[Box, Box]:
    lo, hi = box.bounds[dim]
    return box.with_dim(dim, lo, cut), box.with_dim(dim, cut + 1, hi)


def decide_forall(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
) -> bool:
    """Whether every point of ``box`` satisfies ``phi``."""
    stats = stats or SolverStats()

    def rec(phi: BoolExpr, box: Box) -> bool:
        stats.tick()
        shrunk, truth = specialize(phi, _env(box, names))
        if truth is TRUE:
            return True
        if truth is FALSE:
            return False
        stats.splits += 1
        low, high = _split_at(box, *_choose_split(shrunk, box, names))
        return rec(shrunk, low) and rec(shrunk, high)

    return rec(phi, box)


def find_model(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
) -> tuple[int, ...] | None:
    """A point of ``box`` satisfying ``phi``, or ``None`` if none exists."""
    stats = stats or SolverStats()

    def rec(phi: BoolExpr, box: Box) -> tuple[int, ...] | None:
        stats.tick()
        shrunk, truth = specialize(phi, _env(box, names))
        if truth is TRUE:
            return box.any_point()
        if truth is FALSE:
            return None
        stats.splits += 1
        low, high = _split_at(box, *_choose_split(shrunk, box, names))
        return rec(shrunk, low) or rec(shrunk, high)

    return rec(phi, box)


def decide_exists(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
) -> bool:
    """Whether some point of ``box`` satisfies ``phi``."""
    return find_model(phi, box, names, stats) is not None


@dataclass(frozen=True)
class TrueBoxResult:
    """Result of :func:`find_true_box`."""

    box: Box | None
    #: True when the search space was exhausted, i.e. ``box is None`` proves
    #: the region empty rather than reflecting a spent budget.
    exhausted: bool


def find_true_box(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    max_pops: int = 100_000,
) -> TrueBoxResult:
    """Search for a *large* all-true sub-box, best-first by volume.

    Used to seed the maximal-box optimizer: expanding from a fat core box
    converges much faster (and to better Pareto points) than expanding from
    a single witness point.
    """
    counter = 0
    heap: list[tuple[int, int, Box, BoolExpr]] = [(-box.volume(), counter, box, phi)]
    pops = 0
    while heap and pops < max_pops:
        _, _, current, formula = heapq.heappop(heap)
        pops += 1
        shrunk, truth = specialize(formula, _env(current, names))
        if truth is TRUE:
            return TrueBoxResult(current, exhausted=False)
        if truth is FALSE:
            continue
        for half in _split_at(current, *_choose_split(shrunk, current, names)):
            counter += 1
            heapq.heappush(heap, (-half.volume(), counter, half, shrunk))
    return TrueBoxResult(None, exhausted=not heap)


def count_models(
    phi: BoolExpr,
    box: Box,
    names: Sequence[str],
    stats: SolverStats | None = None,
    *,
    vector_threshold: int | None = None,
) -> int:
    """Exact number of points of ``box`` satisfying ``phi``.

    Dimensions that drop out of the specialized formula are factored out
    multiplicatively, so e.g. a constraint touching only 2 of 4 secret
    fields is counted on the 2-dimensional projection.  Undecided boxes at
    or below ``vector_threshold`` points are finished exactly on NumPy
    grids (see :mod:`repro.solver.vectoreval`); pass ``0`` to force the
    pure-Python path.
    """
    stats = stats or SolverStats()
    if vector_threshold is None:
        vector_threshold = (
            vectoreval.DEFAULT_VECTOR_THRESHOLD if vectoreval.AVAILABLE else 0
        )

    def rec(phi: BoolExpr, box: Box) -> int:
        stats.tick()
        shrunk, truth = specialize(phi, _env(box, names))
        if truth is TRUE:
            return box.volume()
        if truth is FALSE:
            return 0
        live = free_vars(shrunk)
        factor = 1
        for name, (lo, hi) in zip(names, box.bounds):
            if name not in live:
                factor *= hi - lo + 1
        if factor > 1:
            kept = [i for i, name in enumerate(names) if name in live]
            sub_box = Box(tuple(box.bounds[i] for i in kept))
            sub_names = [names[i] for i in kept]
            return factor * count_models(
                shrunk, sub_box, sub_names, stats, vector_threshold=vector_threshold
            )
        if 0 < box.volume() <= vector_threshold:
            return vectoreval.count_box_vectorized(shrunk, box, names)
        stats.splits += 1
        low, high = _split_at(box, *_choose_split(shrunk, box, names))
        return rec(shrunk, low) + rec(shrunk, high)

    return rec(phi, box)
