"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.lang.ast import var
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box


@pytest.fixture
def user_loc() -> SecretSpec:
    """The paper's running-example secret type (section 2)."""
    return SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))


@pytest.fixture
def nearby():
    """The paper's ``nearby (200, 200)`` query."""
    x, y = var("x"), var("y")
    return abs(x - 200) + abs(y - 200) <= 100


@pytest.fixture
def tiny_spec() -> SecretSpec:
    """A secret space small enough for brute-force comparison."""
    return SecretSpec.declare("Tiny", x=(-8, 12), y=(0, 15))


@pytest.fixture
def tiny_space(tiny_spec) -> Box:
    return Box(tiny_spec.bounds())
