"""Benchmark E2 — Figure 5a: interval-domain synthesis + verification.

Regenerates the paper's Figure 5a rows (``python -m
repro.experiments.figure5 --domain interval`` prints the full table).
Each benchmark times one full compile (synthesis of under+over ind.-set
pairs plus machine-checked verification) and records the sizes and % diff
columns in ``extra_info``.
"""

import pytest

from repro.benchsuite.groundtruth import ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS
from repro.experiments.figure5 import measure_benchmark

_TRUTH_CACHE = {}


def _truth(problem):
    if problem.bench_id not in _TRUTH_CACHE:
        _TRUTH_CACHE[problem.bench_id] = ground_truth(problem)
    return _TRUTH_CACHE[problem.bench_id]


@pytest.mark.parametrize("bench_id", ["B1", "B2", "B3", "B4", "B5"])
def test_figure5a_interval(benchmark, bench_id):
    problem = ALL_BENCHMARKS[bench_id]
    truth = _truth(problem)
    row = benchmark.pedantic(
        measure_benchmark,
        args=(problem, truth),
        kwargs={"domain": "interval", "k": 1, "runs": 1},
        rounds=1,
        iterations=1,
    )
    for mode in ("under", "over"):
        m = row.under if mode == "under" else row.over
        benchmark.extra_info[f"{mode}_size"] = f"{m.true_size}/{m.false_size}"
        benchmark.extra_info[f"{mode}_pct_diff"] = (
            f"{m.true_pct_diff:.0f}/{m.false_pct_diff:.0f}"
        )
        assert m.verified, f"{bench_id} {mode} failed verification"
