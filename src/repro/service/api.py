"""The thin request/response surface of the declassification service.

Plain dataclasses in, audit-trailed decisions out: this is the layer a
transport (HTTP handler, queue consumer, test harness) talks to.  It owns

* a :class:`~repro.service.cache.SynthesisCache` (optionally warm-started
  from disk), wired into a :class:`~repro.core.plugin.QueryRegistry`, so
  registering the same query twice — or across restarts — costs a lookup;
* a :class:`~repro.service.session.SessionManager` for the per-principal
  knowledge state;
* an append-only audit trail of every request the service handled,
  including refusals that never touch any session's knowledge (unknown
  queries, spec mismatches).  Under serving load the trail is a
  size-bounded :class:`AuditTrail` ring: sequence numbers stay dense
  forever, old events spill to a durable sink (the request journal's
  ``audit_spill`` table) or are counted as dropped.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.core.plugin import CompileOptions, QueryRegistry
from repro.lang.ast import BoolExpr
from repro.lang.secrets import SecretSpec, SecretValue
from repro.monad.policy import QuantitativePolicy
from repro.monad.protected import ProtectedSecret
from repro.service.cache import SynthesisCache
from repro.service.session import Session, SessionManager

__all__ = [
    "CompileRequest",
    "CompileReceipt",
    "DowngradeRequest",
    "BatchDowngradeRequest",
    "DowngradeResult",
    "AuditEvent",
    "AuditTrail",
    "DeclassificationService",
]


# ---------------------------------------------------------------------------
# Wire dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileRequest:
    """Ask the service to make a query declassifiable.

    ``options=None`` uses the service's default compile options, so
    tenants registering the same query share one cache entry.
    """

    name: str
    query: BoolExpr | str
    secret: SecretSpec
    options: CompileOptions | None = None


@dataclass(frozen=True)
class CompileReceipt:
    """What compiling cost, and whether the cache paid for it.

    ``synth_time``/``verify_time`` are always the *artifact's* compile
    cost — on a ``cache_hit`` they report the original cold run, not
    this request (which cost a lookup).
    """

    name: str
    cache_hit: bool
    verified: bool
    synth_time: float
    verify_time: float


@dataclass(frozen=True)
class DowngradeRequest:
    """One principal asking one compiled query."""

    session_id: str
    query_name: str


@dataclass(frozen=True)
class BatchDowngradeRequest:
    """One query asked for many principals (``None`` = all open sessions)."""

    query_name: str
    session_ids: tuple[str, ...] | None = None


@dataclass(frozen=True)
class DowngradeResult:
    """The audit-trailed outcome of one (session, query) request."""

    session_id: str
    query_name: str
    authorized: bool
    response: bool | None
    reason: str
    knowledge_size: int | None


@dataclass(frozen=True)
class AuditEvent:
    """One append-only audit trail entry."""

    seq: int
    kind: str
    data: dict[str, Any]


class AuditTrail:
    """A size-bounded audit ring with dense seqs and an overflow hook.

    Behaves like the append-only list it replaces (``len``, iteration,
    indexing — including ``trail[-1]``) over the *retained* window, but
    under serving load it cannot grow without bound: past ``capacity``
    the oldest events are evicted, handed to the ``spill`` callback when
    one is set (the request journal persists them to its
    ``audit_spill`` table), and counted in :attr:`dropped` otherwise.
    Sequence numbers are assigned from :attr:`total` — the count of
    events *ever* appended — so they stay dense across evictions.

    Not self-synchronizing: the owning service appends under its audit
    lock, exactly as the plain list did.
    """

    def __init__(
        self,
        capacity: int | None = None,
        spill: Callable[[Iterable[AuditEvent]], None] | None = None,
    ):
        self.capacity = capacity
        self.spill = spill
        self.total = 0
        #: Evicted events persisted through :attr:`spill`.
        self.spilled = 0
        #: Evicted events lost for good (no spill sink configured).
        self.dropped = 0
        self._events: deque[AuditEvent] = deque()

    def append(self, kind: str, data: dict[str, Any]) -> AuditEvent:
        """Append one event, evicting (and spilling) past capacity."""
        event = AuditEvent(seq=self.total, kind=kind, data=data)
        self.total += 1
        self._events.append(event)
        overflow: list[AuditEvent] = []
        while self.capacity is not None and len(self._events) > self.capacity:
            overflow.append(self._events.popleft())
        if overflow:
            if self.spill is not None:
                self.spill(overflow)
                self.spilled += len(overflow)
            else:
                self.dropped += len(overflow)
        return event

    def __len__(self) -> int:
        """Events currently retained in memory."""
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        """Iterate the retained window, oldest first."""
        return iter(self._events)

    def __getitem__(self, index: int) -> AuditEvent:
        """Index into the retained window (negative indices included)."""
        return self._events[index]


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class DeclassificationService:
    """Compile-once / serve-many declassification over many sessions."""

    def __init__(
        self,
        policy: QuantitativePolicy,
        *,
        options: CompileOptions = CompileOptions(),
        cache: SynthesisCache | None = None,
        mode: str = "under",
        check_both: bool = True,
        audit_capacity: int | None = None,
    ):
        self.default_options = options
        self.cache = cache if cache is not None else SynthesisCache()
        self.registry = QueryRegistry(cache=self.cache)
        self.manager = SessionManager(
            registry=self.registry, policy=policy, mode=mode, check_both=check_both
        )
        #: ``audit_capacity=None`` keeps the library default: an
        #: unbounded trail.  The serving gateway passes a bound (and a
        #: spill sink when journaled) so long-lived processes stay flat.
        self.audit = AuditTrail(capacity=audit_capacity)
        self._audit_lock = threading.Lock()
        # Serializes register_query: concurrent registrations of one
        # not-yet-cached problem must not both run synthesis (and the
        # hit/miss receipt bookkeeping must see a consistent cache).
        self._compile_lock = threading.Lock()

    @classmethod
    def warm_start(
        cls,
        policy: QuantitativePolicy,
        cache_path: str | Path,
        **kwargs: Any,
    ) -> "DeclassificationService":
        """Build a service whose cache is preloaded from a JSON file."""
        return cls(policy, cache=SynthesisCache.load(cache_path), **kwargs)

    def save_cache(self, cache_path: str | Path) -> None:
        """Persist the synthesis cache for the next process's warm start."""
        self.cache.save(cache_path)

    # -- observability -----------------------------------------------------
    @property
    def metrics(self) -> Any:
        """The metrics registry in use (the manager's; null by default)."""
        return self.manager.metrics

    @metrics.setter
    def metrics(self, registry: Any) -> None:
        self.manager.metrics = registry

    # -- audit -------------------------------------------------------------
    def _audit(self, kind: str, **data: Any) -> None:
        # The sequence number must be dense even when worker threads audit
        # concurrently, so assignment and append happen under one lock.
        with self._audit_lock:
            spilled = self.audit.spilled
            dropped = self.audit.dropped
            self.audit.append(kind, data)
            metrics = self.manager.metrics
            if metrics:
                metrics.counter(
                    "anosy_audit_events_total",
                    "Audit-trail events appended, by kind.",
                    labels=("kind",),
                ).labels(kind=kind).inc()
                if self.audit.spilled > spilled:
                    metrics.counter(
                        "anosy_audit_spilled_total",
                        "Audit events evicted to the durable spill sink.",
                    ).inc(self.audit.spilled - spilled)
                if self.audit.dropped > dropped:
                    metrics.counter(
                        "anosy_audit_dropped_total",
                        "Audit events evicted with no spill sink (lost).",
                    ).inc(self.audit.dropped - dropped)

    # -- compilation -------------------------------------------------------
    def register_query(self, request: CompileRequest) -> CompileReceipt:
        """Compile (or cache-hit) and register one query.

        Compilation is serialized: the second of two concurrent
        registrations of the same fresh problem waits and then hits the
        cache instead of synthesizing twice.  (The gateway adds event-loop
        coalescing on top for the sharded path.)
        """
        options = request.options if request.options is not None else self.default_options
        with self._compile_lock:
            hits_before = self.cache.stats.hits
            compiled = self.registry.compile_and_register(
                request.name, request.query, request.secret, options
            )
            cache_hit = self.cache.stats.hits > hits_before
        receipt = CompileReceipt(
            name=compiled.name,
            cache_hit=cache_hit,
            verified=all(report.verified for report in compiled.reports.values()),
            synth_time=sum(r.synth_time for r in compiled.reports.values()),
            verify_time=sum(r.verify_time for r in compiled.reports.values()),
        )
        self._audit(
            "compile",
            name=receipt.name,
            secret=request.secret.name,
            cache_hit=receipt.cache_hit,
            verified=receipt.verified,
        )
        return receipt

    # -- session lifecycle -------------------------------------------------
    def open_session(
        self,
        session_id: str,
        secret: ProtectedSecret | tuple[SecretSpec, SecretValue],
    ) -> Session:
        """Register one principal with its protected secret."""
        session = self.manager.open_session(session_id, secret)
        self._audit("session_open", session_id=session_id, secret=session.spec.name)
        return session

    def close_session(self, session_id: str) -> Session:
        """Drop a principal; the returned session keeps its audit trail."""
        session = self.manager.close_session(session_id)
        self._audit(
            "session_close",
            session_id=session_id,
            downgrades=len(session.history),
            authorized=session.authorized_count(),
        )
        return session

    # -- serving -----------------------------------------------------------
    def handle(self, request: DowngradeRequest) -> DowngradeResult:
        """Serve one downgrade request.

        Unlike :class:`~repro.service.session.SessionManager` (which
        raises for unknown sessions), the facade turns every invalid
        input — the one thing a remote client controls — into a
        structured, audited refusal.
        """
        if request.session_id not in self.manager.sessions:
            result = self._unknown_session(request.session_id, request.query_name)
        else:
            decision = self.manager.try_downgrade(
                request.session_id, request.query_name
            )
            result = self._result(request.session_id, request.query_name, decision)
        self._audit(
            "downgrade",
            session_id=result.session_id,
            query_name=result.query_name,
            authorized=result.authorized,
            reason=result.reason,
        )
        return result

    def handle_batch(self, request: BatchDowngradeRequest) -> list[DowngradeResult]:
        """Serve one query for many sessions in a single pass.

        Unknown session ids become per-session refusals instead of
        aborting the batch; duplicates collapse to one request.  Results
        come back in (deduplicated) request order.
        """
        ids = list(
            dict.fromkeys(
                self.manager.sessions
                if request.session_ids is None
                else request.session_ids
            )
        )
        known = [sid for sid in ids if sid in self.manager.sessions]
        decisions = self.manager.downgrade_batch(request.query_name, known)
        results = [
            self._result(sid, request.query_name, decisions[sid])
            if sid in decisions
            else self._unknown_session(sid, request.query_name)
            for sid in ids
        ]
        self._audit(
            "batch",
            query_name=request.query_name,
            sessions=len(results),
            authorized=sum(1 for r in results if r.authorized),
        )
        return results

    # -- async entry points ------------------------------------------------
    # The synchronous handlers are CPU-bound and thread-safe (the compile
    # lock serializes register_query, SessionManager serializes batch
    # application, the audit lock keeps sequence numbers dense), so the
    # async surface simply hops to a worker thread.  An event-loop
    # transport (the repro.server gateway, an HTTP frontend) awaits these
    # without stalling its loop on a large batch.

    async def register_query_async(self, request: CompileRequest) -> CompileReceipt:
        """Async :meth:`register_query` (compiles off the event loop)."""
        return await asyncio.to_thread(self.register_query, request)

    async def handle_async(self, request: DowngradeRequest) -> DowngradeResult:
        """Async :meth:`handle`."""
        return await asyncio.to_thread(self.handle, request)

    async def handle_batch_async(
        self, request: BatchDowngradeRequest
    ) -> list[DowngradeResult]:
        """Async :meth:`handle_batch`."""
        return await asyncio.to_thread(self.handle_batch, request)

    def _unknown_session(self, session_id: str, query_name: str) -> DowngradeResult:
        return DowngradeResult(
            session_id=session_id,
            query_name=query_name,
            authorized=False,
            response=None,
            reason=f"no open session {session_id!r}",
            knowledge_size=None,
        )

    def _result(
        self, session_id: str, query_name: str, decision: Any
    ) -> DowngradeResult:
        session = self.manager.sessions.get(session_id)
        return DowngradeResult(
            session_id=session_id,
            query_name=query_name,
            authorized=decision.authorized,
            response=decision.response,
            reason=decision.reason,
            knowledge_size=session.knowledge_size() if session else None,
        )
