"""Unit tests for concrete evaluation."""

import pytest

from repro.lang.ast import (
    And,
    BoolLit,
    Iff,
    Implies,
    InSet,
    Lit,
    Max,
    Min,
    Not,
    Or,
    Scale,
    Var,
    var,
)
from repro.lang.eval import EvalError, eval_bool, eval_int


class TestEvalInt:
    def test_literal(self):
        assert eval_int(Lit(7), {}) == 7

    def test_variable(self):
        assert eval_int(Var("x"), {"x": 42}) == 42

    def test_unbound_variable_raises(self):
        with pytest.raises(EvalError, match="unbound"):
            eval_int(Var("missing"), {})

    def test_arithmetic(self):
        x = var("x")
        assert eval_int(x + 3, {"x": 4}) == 7
        assert eval_int(x - 10, {"x": 4}) == -6
        assert eval_int(-x, {"x": 4}) == -4
        assert eval_int(Scale(3, x), {"x": 4}) == 12

    def test_abs(self):
        x = var("x")
        assert eval_int(abs(x), {"x": -5}) == 5
        assert eval_int(abs(x), {"x": 5}) == 5
        assert eval_int(abs(x), {"x": 0}) == 0

    def test_min_max(self):
        env = {"x": 3, "y": 8}
        assert eval_int(Min(Var("x"), Var("y")), env) == 3
        assert eval_int(Max(Var("x"), Var("y")), env) == 8

    def test_ite(self):
        x = var("x")
        node = (x < 0).ite(-x, x)  # |x| via ite, as in the paper
        assert eval_int(node, {"x": -9}) == 9
        assert eval_int(node, {"x": 9}) == 9

    def test_type_error_on_bool_expression(self):
        with pytest.raises(TypeError):
            eval_int(BoolLit(True), {})  # type: ignore[arg-type]


class TestEvalBool:
    def test_literals(self):
        assert eval_bool(BoolLit(True), {}) is True
        assert eval_bool(BoolLit(False), {}) is False

    @pytest.mark.parametrize(
        "source_value,expected",
        [(0, True), (100, True), (101, False)],
    )
    def test_comparison(self, source_value, expected):
        assert eval_bool(var("x") <= 100, {"x": source_value}) is expected

    def test_connectives(self):
        p = var("x") > 0
        q = var("x") < 10
        env_in, env_out = {"x": 5}, {"x": 20}
        assert eval_bool(And((p, q)), env_in) is True
        assert eval_bool(And((p, q)), env_out) is False
        assert eval_bool(Or((p, q)), env_out) is True
        assert eval_bool(Not(p), {"x": -1}) is True

    def test_implies(self):
        p = var("x") > 0
        q = var("x") > 10
        assert eval_bool(Implies(q, p), {"x": 20}) is True
        assert eval_bool(Implies(p, q), {"x": 5}) is False
        assert eval_bool(Implies(p, q), {"x": -5}) is True  # vacuous

    def test_iff(self):
        p = var("x") > 0
        q = var("x") < 10
        assert eval_bool(Iff(p, q), {"x": 5}) is True
        assert eval_bool(Iff(p, q), {"x": 20}) is False

    def test_in_set(self):
        atom = InSet(Var("c"), frozenset({1, 3, 5}))
        assert eval_bool(atom, {"c": 3}) is True
        assert eval_bool(atom, {"c": 4}) is False

    def test_nearby_example(self, nearby):
        assert eval_bool(nearby, {"x": 300, "y": 200}) is True   # boundary
        assert eval_bool(nearby, {"x": 301, "y": 200}) is False
        assert eval_bool(nearby, {"x": 200, "y": 200}) is True

    def test_type_error_on_int_expression(self):
        with pytest.raises(TypeError):
            eval_bool(Lit(1), {})  # type: ignore[arg-type]
