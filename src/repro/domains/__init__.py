"""Verified abstract domains: intervals (``A_I``) and powersets (``A_P``).

These are the paper's section 4 data types.  Both satisfy the
``AbstractDomain`` interface of Figure 3 (⊤, ⊥, ∈, ⊆, ∩, size) and its two
class laws, which the test-suite checks property-based and the refinement
checker re-verifies on synthesized values.
"""

from repro.domains.base import (
    AbstractDomain,
    DomainMismatch,
    check_size_law,
    check_subset_law,
)
from repro.domains.box import IntervalDomain
from repro.domains.interval import AInt
from repro.domains.powerset import PowersetDomain

__all__ = [
    "AbstractDomain",
    "DomainMismatch",
    "check_size_law",
    "check_subset_law",
    "IntervalDomain",
    "AInt",
    "PowersetDomain",
]
