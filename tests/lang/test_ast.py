"""Unit tests for the query AST / embedded DSL."""

import pytest

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolLit,
    Cmp,
    CmpOp,
    FALSE,
    InSet,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    TRUE,
    Var,
    lit,
    var,
)


class TestDslConstruction:
    def test_var_and_lit(self):
        assert var("x") == Var("x")
        assert lit(5) == Lit(5)

    def test_addition_builds_add(self):
        assert var("x") + 1 == Add(Var("x"), Lit(1))

    def test_right_addition(self):
        assert 1 + var("x") == Add(Lit(1), Var("x"))

    def test_subtraction_builds_sub(self):
        assert var("x") - var("y") == Sub(Var("x"), Var("y"))

    def test_right_subtraction(self):
        assert 3 - var("x") == Sub(Lit(3), Var("x"))

    def test_negation(self):
        assert -var("x") == Neg(Var("x"))

    def test_scale_by_constant(self):
        assert 2 * var("x") == Scale(2, Var("x"))
        assert var("x") * -3 == Scale(-3, Var("x"))

    def test_nonlinear_multiplication_rejected(self):
        with pytest.raises(TypeError, match="linear"):
            _ = var("x") * var("y")  # type: ignore[operator]

    def test_python_abs_builds_abs_node(self):
        assert abs(var("x") - 3) == Abs(Sub(Var("x"), Lit(3)))

    def test_comparisons(self):
        x = var("x")
        assert (x <= 5) == Cmp(CmpOp.LE, Var("x"), Lit(5))
        assert (x < 5) == Cmp(CmpOp.LT, Var("x"), Lit(5))
        assert (x >= 5) == Cmp(CmpOp.GE, Var("x"), Lit(5))
        assert (x > 5) == Cmp(CmpOp.GT, Var("x"), Lit(5))

    def test_eq_ne_are_methods_not_operators(self):
        x = var("x")
        assert x.eq(5) == Cmp(CmpOp.EQ, Var("x"), Lit(5))
        assert x.ne(5) == Cmp(CmpOp.NE, Var("x"), Lit(5))
        # == stays structural equality
        assert (Var("x") == Var("x")) is True

    def test_in_set(self):
        atom = var("c").in_set({3, 1, 2})
        assert atom == InSet(Var("c"), frozenset({1, 2, 3}))

    def test_boolean_connectives(self):
        p = var("x") <= 1
        q = var("y") > 2
        assert (p & q) == And((p, q))
        assert (p | q) == Or((p, q))
        assert (~p) == Not(p)

    def test_implies_and_iff(self):
        p, q = var("x") <= 1, var("y") > 2
        assert p.implies(q).antecedent == p
        assert p.iff(q).left == p

    def test_ite_builder(self):
        cond = var("x") < 0
        node = cond.ite(-var("x"), var("x"))
        assert isinstance(node, IntIte)
        assert node.cond == cond

    def test_bool_literal_rejected_as_int(self):
        with pytest.raises(TypeError):
            _ = var("x") + True  # type: ignore[operator]

    def test_constants(self):
        assert TRUE == BoolLit(True)
        assert FALSE == BoolLit(False)


class TestStructure:
    def test_children_of_binary_node(self):
        node = Add(Var("x"), Lit(1))
        assert list(node.children()) == [Var("x"), Lit(1)]

    def test_children_of_nary_node(self):
        node = And((BoolLit(True), BoolLit(False)))
        assert list(node.children()) == [BoolLit(True), BoolLit(False)]

    def test_node_count(self):
        expr = abs(var("x") - 200) + abs(var("y") - 200) <= 100
        # Cmp, Add, Abs, Sub, x, 200, Abs, Sub, y, 200, 100
        assert expr.node_count() == 11

    def test_nodes_are_hashable_and_comparable(self):
        a = abs(var("x") - 1) <= 2
        b = abs(var("x") - 1) <= 2
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_min_max_nodes(self):
        node = Min(Var("x"), Max(Var("y"), Lit(0)))
        assert node.node_count() == 5

    def test_cmp_op_negate_roundtrip(self):
        for op in CmpOp:
            assert op.negate().negate() is op

    def test_cmp_op_flip_roundtrip(self):
        for op in CmpOp:
            assert op.flip().flip() is op

    def test_cmp_op_holds(self):
        assert CmpOp.LE.holds(1, 1)
        assert not CmpOp.LT.holds(1, 1)
        assert CmpOp.GE.holds(2, 1)
        assert not CmpOp.GT.holds(1, 2)
        assert CmpOp.EQ.holds(3, 3)
        assert CmpOp.NE.holds(3, 4)
