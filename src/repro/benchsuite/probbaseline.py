"""A Prob-style baseline: per-query forward abstract interpretation.

Prob (Mardziel et al. 2013) enforces knowledge-based policies by running a
probabilistic abstract interpreter over the query *at every execution* to
compute the posterior.  The paper compares ANOSY against it on two axes
(section 6.1 discussion): ANOSY pays a one-time synthesis cost but makes
posteriors free at run time, and ANOSY is *more precise*.

This module reproduces the baseline's architecture with the classic HC4
algorithm from interval constraint propagation:

* a **forward** pass evaluates every sub-expression over the current box;
* a **backward** pass pushes the demanded output range back down through
  the expression, narrowing variable ranges (e.g. from ``a + b ∈ T`` infer
  ``a ∈ T - range(b)``);
* conjunctions propagate sequentially, disjunctions propagate each branch
  and join with a convex hull — the *small-step imprecision* the paper
  attributes to abstract-interpretation-based tools;
* the revise step iterates to a fixpoint.

``posterior(prior_box, query, response)`` is an over-approximation of the
exact posterior knowledge, computed afresh per query — exactly the
baseline cost/precision profile the comparison needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    CmpOp,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)
from repro.lang.secrets import SecretSpec
from repro.lang.transform import nnf
from repro.solver import interval
from repro.solver.boxes import Box
from repro.solver.interval import Range

__all__ = ["HC4Result", "hc4_posterior", "ProbLiteAnalyzer"]

Env = dict[str, Range]


def _env_of(box: Box, names) -> Env:
    return dict(zip(names, box.bounds))


def _box_of(env: Env, names) -> Box | None:
    bounds = []
    for name in names:
        lo, hi = env[name]
        if lo > hi:
            return None
        bounds.append((lo, hi))
    return Box(tuple(bounds))


# ---------------------------------------------------------------------------
# Forward evaluation (returns the range of every node bottom-up)
# ---------------------------------------------------------------------------


def _forward(expr: IntExpr, env: Env) -> Range:
    match expr:
        case Lit(v):
            return (v, v)
        case Var(name):
            return env[name]
        case Add(a, b):
            return interval.add(_forward(a, env), _forward(b, env))
        case Sub(a, b):
            return interval.sub(_forward(a, env), _forward(b, env))
        case Neg(a):
            return interval.neg(_forward(a, env))
        case Scale(c, a):
            return interval.scale(c, _forward(a, env))
        case Abs(a):
            return interval.abs_(_forward(a, env))
        case Min(a, b):
            return interval.min_(_forward(a, env), _forward(b, env))
        case Max(a, b):
            return interval.max_(_forward(a, env), _forward(b, env))
        case IntIte(_, a, b):
            return interval.join(_forward(a, env), _forward(b, env))
        case _:
            raise TypeError(f"not an integer expression: {expr!r}")


# ---------------------------------------------------------------------------
# Backward (HC4-revise) propagation of a demanded output range
# ---------------------------------------------------------------------------


def _backward(expr: IntExpr, demanded: Range, env: Env) -> bool:
    """Narrow ``env`` so that ``expr``'s value can lie in ``demanded``.

    Returns False when the demanded range is infeasible (empty posterior).
    """
    current = _forward(expr, env)
    narrowed = interval.meet(current, demanded)
    if narrowed is None:
        return False
    match expr:
        case Lit(_):
            return True
        case Var(name):
            env[name] = narrowed
            return True
        case Add(a, b):
            ra, rb = _forward(a, env), _forward(b, env)
            return _backward(a, interval.sub(narrowed, rb), env) and _backward(
                b, interval.sub(narrowed, _forward(a, env)), env
            )
        case Sub(a, b):
            ra, rb = _forward(a, env), _forward(b, env)
            return _backward(a, interval.add(narrowed, rb), env) and _backward(
                b, interval.sub(_forward(a, env), narrowed), env
            )
        case Neg(a):
            return _backward(a, interval.neg(narrowed), env)
        case Scale(c, a):
            if c == 0:
                return narrowed[0] <= 0 <= narrowed[1]
            lo, hi = narrowed
            if c > 0:
                demanded_a = (_ceil_div(lo, c), _floor_div(hi, c))
            else:
                demanded_a = (_ceil_div(hi, c), _floor_div(lo, c))
            if demanded_a[0] > demanded_a[1]:
                return False
            return _backward(a, demanded_a, env)
        case Abs(a):
            lo, hi = narrowed
            lo = max(lo, 0)
            if lo > hi:
                return False
            # Preimage of [lo, hi] under abs is [-hi, -lo] ∪ [lo, hi];
            # joining the two arms is the interval-domain imprecision.
            ra = _forward(a, env)
            arms = []
            if interval.meet(ra, (lo, hi)) is not None:
                arms.append((lo, hi))
            if interval.meet(ra, (-hi, -lo)) is not None:
                arms.append((-hi, -lo))
            if not arms:
                return False
            demanded_a = arms[0]
            for arm in arms[1:]:
                demanded_a = interval.join(demanded_a, arm)
            return _backward(a, demanded_a, env)
        case Min(a, b):
            # Both operands are >= the demanded lower bound; at least one
            # is <= the demanded upper bound (hull imprecision accepted).
            ok_a = _backward(a, (narrowed[0], _forward(a, env)[1]), env)
            ok_b = _backward(b, (narrowed[0], _forward(b, env)[1]), env)
            return ok_a and ok_b
        case Max(a, b):
            ok_a = _backward(a, (_forward(a, env)[0], narrowed[1]), env)
            ok_b = _backward(b, (_forward(b, env)[0], narrowed[1]), env)
            return ok_a and ok_b
        case IntIte(_, _, _):
            return True  # no useful backward information through the hull
        case _:
            raise TypeError(f"not an integer expression: {expr!r}")


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    return a // b


# ---------------------------------------------------------------------------
# Constraint-level propagation
# ---------------------------------------------------------------------------


def _propagate(formula: BoolExpr, env: Env) -> bool:
    """Narrow ``env`` to satisfy ``formula``; False when infeasible."""
    match formula:
        case BoolLit(value):
            return value
        case Cmp(op, left, right):
            return _propagate_cmp(op, left, right, env)
        case And(args):
            return all(_propagate(arg, env) for arg in args)
        case Or(args):
            # Branch-and-join: propagate each disjunct from a copy of the
            # current env and take the per-variable hull of the feasible
            # branches.  This is the join-point imprecision of forward
            # abstract interpretation.
            feasible: list[Env] = []
            for arg in args:
                branch = dict(env)
                if _propagate(arg, branch):
                    feasible.append(branch)
            if not feasible:
                return False
            for name in env:
                ranges = [branch[name] for branch in feasible]
                joined = ranges[0]
                for rng in ranges[1:]:
                    joined = interval.join(joined, rng)
                env[name] = joined
            return True
        case Not(inner):
            if isinstance(inner, InSet):
                return _propagate_not_inset(inner, env)
            return _propagate(nnf(formula), env)
        case InSet(arg, values):
            lo, hi = _forward(arg, env)
            members = sorted(v for v in values if lo <= v <= hi)
            if not members:
                return False
            return _backward(arg, (members[0], members[-1]), env)
        case _:
            return _propagate(nnf(formula), env)


def _propagate_cmp(op: CmpOp, left: IntExpr, right: IntExpr, env: Env) -> bool:
    ra, rb = _forward(left, env), _forward(right, env)
    if op is CmpOp.LE:
        return _backward(left, (ra[0], rb[1]), env) and _backward(
            right, (_forward(left, env)[0], rb[1]), env
        )
    if op is CmpOp.LT:
        return _propagate_cmp(CmpOp.LE, left, Sub(right, Lit(1)), env)
    if op is CmpOp.GE:
        return _propagate_cmp(CmpOp.LE, right, left, env)
    if op is CmpOp.GT:
        return _propagate_cmp(CmpOp.LT, right, left, env)
    if op is CmpOp.EQ:
        both = interval.meet(ra, rb)
        if both is None:
            return False
        return _backward(left, both, env) and _backward(right, both, env)
    # NE: only useful at the range boundary.
    if ra[0] == ra[1] == rb[0] == rb[1]:
        return False
    if rb[0] == rb[1]:
        excluded = rb[0]
        lo, hi = ra
        if lo == excluded:
            lo += 1
        if hi == excluded:
            hi -= 1
        if lo > hi:
            return False
        return _backward(left, (lo, hi), env)
    return True


def _propagate_not_inset(atom: InSet, env: Env) -> bool:
    lo, hi = _forward(atom.arg, env)
    while lo in atom.values and lo <= hi:
        lo += 1
    while hi in atom.values and hi >= lo:
        hi -= 1
    if lo > hi:
        return False
    return _backward(atom.arg, (lo, hi), env)


# ---------------------------------------------------------------------------
# Public surface
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HC4Result:
    """One baseline posterior computation."""

    box: Box | None
    iterations: int
    elapsed: float

    def size(self) -> int:
        """Number of secrets in the posterior over-approximation."""
        return 0 if self.box is None else self.box.volume()


def hc4_posterior(
    query: BoolExpr,
    secret: SecretSpec,
    prior: Box,
    response: bool,
    *,
    max_iterations: int = 20,
) -> HC4Result:
    """The baseline's posterior for one observed query response."""
    formula = nnf(query if response else Not(query))
    names = secret.field_names
    start = time.perf_counter()
    env = _env_of(prior, names)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        before = dict(env)
        if not _propagate(formula, env):
            elapsed = time.perf_counter() - start
            return HC4Result(None, iterations, elapsed)
        if env == before:
            break
    elapsed = time.perf_counter() - start
    return HC4Result(_box_of(env, names), iterations, elapsed)


class ProbLiteAnalyzer:
    """Stateful baseline mirroring Prob's per-query analysis loop.

    Tracks a box of knowledge per secret and re-runs HC4 on every query
    execution — the "expensive static analysis each time" cost model the
    paper contrasts ANOSY against.
    """

    def __init__(self, secret: SecretSpec):
        self.secret = secret
        self.knowledge = Box(secret.bounds())
        self.analysis_time = 0.0
        self.queries_run = 0

    def observe(self, query: BoolExpr, response: bool) -> Box | None:
        """Refine tracked knowledge with one observed response."""
        result = hc4_posterior(query, self.secret, self.knowledge, response)
        self.analysis_time += result.elapsed
        self.queries_run += 1
        if result.box is not None:
            self.knowledge = result.box
        return result.box
