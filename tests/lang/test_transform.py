"""Tests for AST traversals: free vars, substitution, NNF, folding."""

from hypothesis import given, settings

from repro.lang.ast import (
    And,
    BoolLit,
    Implies,
    Iff,
    InSet,
    Lit,
    Not,
    Or,
    Var,
    var,
)
from repro.lang.eval import eval_bool, eval_int
from repro.lang.transform import (
    conjoin,
    disjoin,
    fold_constants,
    free_vars,
    nnf,
    substitute,
)
from tests.strategies import bool_exprs, int_exprs


class TestFreeVars:
    def test_single_variable(self):
        assert free_vars(Var("x")) == {"x"}

    def test_no_variables(self):
        assert free_vars(Lit(3) + 4) == frozenset()

    def test_nested(self, nearby):
        assert free_vars(nearby) == {"x", "y"}

    def test_through_boolean_structure(self):
        formula = (var("a") <= 1) & (var("b") > 2) | ~(var("c").eq(0))
        assert free_vars(formula) == {"a", "b", "c"}


class TestSubstitute:
    def test_constant_substitution(self):
        expr = var("x") + var("y")
        assert substitute(expr, {"x": 10}) == Lit(10) + var("y")

    def test_expression_substitution(self):
        expr = var("x") <= 5
        result = substitute(expr, {"x": var("z") + 1})
        assert free_vars(result) == {"z"}

    def test_untouched_variables_remain(self):
        expr = var("x") + var("y")
        assert free_vars(substitute(expr, {"x": 0})) == {"y"}

    def test_substitution_commutes_with_eval(self):
        expr = abs(var("x") - 3) + var("y")
        substituted = substitute(expr, {"x": 7})
        assert eval_int(substituted, {"y": 2}) == eval_int(expr, {"x": 7, "y": 2})


class TestNnf:
    def test_negated_comparison_flips(self):
        formula = Not(var("x") <= 5)
        assert nnf(formula) == (var("x") > 5)

    def test_de_morgan_and(self):
        formula = Not(And((var("x") <= 5, var("y") <= 5)))
        result = nnf(formula)
        assert isinstance(result, Or)

    def test_not_survives_only_on_inset(self):
        formula = Not(InSet(Var("x"), frozenset({1})))
        result = nnf(formula)
        assert isinstance(result, Not)
        assert isinstance(result.arg, InSet)

    def test_implies_eliminated(self):
        formula = Implies(var("x") <= 5, var("y") <= 5)
        result = nnf(formula)
        assert "Implies" not in repr(type(result))

    def test_iff_eliminated(self):
        formula = Iff(var("x") <= 5, var("y") <= 5)
        assert not isinstance(nnf(formula), Iff)

    @given(bool_exprs(("x", "y")))
    @settings(max_examples=120, deadline=None)
    def test_nnf_preserves_semantics(self, formula):
        converted = nnf(formula)
        for env in ({"x": 0, "y": 0}, {"x": -3, "y": 7}, {"x": 12, "y": 1}):
            assert eval_bool(converted, env) == eval_bool(formula, env)


class TestFolding:
    def test_arithmetic_folds(self):
        assert fold_constants(Lit(2) + 3) == Lit(5)
        assert fold_constants(Lit(2) - 3) == Lit(-1)
        assert fold_constants(-Lit(4)) == Lit(-4)
        assert fold_constants(abs(Lit(-9))) == Lit(9)

    def test_comparison_folds(self):
        assert fold_constants(Lit(2) <= Lit(3)) == BoolLit(True)
        assert fold_constants(Lit(2) > Lit(3)) == BoolLit(False)

    def test_and_unit_absorbing(self):
        p = var("x") <= 1
        assert fold_constants(And((BoolLit(True), p))) == p
        assert fold_constants(And((BoolLit(False), p))) == BoolLit(False)

    def test_or_unit_absorbing(self):
        p = var("x") <= 1
        assert fold_constants(Or((BoolLit(False), p))) == p
        assert fold_constants(Or((BoolLit(True), p))) == BoolLit(True)

    @given(bool_exprs(("x", "y")))
    @settings(max_examples=120, deadline=None)
    def test_fold_preserves_semantics(self, formula):
        folded = fold_constants(formula)
        for env in ({"x": 0, "y": 0}, {"x": -5, "y": 9}, {"x": 11, "y": 3}):
            assert eval_bool(folded, env) == eval_bool(formula, env)

    @given(int_exprs(("x", "y")))
    @settings(max_examples=120, deadline=None)
    def test_fold_preserves_int_semantics(self, expr):
        folded = fold_constants(expr)
        for env in ({"x": 0, "y": 0}, {"x": -5, "y": 9}):
            assert eval_int(folded, env) == eval_int(expr, env)


class TestSmartConstructors:
    def test_conjoin_flattens(self):
        p, q, r = var("x") <= 1, var("y") <= 2, var("x") > 0
        assert conjoin((And((p, q)), r)) == And((p, q, r))

    def test_conjoin_empty_is_true(self):
        assert conjoin(()) == BoolLit(True)

    def test_conjoin_single_passthrough(self):
        p = var("x") <= 1
        assert conjoin((p,)) == p

    def test_disjoin_flattens(self):
        p, q, r = var("x") <= 1, var("y") <= 2, var("x") > 0
        assert disjoin((Or((p, q)), r)) == Or((p, q, r))

    def test_disjoin_short_circuits_true(self):
        assert disjoin((BoolLit(True), var("x") <= 1)) == BoolLit(True)
