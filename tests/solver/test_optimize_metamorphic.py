"""Metamorphic tests for the box optimizers.

The optimizers' outputs must be *covariant* under symmetries of the
query that no step of the algorithm should be able to observe:

* **variable renaming** — the search is positional (boxes are the
  environments), so renaming every variable (keeping the positional
  order) must not change a single bound;
* **coordinate translation** — midpoint bisection, Manhattan-face cuts,
  doubling growth, and grid masks all commute with integer shifts, so
  translating the query and the space translates the result exactly.

Independently of any symmetry, every box ``maximal_box`` grows must
re-verify: ``decide_forall`` on the grown box is the refinement-type
obligation the synthesized artifact will be checked against.
"""

from hypothesis import given, settings

from repro.lang.ast import Lit, Sub, Var
from repro.lang.transform import substitute
from repro.solver.boxes import Box
from repro.solver.decide import decide_forall
from repro.solver.optimize import OptimizeOptions, bounding_box, maximal_box
from tests.strategies import bool_exprs, renamings, translations

NAMES = ("x", "y")
SPACE = Box.make((-8, 12), (0, 15))

#: Both optimizer configurations whose outputs must respect the
#: symmetries: the fused/oracle default and the pure worklist path.
OPTION_SETS = [
    OptimizeOptions(),
    OptimizeOptions(fused_probes=False),
    OptimizeOptions(vector_threshold=0),
]


def _translate_query(formula, shifts):
    """``phi'`` with ``phi'(x + t) == phi(x)`` (shift the region by +t)."""
    return substitute(
        formula,
        {name: Sub(Var(name), Lit(shift)) for name, shift in shifts.items()},
    )


def _translate_box(box, shifts):
    return Box(
        tuple(
            (lo + shifts[name], hi + shifts[name])
            for (lo, hi), name in zip(box.bounds, NAMES)
        )
    )


def _assert_no_face_grows(formula, box, space):
    """Per-face maximality: no face can extend by a single unit."""
    for dim in range(box.arity):
        lo, hi = box.bounds[dim]
        slo, shi = space.bounds[dim]
        if hi < shi:
            assert not decide_forall(
                formula, box.with_dim(dim, hi + 1, hi + 1), NAMES
            )
        if lo > slo:
            assert not decide_forall(
                formula, box.with_dim(dim, lo - 1, lo - 1), NAMES
            )


class TestRenamingInvariance:
    @given(bool_exprs(NAMES), renamings(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_maximal_box_invariant(self, formula, mapping):
        renamed_names = tuple(mapping[name] for name in NAMES)
        renamed = substitute(
            formula, {name: Var(mapping[name]) for name in NAMES}
        )
        for options in OPTION_SETS:
            original = maximal_box(formula, SPACE, NAMES, options)
            relabeled = maximal_box(renamed, SPACE, renamed_names, options)
            assert original.box == relabeled.box
            assert original.proved_empty == relabeled.proved_empty

    @given(bool_exprs(NAMES), renamings(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_bounding_box_invariant(self, formula, mapping):
        renamed_names = tuple(mapping[name] for name in NAMES)
        renamed = substitute(
            formula, {name: Var(mapping[name]) for name in NAMES}
        )
        for options in OPTION_SETS:
            original = bounding_box(formula, SPACE, NAMES, options)
            relabeled = bounding_box(renamed, SPACE, renamed_names, options)
            assert original.box == relabeled.box
            assert original.proved_empty == relabeled.proved_empty


class TestTranslationCovariance:
    @given(bool_exprs(NAMES), translations(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_maximal_box_translates_exactly_on_oracle_path(self, formula, shifts):
        """The default (oracle) path is purely geometric, so the result
        translates bound-for-bound."""
        shifted_query = _translate_query(formula, shifts)
        shifted_space = _translate_box(SPACE, shifts)
        original = maximal_box(formula, SPACE, NAMES)
        shifted = maximal_box(shifted_query, shifted_space, NAMES)
        if original.box is None:
            assert shifted.box is None
            assert original.proved_empty == shifted.proved_empty
        else:
            assert shifted.box == _translate_box(original.box, shifts)

    @given(bool_exprs(NAMES), translations(NAMES))
    @settings(max_examples=40, deadline=None)
    def test_maximal_box_translates_semantically_on_worklist_paths(
        self, formula, shifts
    ):
        """Worklist splits read the formula's *structure*, which the
        substitution perturbs, so different (equally maximal) boxes are
        legitimate — the translated result must still be an all-true,
        per-face-maximal box, and emptiness verdicts must agree."""
        shifted_query = _translate_query(formula, shifts)
        shifted_space = _translate_box(SPACE, shifts)
        for options in OPTION_SETS[1:]:
            original = maximal_box(formula, SPACE, NAMES, options)
            shifted = maximal_box(shifted_query, shifted_space, NAMES, options)
            assert (original.box is None) == (shifted.box is None)
            if shifted.box is None:
                assert original.proved_empty == shifted.proved_empty
                continue
            assert decide_forall(shifted_query, shifted.box, NAMES)
            _assert_no_face_grows(shifted_query, shifted.box, shifted_space)

    @given(bool_exprs(NAMES), translations(NAMES))
    @settings(max_examples=60, deadline=None)
    def test_bounding_box_translates(self, formula, shifts):
        """Bounding boxes are canonical, so every path is exact."""
        shifted_query = _translate_query(formula, shifts)
        shifted_space = _translate_box(SPACE, shifts)
        for options in OPTION_SETS:
            original = bounding_box(formula, SPACE, NAMES, options)
            shifted = bounding_box(shifted_query, shifted_space, NAMES, options)
            if original.box is None:
                assert shifted.box is None
            else:
                assert shifted.box == _translate_box(original.box, shifts)


class TestGrownBoxesReverify:
    @given(bool_exprs(NAMES))
    @settings(max_examples=80, deadline=None)
    def test_every_grown_box_satisfies_forall(self, formula):
        for options in OPTION_SETS:
            outcome = maximal_box(formula, SPACE, NAMES, options)
            if outcome.box is not None:
                # The refinement obligation the checker will discharge:
                # the grown box must lie entirely inside the region.
                assert decide_forall(formula, outcome.box, NAMES)

    @given(bool_exprs(NAMES))
    @settings(max_examples=40, deadline=None)
    def test_lexicographic_mode_grows_verified_boxes(self, formula):
        options = OptimizeOptions(mode="lexicographic")
        outcome = maximal_box(formula, SPACE, NAMES, options)
        if outcome.box is not None:
            assert decide_forall(formula, outcome.box, NAMES)
