"""Tests for the powerset domain A_P, brute-force checked."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.eval import eval_bool
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box
from tests.strategies import boxes_within

SPEC = SecretSpec.declare("S", x=(0, 9), y=(0, 9))
SPACE = Box(SPEC.bounds())


def _points_of(domain: PowersetDomain) -> set:
    return {p for p in SPACE.iter_points() if domain.contains(p)}


powersets = st.builds(
    lambda inc, exc: PowersetDomain(SPEC, tuple(inc), tuple(exc)),
    st.lists(boxes_within(SPACE), max_size=3),
    st.lists(boxes_within(SPACE), max_size=2),
)


class TestConstruction:
    def test_top(self):
        assert PowersetDomain.top(SPEC).size() == 100

    def test_bottom(self):
        bottom = PowersetDomain.bottom(SPEC)
        assert bottom.size() == 0
        assert bottom.is_empty()

    def test_from_interval(self):
        interval = IntervalDomain(SPEC, Box.make((1, 2), (3, 4)))
        lifted = PowersetDomain.from_interval(interval)
        assert _points_of(lifted) == {
            p for p in SPACE.iter_points() if interval.contains(p)
        }

    def test_from_empty_interval(self):
        lifted = PowersetDomain.from_interval(IntervalDomain.bottom(SPEC))
        assert lifted.is_empty()

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="global bounds"):
            PowersetDomain(SPEC, (Box.make((0, 10), (0, 9)),), ())


class TestSemantics:
    def test_membership_include_exclude(self):
        domain = PowersetDomain(
            SPEC, (Box.make((0, 5), (0, 5)),), (Box.make((2, 3), (2, 3)),)
        )
        assert domain.contains((0, 0))
        assert not domain.contains((2, 2))  # excluded
        assert not domain.contains((9, 9))  # never included

    @given(powersets)
    @settings(max_examples=80, deadline=None)
    def test_size_is_exact(self, domain):
        assert domain.size() == len(_points_of(domain))

    @given(powersets)
    @settings(max_examples=60, deadline=None)
    def test_pieces_partition_the_domain(self, domain):
        covered = [p for piece in domain.pieces() for p in piece.iter_points()]
        assert set(covered) == _points_of(domain)
        assert len(covered) == len(set(covered))

    @given(powersets, powersets)
    @settings(max_examples=60, deadline=None)
    def test_subset_is_exact(self, a, b):
        assert a.is_subset(b) == (_points_of(a) <= _points_of(b))

    @given(powersets, powersets)
    @settings(max_examples=60, deadline=None)
    def test_intersection_semantics(self, a, b):
        result = a.intersect(b)
        assert _points_of(result) == _points_of(a) & _points_of(b)

    def test_intersect_with_interval_lifts(self):
        powerset = PowersetDomain(SPEC, (Box.make((0, 5), (0, 5)),), ())
        interval = IntervalDomain(SPEC, Box.make((3, 9), (3, 9)))
        result = powerset.intersect(interval)
        assert _points_of(result) == {
            p
            for p in SPACE.iter_points()
            if powerset.contains(p) and interval.contains(p)
        }

    @given(powersets)
    @settings(max_examples=60, deadline=None)
    def test_member_formula_semantics(self, domain):
        formula = domain.member_formula()
        for point in list(SPACE.iter_points())[::3]:
            env = dict(zip(SPEC.field_names, point))
            assert eval_bool(formula, env) == domain.contains(point)

    @given(powersets)
    @settings(max_examples=60, deadline=None)
    def test_normalized_preserves_semantics(self, domain):
        assert _points_of(domain.normalized()) == _points_of(domain)
        assert not domain.normalized().exclude

    def test_size_disjoint_estimate_on_synthesis_invariant(self):
        # Disjoint includes, excludes inside the include region: the
        # paper's formula is exact here.
        domain = PowersetDomain(
            SPEC,
            (Box.make((0, 3), (0, 9)), Box.make((5, 9), (0, 9))),
            (Box.make((0, 1), (0, 1)),),
        )
        assert domain.size_disjoint_estimate() == domain.size()

    def test_size_disjoint_estimate_overlapping_is_not_exact(self):
        domain = PowersetDomain(
            SPEC, (Box.make((0, 5), (0, 5)), Box.make((0, 5), (0, 5))), ()
        )
        assert domain.size_disjoint_estimate() == 72
        assert domain.size() == 36
