"""Box optimization: the νZ (Z3 optimizer) substitute.

Two optimization problems arise in section 5.3:

* **Under-approximation** — find a *maximal* box entirely inside the region
  ``phi``, Pareto-balancing the per-dimension widths (``maximize u_i - l_i``
  jointly; the paper prefers 20x20 over 400x1).
* **Over-approximation** — find the *minimal* box containing the region
  (``minimize u_i - l_i``), which is exactly the region's bounding box.

:func:`maximal_box` seeds from a fat all-true sub-box (best-first search)
and grows each face round-robin with doubling step sizes; round-robin
interleaving is what produces Pareto-balanced growth.  The ``lexicographic``
mode (fully exhaust one face before the next) exists for the ablation that
reproduces the degenerate elongated solutions the paper attributes to
single-objective optimization.

:func:`bounding_box` binary-searches each face of the minimal covering box
with exact existence checks, so over-approximations are optimal (when the
time budget suffices).

A soft wall-clock budget mirrors Z3's optimization timeouts: on expiry the
search returns the best box found so far — still *correct* (verification is
separate), merely less precise, exactly like the paper's B4 benchmark.

Every optimizer call builds **one** evaluation engine (compiled kernels by
default, see :mod:`repro.solver.kernels`) and threads it through all of
its probes: the query is lowered once, and the specialization memo is
shared across the doubling/halving probes — which re-decide heavily
overlapping slabs — instead of being rebuilt per ``decide_forall`` call.

Balanced growth goes one step further by default (``fused_probes``):
each doubling round's face probes are decided **fused** on one worklist
(:func:`~repro.solver.decide.decide_forall_front`), with the small
undecided boundary boxes of the whole round parked and flushed as
stacked NumPy fronts, then committed in face order with corner
re-verification — decision-identical to the sequential round-robin,
but one batched evaluation where there were ``2n`` scalar ones.
Aggregate :class:`~repro.solver.decide.SolverStats` for the whole
optimization (including the probe-front counters) come back on the
:class:`OptimizeOutcome`.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Sequence

from repro.lang.ast import BoolExpr
from repro.solver import vectoreval
from repro.solver.boxes import Box, subtract_box
from repro.solver.decide import (
    SolverStats,
    TrueBoxResult,
    decide_forall,
    decide_forall_front,
    find_model,
    find_true_box,
    make_engine,
)

__all__ = [
    "OptimizeOptions",
    "OptimizeOutcome",
    "RegionOracle",
    "build_region_oracle",
    "maximal_box",
    "bounding_box",
]


@dataclass(frozen=True)
class OptimizeOptions:
    """Tuning knobs for the optimizers.

    ``time_budget`` is a soft per-call limit in seconds (``None`` = no
    limit): growth stops and the current best is returned when exceeded.
    ``mode`` is ``"balanced"`` (round-robin, Pareto-like) or
    ``"lexicographic"`` (ablation A1).  ``use_kernels`` selects the
    compiled-kernel engine (default) or the tree-walking interpreter;
    ``vector_threshold`` caps vectorized small-box finishing (``None`` =
    engine default, ``0`` = pure Python).
    """

    seed_pops: int = 50_000
    mode: str = "balanced"
    time_budget: float | None = 10.0
    use_kernels: bool = True
    vector_threshold: int | None = None
    #: Batch every doubling round's face probes into one fused worklist
    #: with stacked grid fronts (see :func:`decide_forall_front`).
    #: Decision-identical to the sequential round-robin; off reproduces
    #: the probe-at-a-time growth for baselines and ablations.
    fused_probes: bool = True
    #: Pre-kernel split heuristic; benchmark baselines only.
    legacy_splits: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("balanced", "lexicographic"):
            raise ValueError(f"unknown mode {self.mode!r}")


@dataclass(frozen=True)
class OptimizeOutcome:
    """An optimization result plus how it terminated."""

    box: Box | None
    timed_out: bool
    proved_empty: bool = False
    #: Aggregate solver counters across every probe of the optimization.
    stats: SolverStats | None = None


class _Deadline:
    def __init__(self, budget: float | None):
        self.expiry = None if budget is None else time.monotonic() + budget
        self.expired = False

    def over(self) -> bool:
        if self.expiry is not None and time.monotonic() > self.expiry:
            self.expired = True
        return self.expired


def _clip(bounds, other):
    """Intersection of two bounds tuples, or ``None`` when disjoint.

    Plain-tuple geometry for the oracle's hot path — no :class:`Box`
    allocation or validation per probe.
    """
    clipped = []
    for (alo, ahi), (blo, bhi) in zip(bounds, other):
        lo = alo if alo > blo else blo
        hi = ahi if ahi < bhi else bhi
        if lo > hi:
            return None
        clipped.append((lo, hi))
    return tuple(clipped)


class RegionOracle:
    """Exact probe verdicts for one query region, from one grid pass.

    One full-space satisfaction mask of the query, folded into a
    :class:`~repro.solver.vectoreval.MaskTable`, answers every decision
    the optimizers ask — ``forall`` growth probes, ``exists`` bisection
    probes, all-true seed checks — in O(2^d) table lookups.  Views share
    the table:

    * :meth:`negated` flips the query polarity (the False-side synthesis
      and the over-mode hole carving both target complements);
    * :meth:`restrict` adds *geometric* region conjuncts: ``within``
      (the ``inside(outer)`` constraint of hole carving) and ``avoid``
      (the ``outside(boxes)`` constraints of powerset iterations).
      Carved boxes are pairwise disjoint, so restricted counts are exact
      by subtraction — this is how "the previous iteration's accepted
      boxes" thread into the next iteration without any new evaluation.

    Verdicts equal ``decide_forall``/``decide_exists`` on the
    corresponding conjoined formula exactly: the mask is exact and the
    geometry mirrors the region conjuncts one-for-one.
    """

    __slots__ = ("table", "positive", "within", "avoid")

    def __init__(
        self,
        table: vectoreval.MaskTable,
        positive: bool = True,
        within: Box | None = None,
        avoid: tuple[Box, ...] = (),
    ):
        self.table = table
        self.positive = positive
        self.within = within
        self.avoid = avoid

    def negated(self) -> "RegionOracle":
        """The complement-query view (same table, same geometry)."""
        return RegionOracle(self.table, not self.positive, self.within, self.avoid)

    def restrict(
        self, within: Box | None = None, avoid: Sequence[Box] = ()
    ) -> "RegionOracle":
        """A view with additional geometric region constraints."""
        merged = self.within
        if within is not None:
            merged = within if merged is None else merged.intersect(within)
            if merged is None:
                raise ValueError("within-restriction is empty")
        return RegionOracle(
            self.table, self.positive, merged, self.avoid + tuple(avoid)
        )

    def _polarity_count(self, bounds) -> int:
        count = self.table.count(bounds)
        if self.positive:
            return count
        volume = 1
        for lo, hi in bounds:
            volume *= hi - lo + 1
        return volume - count

    def region_count(self, box: Box) -> int:
        """Cells of ``box`` satisfying the query *and* the geometry."""
        bounds = box.bounds
        if self.within is not None:
            bounds = _clip(bounds, self.within.bounds)
            if bounds is None:
                return 0
        total = self._polarity_count(bounds)
        for hole in self.avoid:
            overlap = _clip(bounds, hole.bounds)
            if overlap is not None:
                total -= self._polarity_count(overlap)
        return total

    def forall(self, box: Box) -> bool:
        """Whether every cell of ``box`` satisfies query and geometry."""
        bounds = box.bounds
        if self.within is not None:
            for (lo, hi), (wlo, whi) in zip(bounds, self.within.bounds):
                if lo < wlo or hi > whi:
                    return False
        for hole in self.avoid:
            if _clip(bounds, hole.bounds) is not None:
                return False
        volume = 1
        for lo, hi in bounds:
            volume *= hi - lo + 1
        return self._polarity_count(bounds) == volume

    def exists(self, box: Box) -> bool:
        """Whether some cell of ``box`` satisfies query and geometry."""
        return self.region_count(box) > 0


def build_region_oracle(
    phi: BoolExpr,
    space: Box,
    names: Sequence[str],
    options: OptimizeOptions = OptimizeOptions(),
    *,
    engine=None,
) -> RegionOracle | None:
    """A :class:`RegionOracle` for ``phi`` on ``space``, when affordable.

    Returns ``None`` — and callers fall back to worklist decisions —
    when fused probes are off, the growth mode is an ablation, NumPy is
    unavailable or disabled (``vector_threshold=0``), or the space
    exceeds :data:`~repro.solver.vectoreval.DEFAULT_GROWTH_WINDOW_CELLS`.
    """
    if not options.fused_probes or options.mode != "balanced":
        return None
    if not vectoreval.AVAILABLE or options.vector_threshold == 0:
        return None
    if space.volume() > vectoreval.DEFAULT_GROWTH_WINDOW_CELLS:
        return None
    if engine is None:
        engine = make_engine(
            names, options.use_kernels, legacy_splits=options.legacy_splits
        )
    mask = engine.grid_mask(engine.lower(phi), space)
    return RegionOracle(vectoreval.MaskTable(mask, space))


@dataclass
class _Search:
    """Everything one optimization run threads through its probes."""

    engine: object
    stats: SolverStats
    vector_threshold: int | None
    deadline: _Deadline
    #: Optional precomputed region oracle answering probes in O(1).
    oracle: RegionOracle | None = None

    def oracle_forall(self, box: Box) -> bool:
        self.stats.front_boxes += 1
        return self.oracle.forall(box)

    def exists(self, phi: BoolExpr, box: Box, names: Sequence[str]) -> bool:
        if self.oracle is not None:
            self.stats.front_boxes += 1
            return self.oracle.exists(box)
        return self.model(phi, box, names) is not None

    def forall(self, phi: BoolExpr, box: Box, names: Sequence[str]) -> bool:
        return decide_forall(
            phi,
            box,
            names,
            self.stats,
            engine=self.engine,
            vector_threshold=self.vector_threshold,
        )

    def forall_front(
        self, phi: BoolExpr, boxes: Sequence[Box], names: Sequence[str]
    ) -> list[bool]:
        return decide_forall_front(
            phi,
            boxes,
            names,
            self.stats,
            engine=self.engine,
            vector_threshold=self.vector_threshold,
        )

    def model(self, phi: BoolExpr, box: Box, names: Sequence[str]):
        return find_model(
            phi,
            box,
            names,
            self.stats,
            engine=self.engine,
            vector_threshold=self.vector_threshold,
        )


def _search_for(
    names: Sequence[str],
    options: OptimizeOptions,
    engine=None,
    oracle: RegionOracle | None = None,
) -> _Search:
    stats = SolverStats()
    if oracle is not None:
        # One consumed front per optimization run that has an oracle.
        stats.probe_fronts += 1
    return _Search(
        engine=engine
        if engine is not None
        else make_engine(
            names, options.use_kernels, legacy_splits=options.legacy_splits
        ),
        stats=stats,
        vector_threshold=options.vector_threshold,
        deadline=_Deadline(options.time_budget),
        oracle=oracle,
    )


def _seed_from_oracle(
    search: _Search, seeds: Sequence[Box], max_pops: int
) -> TrueBoxResult:
    """Best-first all-true seed search answered entirely by the oracle.

    Same structure as :func:`~repro.solver.decide.find_true_box` — a
    volume-ordered heap, ``max_pops`` budget, ``exhausted`` semantics —
    but each pop is one O(2^d) table count instead of an abstract
    evaluation, and mixed boxes bisect their widest dimension (no
    residual formula exists to supply split hints).
    """
    oracle = search.oracle
    stats = search.stats
    counter = len(seeds)
    heap = [(-seed.volume(), index, seed) for index, seed in enumerate(seeds)]
    heapq.heapify(heap)
    pops = 0
    while heap and pops < max_pops:
        neg_volume, _, current = heapq.heappop(heap)
        pops += 1
        stats.tick()
        stats.front_boxes += 1
        count = oracle.region_count(current)
        if count == -neg_volume:
            return TrueBoxResult(current, exhausted=False)
        if count == 0:
            continue
        stats.splits += 1
        for half in current.split(current.widest_dim()):
            counter += 1
            heapq.heappush(heap, (-half.volume(), counter, half))
    return TrueBoxResult(None, exhausted=not heap)


def maximal_box(
    phi: BoolExpr,
    space: Box,
    names: Sequence[str],
    options: OptimizeOptions = OptimizeOptions(),
    *,
    engine=None,
    seed_boxes: Sequence[Box] | None = None,
    oracle: RegionOracle | None = None,
) -> OptimizeOutcome:
    """A maximal box inside the region ``{x in space | phi(x)}``.

    Returns ``box=None`` when the region is empty (``proved_empty=True``)
    or when no all-true seed was found within budget.  Passing a shared
    ``engine`` lets a caller amortize one query lowering (and one
    specialization memo) over many optimizer calls.  ``seed_boxes``
    warm-starts the all-true seed search from a cover of the region (the
    iterative synthesizer passes the residue pieces left by previous
    iterations); the caller guarantees the cover — see
    :func:`~repro.solver.decide.find_true_box`.

    An ``oracle`` (see :class:`RegionOracle`) answers every probe of the
    run from one precomputed grid pass; it must describe exactly the
    region of ``phi`` on ``space``.  When none is passed, one is built
    here if affordable (``None`` gates fall back to worklist decisions).
    """
    if engine is None:
        engine = make_engine(
            names, options.use_kernels, legacy_splits=options.legacy_splits
        )
    if oracle is None:
        oracle = build_region_oracle(phi, space, names, options, engine=engine)
    search = _search_for(names, options, engine, oracle)
    if search.oracle is not None:
        seeded = _seed_from_oracle(
            search,
            seed_boxes if seed_boxes is not None else [space],
            options.seed_pops,
        )
    else:
        seeded = find_true_box(
            phi,
            space,
            names,
            max_pops=options.seed_pops,
            stats=search.stats,
            engine=search.engine,
            vector_threshold=options.vector_threshold,
            seed_boxes=seed_boxes,
        )
    if seeded.box is None:
        if seeded.exhausted:
            return OptimizeOutcome(
                None, timed_out=False, proved_empty=True, stats=search.stats
            )
        # Budgeted search failed; fall back to a point witness if any.
        witness = search.model(phi, space, names)
        if witness is None:
            return OptimizeOutcome(
                None, timed_out=False, proved_empty=True, stats=search.stats
            )
        seed = Box(tuple((x, x) for x in witness))
    else:
        seed = seeded.box

    if options.mode != "balanced":
        grown = _grow_lexicographic(phi, seed, space, names, search)
    elif options.fused_probes:
        grown = _grow_balanced_fused(phi, seed, space, names, search)
    else:
        grown = _grow_balanced(phi, seed, space, names, search)
    return OptimizeOutcome(
        grown, timed_out=search.deadline.expired, stats=search.stats
    )


def _slab(box: Box, space: Box, dim: int, side: str, step: int) -> Box | None:
    """The extension slab of ``box`` along one face, clamped to ``space``.

    Returns ``None`` when the face already touches the space boundary.
    Slabs are structurally non-empty, so construction skips validation
    (this runs once per face per growth round).
    """
    lo, hi = box.bounds[dim]
    slo, shi = space.bounds[dim]
    if side == "hi":
        if hi >= shi:
            return None
        face = (hi + 1, min(hi + step, shi))
    else:
        if lo <= slo:
            return None
        face = (max(lo - step, slo), lo - 1)
    bounds = list(box.bounds)
    bounds[dim] = face
    return Box.trusted(tuple(bounds))


def _extend(box: Box, slab: Box, dim: int) -> Box:
    """Merge an accepted slab back into the box along ``dim``."""
    lo, hi = box.bounds[dim]
    slo, shi = slab.bounds[dim]
    return box.with_dim(dim, min(lo, slo), max(hi, shi))


def _grow_balanced(
    phi: BoolExpr,
    box: Box,
    space: Box,
    names: Sequence[str],
    search: _Search,
) -> Box:
    """Round-robin doubling growth of every face until all are stuck."""
    faces = [(dim, side) for dim in range(box.arity) for side in ("lo", "hi")]
    steps = {face: 1 for face in faces}
    alive = set(faces)
    while alive and not search.deadline.over():
        for face in faces:
            if face not in alive:
                continue
            dim, side = face
            step = steps[face]
            slab = _slab(box, space, dim, side, step)
            if slab is None:
                alive.discard(face)
                continue
            if search.forall(phi, slab, names):
                box = _extend(box, slab, dim)
                steps[face] = step * 2
            elif step > 1:
                steps[face] = max(step // 2, 1)
            else:
                alive.discard(face)
            if search.deadline.over():
                break
    return box


#: Growth-window margin, as a fraction of the growing box's width
#: (numerator, denominator).  Generous margins amortize better over long
#: growth runs but cost more per evaluation; half a width measured best
#: on the Manhattan-ball compile benchmark.
WINDOW_MARGIN = (1, 2)


def _window_box(box: Box, space: Box, cap: int) -> Box | None:
    """The growth window around ``box``: half its width of margin per
    side, clamped to ``space`` — or ``None`` when that exceeds the cap."""
    num, den = WINDOW_MARGIN
    bounds: list[tuple[int, int]] = []
    volume = 1
    for (lo, hi), (slo, shi) in zip(box.bounds, space.bounds):
        margin = max((hi - lo + 1) * num // den, 1)
        wlo = max(lo - margin, slo)
        whi = min(hi + margin, shi)
        volume *= whi - wlo + 1
        if volume > cap:
            return None
        bounds.append((wlo, whi))
    return Box(tuple(bounds))


class _GrowthWindow:
    """One grid evaluation answering a whole growth phase's probes.

    The mask of ``phi`` over a window around the growing box is evaluated
    once; any probe slab inside the window is decided by slicing the mask
    (exact, so verdicts equal ``decide_forall``'s).  Growth past the
    window re-centers and re-evaluates it; spaces where no affordable
    window exists disable it, and probes fall back to fused worklist
    fronts.  Counted in ``SolverStats``: one ``probe_fronts`` tick per
    evaluation, one ``front_boxes`` tick per probe answered by slicing.
    """

    __slots__ = ("search", "node", "space", "enabled", "window", "mask", "center")

    def __init__(self, search: _Search, phi: BoolExpr, space: Box):
        self.search = search
        self.node = search.engine.lower(phi)
        self.space = space
        self.enabled = vectoreval.AVAILABLE and (
            search.vector_threshold is None or search.vector_threshold > 0
        )
        self.window: Box | None = None
        self.mask = None
        self.center: Box | None = None

    def recenter(self, box: Box) -> None:
        # Re-centering on the box the window was already built for would
        # recompute a byte-identical mask (slabs that escaped it once
        # will escape it again); let those probes fall through to the
        # fused worklist front instead.
        if not self.enabled or box == self.center:
            return
        self.center = box
        self.window = _window_box(
            box, self.space, vectoreval.DEFAULT_GROWTH_WINDOW_CELLS
        )
        if self.window is None:
            self.enabled = False
            self.mask = None
            return
        self.mask = self.search.engine.grid_mask(self.node, self.window)
        self.search.stats.probe_fronts += 1

    def forall(self, slab: Box) -> bool | None:
        """The probe verdict, or ``None`` when the slab escapes the window."""
        window = self.window
        if self.mask is None or not window.contains_box(slab):
            return None
        self.search.stats.front_boxes += 1
        region = self.mask[
            tuple(
                slice(lo - wlo, hi - wlo + 1)
                for (lo, hi), (wlo, _) in zip(slab.bounds, window.bounds)
            )
        ]
        return bool(region.all())


def _grow_balanced_fused(
    phi: BoolExpr,
    box: Box,
    space: Box,
    names: Sequence[str],
    search: _Search,
) -> Box:
    """Round-robin doubling growth with every round's probes fused.

    Decision-identical to :func:`_grow_balanced`, round by round, but the
    probes of a whole doubling round are answered together instead of one
    ``decide_forall`` call each:

    * A :class:`_GrowthWindow` mask — one stacked grid evaluation over
      the seed's doubling neighborhood — decides every slab it contains
      by pure NumPy slicing.
    * Slabs outside the window (or with no affordable window at all) are
      decided in **one** fused worklist per round
      (:func:`~repro.solver.decide.decide_forall_front` — shared
      specialization memo, stacked grid fronts).

    Commits then replay in face order.  A later face's sequential slab is
    its round-start slab extended along the dimensions already committed
    this round, so

    ``forall(sequential slab) = forall(round-start slab) and forall(corners)``

    where the *corners* are the (much smaller) difference boxes, decided
    the same way.  Accept/reject per face — and therefore the grown box
    and the doubling-step evolution — match the sequential algorithm
    exactly.
    """
    faces = [(dim, side) for dim in range(box.arity) for side in ("lo", "hi")]
    steps = {face: 1 for face in faces}
    alive = set(faces)
    # The window is only ever consulted when there is no oracle, and is
    # armed lazily from the second round on — so its construction (an
    # ``engine.lower`` walk) is deferred until a probe could use it.
    window: _GrowthWindow | None = None
    armed = False

    def decide(slabs: list[Box]) -> list[bool]:
        nonlocal window
        if search.oracle is not None:
            # The whole-space oracle subsumes the window entirely.
            return [search.oracle_forall(slab) for slab in slabs]
        if window is None:
            window = _GrowthWindow(search, phi, space)
        verdicts: list[bool | None] = [window.forall(slab) for slab in slabs]
        misses = [i for i, verdict in enumerate(verdicts) if verdict is None]
        if misses and armed and window.enabled:
            # Growth escaped the window (or it is not built yet):
            # re-center on the current box before paying a worklist
            # decision.
            window.recenter(box)
            for i in misses:
                verdicts[i] = window.forall(slabs[i])
            misses = [i for i in misses if verdicts[i] is None]
        if misses:
            fused = search.forall_front(phi, [slabs[i] for i in misses], names)
            for i, verdict in zip(misses, fused):
                verdicts[i] = verdict
        return verdicts

    rounds = 0
    while alive and not search.deadline.over():
        search.stats.fused_rounds += 1
        rounds += 1
        # Seeds are usually near-maximal: most growths die in round one,
        # so the window mask only pays for itself once a second round
        # proves this growth has legs.
        armed = rounds > 1
        candidates: list[tuple[tuple[int, str], Box]] = []
        for face in faces:
            if face not in alive:
                continue
            slab = _slab(box, space, *face, steps[face])
            if slab is None:
                alive.discard(face)
                continue
            candidates.append((face, slab))
        if not candidates:
            break
        verdicts = decide([slab for _, slab in candidates])
        for (face, slab), accepted in zip(candidates, verdicts):
            dim, side = face
            if accepted:
                # Earlier commits this round may have widened the slab's
                # cross-section; only the corner difference is unproven.
                actual = _slab(box, space, dim, side, steps[face])
                corners = subtract_box(actual, slab)
                if corners:
                    accepted = all(decide(corners))
                if accepted:
                    box = _extend(box, actual, dim)
                    steps[face] *= 2
                    continue
            if steps[face] > 1:
                steps[face] = max(steps[face] // 2, 1)
            else:
                alive.discard(face)
    return box


def _grow_lexicographic(
    phi: BoolExpr,
    box: Box,
    space: Box,
    names: Sequence[str],
    search: _Search,
) -> Box:
    """Exhaust one face completely before touching the next (ablation)."""
    for dim in range(box.arity):
        for side in ("lo", "hi"):
            if search.deadline.over():
                return box
            grown = _max_extension(phi, box, space, names, dim, side, search)
            if grown is not None:
                box = grown
    return box


def _max_extension(
    phi: BoolExpr,
    box: Box,
    space: Box,
    names: Sequence[str],
    dim: int,
    side: str,
    search: _Search,
) -> Box | None:
    """Binary-search the largest valid extension of one face, if any."""
    lo, hi = box.bounds[dim]
    slo, shi = space.bounds[dim]
    limit = shi - hi if side == "hi" else lo - slo
    if limit <= 0:
        return None
    best = 0
    low, high = 1, limit
    while low <= high:
        mid = (low + high) // 2
        slab = _slab(box, space, dim, side, mid)
        assert slab is not None
        if search.forall(phi, slab, names):
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    if best == 0:
        return None
    accepted = _slab(box, space, dim, side, best)
    assert accepted is not None
    return _extend(box, accepted, dim)


def bounding_box(
    phi: BoolExpr,
    space: Box,
    names: Sequence[str],
    options: OptimizeOptions = OptimizeOptions(),
    *,
    engine=None,
    oracle: RegionOracle | None = None,
) -> OptimizeOutcome:
    """The minimal box covering ``{x in space | phi(x)}``.

    Exact (the optimal over-approximating interval domain): each of the
    ``2n`` faces is found by binary search with exhaustive existence
    checks.  Returns ``box=None`` with ``proved_empty=True`` for an empty
    region.  On budget expiry the not-yet-tightened faces keep their space
    bounds — a sound but looser cover.  An ``oracle`` answers the
    bisection existence probes in O(1); one is built here when none is
    passed and the space is affordable.
    """
    if engine is None:
        engine = make_engine(
            names, options.use_kernels, legacy_splits=options.legacy_splits
        )
    if oracle is None:
        oracle = build_region_oracle(phi, space, names, options, engine=engine)
    search = _search_for(names, options, engine, oracle)
    witness = search.model(phi, space, names)
    if witness is None:
        return OptimizeOutcome(
            None, timed_out=False, proved_empty=True, stats=search.stats
        )

    bounds: list[tuple[int, int]] = []
    for dim in range(space.arity):
        slo, shi = space.bounds[dim]
        if search.deadline.over():
            bounds.append((slo, shi))
            continue
        low = _search_face(phi, space, names, dim, "lo", witness[dim], search)
        high = _search_face(phi, space, names, dim, "hi", witness[dim], search)
        bounds.append((low, high))
    return OptimizeOutcome(
        Box(tuple(bounds)), timed_out=search.deadline.expired, stats=search.stats
    )


def _search_face(
    phi: BoolExpr,
    space: Box,
    names: Sequence[str],
    dim: int,
    side: str,
    witness_coord: int,
    search: _Search,
) -> int:
    """Binary-search the extreme coordinate of the region along one face."""
    slo, shi = space.bounds[dim]
    if side == "lo":
        low, high = slo, witness_coord
        best = witness_coord
        while low <= high and not search.deadline.over():
            mid = (low + high) // 2
            restricted = space.with_dim(dim, low, mid)
            if search.exists(phi, restricted, names):
                best = mid
                high = mid - 1
            else:
                low = mid + 1
        return best if not search.deadline.over() else slo
    low, high = witness_coord, shi
    best = witness_coord
    while low <= high and not search.deadline.over():
        mid = (low + high) // 2
        restricted = space.with_dim(dim, mid, high)
        if search.exists(phi, restricted, names):
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    return best if not search.deadline.over() else shi
