"""``Protected`` secrets and the ``Unprotectable`` interface.

Figure 2's ``downgrade`` accepts any ``protected s`` with an
``Unprotectable`` instance (``unprotect :: p t -> t``).  Here that is a
:class:`typing.Protocol`; :class:`ProtectedSecret` is the canonical
implementation, wrapping a :class:`~repro.monad.secure.Labeled` secret
tuple together with its :class:`~repro.lang.secrets.SecretSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.lang.secrets import SecretSpec, SecretValue
from repro.monad.labels import Label, SECRET
from repro.monad.secure import Labeled

__all__ = ["Unprotectable", "ProtectedSecret"]


@runtime_checkable
class Unprotectable(Protocol):
    """Anything the TCB can strip down to a raw secret tuple."""

    spec: SecretSpec

    def unprotect_tcb(self) -> SecretValue:
        """TCB-only: the raw secret value."""
        ...


@dataclass(frozen=True)
class ProtectedSecret:
    """A labeled secret tuple, the usual argument to ``downgrade``."""

    spec: SecretSpec
    boxed: Labeled[SecretValue]

    @classmethod
    def seal(
        cls, spec: SecretSpec, value: SecretValue, label: Label = SECRET
    ) -> "ProtectedSecret":
        """Box a validated secret value at ``label``."""
        checked = spec.validate_value(value)
        return cls(spec, Labeled(label, checked))

    @property
    def label(self) -> Label:
        """The secrecy label of the boxed value."""
        return self.boxed.label

    def unprotect_tcb(self) -> SecretValue:
        """TCB-only: the raw secret (used by ``downgrade`` after checks)."""
        return self.boxed.value_tcb()

    def __repr__(self) -> str:
        return f"ProtectedSecret({self.spec.name}, {self.boxed.label!r})"
