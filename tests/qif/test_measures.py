"""Tests for the quantitative information-flow measures."""

from fractions import Fraction

import pytest

from repro.domains.box import IntervalDomain
from repro.lang.ast import var
from repro.lang.secrets import SecretSpec
from repro.qif.measures import (
    bayes_vulnerability,
    guessing_entropy,
    min_entropy,
    query_leakage,
    shannon_entropy,
)
from repro.solver.boxes import Box

SPEC = SecretSpec.declare("S", x=(0, 15), y=(0, 15))


def _knowledge(volume_width):
    return IntervalDomain(SPEC, Box.make((0, volume_width - 1), (0, 15)))


class TestPosteriorMeasures:
    def test_shannon_entropy_of_full_space(self):
        assert shannon_entropy(IntervalDomain.top(SPEC)) == 8.0  # log2(256)

    def test_min_entropy_equals_shannon_for_uniform(self):
        knowledge = _knowledge(4)
        assert min_entropy(knowledge) == shannon_entropy(knowledge)

    def test_bayes_vulnerability(self):
        assert bayes_vulnerability(_knowledge(4)) == Fraction(1, 64)

    def test_guessing_entropy(self):
        assert guessing_entropy(_knowledge(4)) == Fraction(65, 2)

    def test_singleton_knowledge_has_zero_entropy(self):
        point = IntervalDomain(SPEC, Box.make((3, 3), (7, 7)))
        assert shannon_entropy(point) == 0.0
        assert bayes_vulnerability(point) == 1

    def test_empty_knowledge_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy(IntervalDomain.bottom(SPEC))


class TestQueryLeakage:
    def test_balanced_query_leaks_one_bit(self):
        leakage = query_leakage(var("x") <= 7, SPEC)
        assert leakage.probability_true == Fraction(1, 2)
        assert leakage.shannon_leakage == pytest.approx(1.0)

    def test_skewed_query_leaks_less_on_average(self):
        balanced = query_leakage(var("x") <= 7, SPEC)
        skewed = query_leakage(var("x").eq(0) & var("y").eq(0), SPEC)
        assert skewed.shannon_leakage < balanced.shannon_leakage

    def test_min_entropy_leakage_of_pinpoint_query(self):
        leakage = query_leakage(var("x").eq(0) & var("y").eq(0), SPEC)
        # Worst case (True response) pins the secret: log2(256) - log2(1).
        assert leakage.min_entropy_leakage == pytest.approx(8.0)

    def test_constant_query_leaks_nothing(self):
        leakage = query_leakage(var("x") >= 0, SPEC)
        assert leakage.probability_true == 1
        assert leakage.shannon_leakage == 0.0

    def test_leakage_against_prior(self):
        prior = IntervalDomain(SPEC, Box.make((0, 7), (0, 15)))
        leakage = query_leakage(var("x") <= 3, SPEC, prior)
        assert leakage.prior_size == 128
        assert leakage.probability_true == Fraction(1, 2)

    def test_counts_partition_prior(self):
        leakage = query_leakage(var("x") + var("y") <= 9, SPEC)
        assert leakage.true_size + leakage.false_size == leakage.prior_size

    def test_empty_prior_rejected(self):
        with pytest.raises(ValueError):
            query_leakage(var("x") <= 3, SPEC, IntervalDomain.bottom(SPEC))

    def test_monotone_radius_monotone_leakage(self):
        # Bigger diamonds are closer to balanced: leakage grows until the
        # True-probability crosses 1/2.
        leakages = [
            query_leakage(abs(var("x") - 8) + abs(var("y") - 8) <= r, SPEC).shannon_leakage
            for r in (1, 3, 5)
        ]
        assert leakages == sorted(leakages)
