"""Tests for sketches, QInfo posterior functions, and knowledge lifting."""

import pytest

from repro.core.qinfo import QInfo, intersect_knowledge
from repro.core.sketch import fill, make_indset_sketch
from repro.domains.box import IntervalDomain
from repro.domains.powerset import PowersetDomain
from repro.lang.ast import var
from repro.lang.secrets import SecretSpec
from repro.solver.boxes import Box

SPEC = SecretSpec.declare("S", x=(0, 19), y=(0, 19))
QUERY = var("x") + var("y") <= 10


class TestSketch:
    def test_under_sketch_holes(self):
        sketch = make_indset_sketch(QUERY, SPEC, "under", "interval")
        assert sketch.true_hole.refinement.positive == QUERY
        assert "□ :: A" in sketch.true_hole.render()
        assert "under_indset" in sketch.render()

    def test_over_sketch_holes(self):
        sketch = make_indset_sketch(QUERY, SPEC, "over", "powerset")
        assert sketch.false_hole.refinement.negative == QUERY

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            make_indset_sketch(QUERY, SPEC, "sideways", "interval")

    def test_bad_domain_kind(self):
        with pytest.raises(ValueError):
            make_indset_sketch(QUERY, SPEC, "under", "octagon")

    def test_fill_checks_spec(self):
        sketch = make_indset_sketch(QUERY, SPEC, "under", "interval")
        other = SecretSpec.declare("Other", a=(0, 1))
        with pytest.raises(ValueError, match="filled with a domain"):
            fill(sketch, IntervalDomain.top(other), IntervalDomain.top(other))

    def test_fill_returns_pair(self):
        sketch = make_indset_sketch(QUERY, SPEC, "under", "interval")
        a = IntervalDomain(SPEC, Box.make((0, 5), (0, 5)))
        b = IntervalDomain(SPEC, Box.make((11, 19), (0, 19)))
        assert fill(sketch, a, b) == (a, b)


class TestIntersectKnowledge:
    def test_interval_interval(self):
        a = IntervalDomain(SPEC, Box.make((0, 10), (0, 10)))
        b = IntervalDomain(SPEC, Box.make((5, 19), (5, 19)))
        result = intersect_knowledge(a, b)
        assert isinstance(result, IntervalDomain)
        assert result.size() == 36

    def test_mixed_lifts_to_powerset(self):
        interval = IntervalDomain(SPEC, Box.make((0, 10), (0, 10)))
        powerset = PowersetDomain.top(SPEC)
        result = intersect_knowledge(interval, powerset)
        assert isinstance(result, PowersetDomain)
        assert result.size() == interval.size()


class TestQInfo:
    def _qinfo(self):
        true_ind = IntervalDomain(SPEC, Box.make((0, 5), (0, 5)))
        false_ind = IntervalDomain(SPEC, Box.make((11, 19), (0, 19)))
        over_true = IntervalDomain(SPEC, Box.make((0, 10), (0, 10)))
        over_false = IntervalDomain.top(SPEC)
        return QInfo(
            name="q",
            query=QUERY,
            secret=SPEC,
            under_indset=(true_ind, false_ind),
            over_indset=(over_true, over_false),
        )

    def test_run_evaluates_query(self):
        qinfo = self._qinfo()
        assert qinfo.run((0, 0)) is True
        assert qinfo.run((19, 19)) is False

    def test_run_accepts_mapping(self):
        assert self._qinfo().run({"x": 1, "y": 2}) is True

    def test_underapprox_intersects_prior(self):
        qinfo = self._qinfo()
        prior = IntervalDomain(SPEC, Box.make((3, 19), (0, 19)))
        post_true, post_false = qinfo.underapprox(prior)
        assert post_true.size() == 3 * 6  # x in [3,5], y in [0,5]
        assert post_false.size() == 9 * 20

    def test_overapprox_intersects_prior(self):
        qinfo = self._qinfo()
        prior = IntervalDomain(SPEC, Box.make((0, 4), (0, 19)))
        post_true, _post_false = qinfo.overapprox(prior)
        assert post_true.size() == 5 * 11

    def test_approx_dispatches_on_mode(self):
        qinfo = self._qinfo()
        prior = IntervalDomain.top(SPEC)
        assert qinfo.approx(prior, mode="under")[0].size() == 36
        assert qinfo.approx(prior, mode="over")[0].size() == 121
        with pytest.raises(ValueError):
            qinfo.approx(prior, mode="diagonal")

    def test_missing_mode_raises(self):
        qinfo = QInfo("q", QUERY, SPEC, under_indset=None, over_indset=None)
        with pytest.raises(ValueError, match="compiled without"):
            qinfo.underapprox(IntervalDomain.top(SPEC))
        with pytest.raises(ValueError, match="compiled without"):
            qinfo.overapprox(IntervalDomain.top(SPEC))

    def test_as_function(self):
        qinfo = self._qinfo()
        approx = qinfo.as_function(mode="under")
        post_true, _ = approx(IntervalDomain.top(SPEC))
        assert post_true.size() == 36

    def test_indset_pair_returns_the_shared_artifact(self):
        qinfo = self._qinfo()
        assert qinfo.indset_pair(mode="under") is qinfo.under_indset
        assert qinfo.indset_pair(mode="over") is qinfo.over_indset
        with pytest.raises(ValueError):
            qinfo.indset_pair(mode="diagonal")

    def test_indset_pair_missing_mode_raises(self):
        qinfo = QInfo("q", QUERY, SPEC, under_indset=None, over_indset=None)
        with pytest.raises(ValueError, match="compiled without"):
            qinfo.indset_pair(mode="under")

    def test_approx_batch_matches_pointwise_approx(self):
        qinfo = self._qinfo()
        priors = [
            IntervalDomain.top(SPEC),
            IntervalDomain(SPEC, Box.make((3, 19), (0, 19))),
            IntervalDomain(SPEC, Box.make((0, 4), (0, 19))),
        ]
        batched = qinfo.approx_batch(priors, mode="under")
        assert batched == [qinfo.approx(p, mode="under") for p in priors]

    def test_approx_batch_shares_pairs_for_equal_priors(self):
        qinfo = self._qinfo()
        priors = [IntervalDomain.top(SPEC), IntervalDomain.top(SPEC)]
        first, second = qinfo.approx_batch(priors)
        assert first is second
