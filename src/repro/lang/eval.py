"""Concrete evaluation of query expressions.

Queries are total functions from secret assignments to booleans; this module
is the reference semantics against which the abstract evaluator
(:mod:`repro.solver.abseval`) and the synthesized approximations are tested.
"""

from __future__ import annotations

from typing import Mapping

from repro.lang.ast import (
    Abs,
    Add,
    And,
    BoolExpr,
    BoolLit,
    Cmp,
    Expr,
    Iff,
    Implies,
    InSet,
    IntExpr,
    IntIte,
    Lit,
    Max,
    Min,
    Neg,
    Not,
    Or,
    Scale,
    Sub,
    Var,
)

__all__ = ["eval_int", "eval_bool", "EvalError"]


class EvalError(Exception):
    """Raised when an expression refers to a variable missing from the env."""


def eval_int(expr: IntExpr, env: Mapping[str, int]) -> int:
    """Evaluate an integer expression under the assignment ``env``."""
    match expr:
        case Lit(value):
            return value
        case Var(name):
            try:
                return env[name]
            except KeyError as exc:
                raise EvalError(f"unbound variable {name!r}") from exc
        case Add(left, right):
            return eval_int(left, env) + eval_int(right, env)
        case Sub(left, right):
            return eval_int(left, env) - eval_int(right, env)
        case Neg(arg):
            return -eval_int(arg, env)
        case Scale(coeff, arg):
            return coeff * eval_int(arg, env)
        case Abs(arg):
            return abs(eval_int(arg, env))
        case Min(left, right):
            return min(eval_int(left, env), eval_int(right, env))
        case Max(left, right):
            return max(eval_int(left, env), eval_int(right, env))
        case IntIte(cond, then_branch, else_branch):
            if eval_bool(cond, env):
                return eval_int(then_branch, env)
            return eval_int(else_branch, env)
        case _:
            raise TypeError(f"not an integer expression: {expr!r}")


def eval_bool(expr: BoolExpr, env: Mapping[str, int]) -> bool:
    """Evaluate a boolean expression under the assignment ``env``."""
    match expr:
        case BoolLit(value):
            return value
        case Cmp(op, left, right):
            return op.holds(eval_int(left, env), eval_int(right, env))
        case And(args):
            return all(eval_bool(arg, env) for arg in args)
        case Or(args):
            return any(eval_bool(arg, env) for arg in args)
        case Not(arg):
            return not eval_bool(arg, env)
        case Implies(antecedent, consequent):
            return (not eval_bool(antecedent, env)) or eval_bool(consequent, env)
        case Iff(left, right):
            return eval_bool(left, env) == eval_bool(right, env)
        case InSet(arg, values):
            return eval_int(arg, env) in values
        case _:
            raise TypeError(f"not a boolean expression: {expr!r}")


def as_predicate(expr: BoolExpr):
    """Wrap a boolean expression as a plain Python predicate on envs."""

    def predicate(env: Mapping[str, int]) -> bool:
        return eval_bool(expr, env)

    return predicate


def _check_is_expr(expr: object) -> Expr:
    if not isinstance(expr, Expr):
        raise TypeError(f"expected an Expr, got {expr!r}")
    return expr
