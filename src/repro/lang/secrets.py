"""Secret type declarations.

The paper models secrets as products of bounded integers (``UserLoc`` with
``x`` and ``y`` coordinates, a user profile with birth year and education
level, ...).  A :class:`SecretSpec` declares the field names and the global
bounds of each field — the "top" knowledge an attacker starts from.

Booleans and enums are encoded as small integer ranges, exactly as the paper
suggests (section 4.3: "types that can be encoded to integers").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.lang.ast import Var

__all__ = ["FieldSpec", "SecretSpec", "SecretValue"]

SecretValue = tuple[int, ...]


@dataclass(frozen=True)
class FieldSpec:
    """A single integer field of a secret with its global bounds."""

    name: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(
                f"field {self.name!r}: empty range [{self.lo}, {self.hi}]"
            )

    @property
    def width(self) -> int:
        """Number of values the field can take."""
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """Whether ``value`` is inside the declared bounds."""
        return self.lo <= value <= self.hi


@dataclass(frozen=True)
class SecretSpec:
    """A product-of-bounded-integers secret type.

    Example
    -------
    >>> user_loc = SecretSpec.declare("UserLoc", x=(0, 399), y=(0, 399))
    >>> user_loc.space_size()
    160000
    """

    name: str
    fields: tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in {self.name!r}: {names}")
        if not self.fields:
            raise ValueError("a secret needs at least one field")

    @classmethod
    def declare(cls, name: str, **bounds: tuple[int, int]) -> "SecretSpec":
        """Declare a secret type from ``field=(lo, hi)`` keyword bounds."""
        specs = tuple(FieldSpec(fname, lo, hi) for fname, (lo, hi) in bounds.items())
        return cls(name, specs)

    # -- structure -------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of integer fields."""
        return len(self.fields)

    @property
    def field_names(self) -> tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> FieldSpec:
        """Look up a field by name."""
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"{self.name!r} has no field {name!r}")

    def vars(self) -> tuple[Var, ...]:
        """AST variables for each field, in declaration order."""
        return tuple(Var(f.name) for f in self.fields)

    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Per-field ``(lo, hi)`` bounds in declaration order."""
        return tuple((f.lo, f.hi) for f in self.fields)

    # -- value handling ---------------------------------------------------
    def space_size(self) -> int:
        """Total number of possible secrets (the size of ⊤)."""
        size = 1
        for f in self.fields:
            size *= f.width
        return size

    def to_env(self, value: SecretValue | Mapping[str, int]) -> dict[str, int]:
        """Convert a secret tuple (or mapping) to an evaluation environment."""
        if isinstance(value, Mapping):
            env = {f.name: int(value[f.name]) for f in self.fields}
        else:
            if len(value) != self.arity:
                raise ValueError(
                    f"{self.name} expects {self.arity} fields, got {len(value)}"
                )
            env = {f.name: int(v) for f, v in zip(self.fields, value)}
        return env

    def validate_value(self, value: SecretValue) -> SecretValue:
        """Check a secret tuple against the declared bounds."""
        env = self.to_env(value)
        for f in self.fields:
            if not f.contains(env[f.name]):
                raise ValueError(
                    f"{self.name}.{f.name}={env[f.name]} outside "
                    f"[{f.lo}, {f.hi}]"
                )
        return tuple(env[f.name] for f in self.fields)

    def iter_space(self) -> Iterator[SecretValue]:
        """Enumerate every secret (use only for tiny spaces/tests)."""
        def rec(index: int, prefix: tuple[int, ...]) -> Iterator[SecretValue]:
            if index == self.arity:
                yield prefix
                return
            f = self.fields[index]
            for value in range(f.lo, f.hi + 1):
                yield from rec(index + 1, prefix + (value,))

        yield from rec(0, ())

    def make(self, **field_values: int) -> SecretValue:
        """Build a secret tuple from named field values."""
        missing = set(self.field_names) - set(field_values)
        if missing:
            raise ValueError(f"missing fields: {sorted(missing)}")
        return self.validate_value(tuple(field_values[n] for n in self.field_names))
