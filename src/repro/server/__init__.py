"""The serving runtime: sharded, asynchronous, restartable, budgeted.

Where :mod:`repro.service` is the synchronous library surface (cache,
sessions, facade), :mod:`repro.server` is the *process* around it — the
layer ROADMAP's "heavy traffic" north star asks for:

* :mod:`repro.server.gateway` — the asyncio front door
  (:class:`~repro.server.gateway.DeclassificationServer`): coalesces
  identical in-flight compiles, batches each tick's downgrade requests
  into single :meth:`handle_batch
  <repro.service.api.DeclassificationService.handle_batch>` passes, and
  sheds load past configured bounds;
* :mod:`repro.server.workers` — a
  :class:`~repro.server.workers.ShardedCompilePool` running synthesis in
  worker processes sharded by canonical query hash so each shard's memos
  stay hot, and a :class:`~repro.server.workers.ServingShardPool`
  running the warm downgrade path in worker processes sharded by user id
  so batch evaluation escapes the gateway's GIL;
* :mod:`repro.server.store` — a durable
  :class:`~repro.server.store.SQLiteStore` of compiled artifacts
  (speaking the :mod:`repro.service.cache` v2 key/codec format) *and*
  per-user ledger bounds, warm-starting the whole runtime — budgets
  included — across restarts;
* :mod:`repro.server.ledger` — a
  :class:`~repro.server.ledger.PrivacyBudgetLedger` folding every
  answered query into per-user cumulative knowledge bounds and refusing
  queries that would cross a policy floor, making *multi-query
  composition* an enforced budget instead of implicit session state;
  optionally durable (any :class:`~repro.server.ledger.LedgerBackend`)
  and decaying (:class:`~repro.server.ledger.DecayPolicy` +
  :meth:`advance_epoch
  <repro.server.ledger.PrivacyBudgetLedger.advance_epoch>`);
* :mod:`repro.server.supervise` — the
  :class:`~repro.server.supervise.ShardSupervisor`: typed shard
  failures, per-job deadlines, bounded retries with jittered backoff,
  per-shard circuit breakers, and restart-plus-rehydrate recovery that
  keeps the runtime serving through process death;
* :mod:`repro.server.faults` — deterministic, seeded fault injection
  (:class:`~repro.server.faults.FaultPlan`) driving the chaos suite
  through every failure point reproducibly;
* :mod:`repro.server.journal` — a write-ahead
  :class:`~repro.server.journal.RequestJournal` of every state-changing
  request, keyed by client idempotency keys, appended before execution
  and acknowledged (atomically with the ledger's durable-mirror fold)
  after it — exactly-once effects over at-least-once delivery;
* :mod:`repro.server.replay` — deterministic replay
  (:class:`~repro.server.replay.ReplaySession`): re-execute a recorded
  journal against a fresh twin and assert every decision, refusal, and
  audit digest comes out bit-identical;
* :mod:`repro.server.edge` — a stdlib-only HTTP adapter
  (:class:`~repro.server.edge.HttpEdge`) with structured error bodies,
  ``Retry-After`` on degradation, ``Idempotency-Key`` passthrough, and
  the observability surface (``/metrics``, ``/statusz``, structured
  access log) — zero domain rules.

Telemetry lives in :mod:`repro.obs` (registry, replay-stable tracer,
and the gateway's :class:`~repro.obs.hub.MetricsHub` fold point); every
layer above records into it and ``ServerConfig(observe=False)`` turns
the whole surface into no-ops.
"""

from repro.server.edge import HttpEdge
from repro.server.faults import FaultPlan, FaultSpec
from repro.server.gateway import (
    DeclassificationServer,
    JournalRecovery,
    ServerCompileReceipt,
    ServerConfig,
    ServerDegraded,
    ServerOverloaded,
    ServerStats,
)
from repro.server.journal import (
    JOURNAL_FORMAT_VERSION,
    JournalBackend,
    JournalEntry,
    MemoryJournalBackend,
    RequestJournal,
    chain_digest,
    live_state,
)
from repro.server.ledger import (
    LEDGER_FORMAT_VERSION,
    BudgetAccount,
    ChargeRecord,
    DecayPolicy,
    LedgerBackend,
    LedgerDecision,
    LedgerFormatError,
    LedgerInvariantError,
    PrivacyBudgetLedger,
)
from repro.server.replay import (
    ReplayDivergence,
    ReplayRefusal,
    ReplayReport,
    ReplaySession,
    replay_journal,
)
from repro.server.store import SQLiteStore, StoreFormatError
from repro.server.supervise import (
    CircuitBreaker,
    CodecError,
    RetryPolicy,
    ShardCrash,
    ShardFailure,
    ShardSupervisor,
    ShardTimeout,
    SupervisorStats,
    classify_failure,
)
from repro.server.workers import (
    ServingShardPool,
    ShardedCompilePool,
    ShardOverloaded,
    ShardStats,
    compile_payload,
    result_kind,
    serve_payload,
    serve_shard_of,
    shard_of,
)

__all__ = [
    "DeclassificationServer",
    "JournalRecovery",
    "ServerCompileReceipt",
    "ServerConfig",
    "ServerDegraded",
    "ServerOverloaded",
    "ServerStats",
    "FaultPlan",
    "FaultSpec",
    "HttpEdge",
    "JOURNAL_FORMAT_VERSION",
    "JournalBackend",
    "JournalEntry",
    "MemoryJournalBackend",
    "RequestJournal",
    "chain_digest",
    "live_state",
    "ReplayDivergence",
    "ReplayRefusal",
    "ReplayReport",
    "ReplaySession",
    "replay_journal",
    "CircuitBreaker",
    "CodecError",
    "RetryPolicy",
    "ShardCrash",
    "ShardFailure",
    "ShardSupervisor",
    "ShardTimeout",
    "SupervisorStats",
    "classify_failure",
    "LEDGER_FORMAT_VERSION",
    "BudgetAccount",
    "ChargeRecord",
    "DecayPolicy",
    "LedgerBackend",
    "LedgerDecision",
    "LedgerFormatError",
    "LedgerInvariantError",
    "PrivacyBudgetLedger",
    "SQLiteStore",
    "StoreFormatError",
    "ServingShardPool",
    "ShardedCompilePool",
    "ShardOverloaded",
    "ShardStats",
    "compile_payload",
    "result_kind",
    "serve_payload",
    "serve_shard_of",
    "shard_of",
]
