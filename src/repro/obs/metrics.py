"""A thread-safe in-process metrics registry with Prometheus exposition.

The serving runtime records three instrument kinds — monotone
:class:`Counter` s, last-value :class:`Gauge` s, and fixed-log-bucket
:class:`Histogram` s — through one :class:`MetricsRegistry` per process
(the gateway's, owned by its :class:`~repro.obs.hub.MetricsHub`, plus
one per serving-shard process whose deltas ride home on batch
responses).  Design constraints, in order:

* **cheap hot path** — recording is a dict lookup plus an addition
  under one registry-wide lock (the GIL already serializes the
  arithmetic; the lock only makes snapshots consistent).  Label
  resolution (:meth:`Instrument.labels`) is the expensive step and is
  meant to be hoisted out of loops: resolve a child once, record on it
  many times.
* **consistent snapshots** — :meth:`MetricsRegistry.snapshot` and
  :meth:`MetricsRegistry.exposition` hold the same lock every recording
  takes, so a snapshot is a true point in time: it can never observe a
  histogram whose ``count`` moved but whose ``sum`` did not, or any
  other torn pair of values (tests/obs/test_metrics.py hammers this).
* **secret-independence channels** — every instrument declares which
  output channel it writes (``decision`` / ``timing`` /
  ``declassified``, see :data:`CHANNELS`).  ANOSY's guarantee makes
  telemetry itself an output: anything in the ``decision`` channel must
  be bit-identical across two runs that differ only in secrets, and the
  Hypothesis net in tests/obs/test_secret_independence.py asserts
  exactly that by exporting the channel in isolation.
* **delta shipping** — a shard-process registry can
  :meth:`~MetricsRegistry.drain` everything recorded since its last
  drain as a JSON-safe report, and the gateway's registry
  :meth:`~MetricsRegistry.absorb` s it, declaring any instruments it
  has not seen.  Counters and histogram buckets fold additively;
  gauges keep the last reported value.

No dependencies beyond the standard library; nothing here imports the
rest of ``repro``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "CHANNELS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "log_buckets",
]

#: The output-channel taxonomy (DESIGN.md §13).  ``decision`` series are
#: functions of the request stream and secret-independent decisions
#: alone — bit-identical across secret-differing runs and across
#: replays.  ``timing`` series carry wall-clock observations (latencies,
#: transition timestamps) that no two runs share.  ``declassified``
#: series expose knowledge-bound sizes: values derived from responses
#: the client already received, safe to export precisely because they
#: are declassified, but excluded from the bit-identity net.
CHANNELS = ("decision", "timing", "declassified")


def log_buckets(
    lo: float, hi: float, *, per_decade: int = 3
) -> tuple[float, ...]:
    """Fixed logarithmic bucket boundaries from ``lo`` up past ``hi``.

    Boundaries are spaced ``per_decade`` per factor of ten, starting at
    ``lo`` and extended until one reaches or exceeds ``hi`` — so the
    spacing is fixed by construction and the top finite bucket always
    covers ``hi``.  (The implicit ``+Inf`` bucket is added by
    :class:`Histogram`, not here.)
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade!r}")
    factor = 10.0 ** (1.0 / per_decade)
    bounds = [float(lo)]
    while bounds[-1] < hi and len(bounds) < 200:
        bounds.append(bounds[-1] * factor)
    # Round to a stable short decimal so exposition and drain reports
    # are byte-stable across platforms' float printing.
    return tuple(float(f"{b:.6g}") for b in bounds)


#: Default buckets for wall-clock latencies: 100µs .. ~100s.
DEFAULT_TIME_BUCKETS = log_buckets(1e-4, 100.0, per_decade=3)

#: Default buckets for batch sizes / queue depths: 1 .. ~10k items.
DEFAULT_SIZE_BUCKETS = log_buckets(1.0, 10_000.0, per_decade=3)


def _format_value(value: float) -> str:
    """Prometheus text-format value: integers bare, floats via repr."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _series_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Child:
    """One labeled series of an instrument; records happen here."""

    __slots__ = ("_instrument", "labels", "_value", "_reported")

    def __init__(self, instrument: "Instrument", labels: Mapping[str, str]):
        self._instrument = instrument
        self.labels = dict(labels)
        self._value = 0.0
        self._reported = 0.0

    # -- recording (registry lock held via the owning instrument) ---------
    def inc(self, amount: float = 1.0) -> None:
        """Add to a counter (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        with self._instrument._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Set a gauge to ``value``."""
        with self._instrument._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Adjust a gauge by ``amount`` (either sign)."""
        with self._instrument._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value (point read; use snapshots for consistency)."""
        with self._instrument._lock:
            return self._value


class _HistogramChild(_Child):
    """One labeled histogram series: bucket counts plus sum and count."""

    __slots__ = ("buckets", "sum", "count", "_reported_state")

    def __init__(self, instrument: "Histogram", labels: Mapping[str, str]):
        super().__init__(instrument, labels)
        self.buckets = [0] * (len(instrument.bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self._reported_state: tuple[list[int], float, int] | None = None

    def observe(self, value: float) -> None:
        """Record one observation; sum/count/bucket move atomically."""
        instrument = self._instrument
        index = bisect_left(instrument.bounds, value)
        with instrument._lock:
            self.buckets[index] += 1
            self.sum += value
            self.count += 1

    def inc(self, amount: float = 1.0) -> None:  # pragma: no cover - guard
        raise TypeError("histograms record via observe(), not inc()")

    def set(self, value: float) -> None:  # pragma: no cover - guard
        raise TypeError("histograms record via observe(), not set()")


class Instrument:
    """Base of the three instrument kinds; owns its labeled children.

    Instruments are created through :class:`MetricsRegistry` factory
    methods — re-declaring the same name returns the existing instrument
    (so call sites need no coordination), while re-declaring with a
    different kind, label set, or channel raises.
    """

    kind = "untyped"
    child_class: type = _Child

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        channel: str,
    ):
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.channel = channel
        self._lock = registry._lock
        self._children: dict[tuple[str, ...], _Child] = {}
        if not labelnames:
            self._default = self._make_child({})
        else:
            self._default = None

    def _make_child(self, labels: Mapping[str, str]) -> _Child:
        child = self.child_class(self, labels)
        self._children[tuple(str(labels[n]) for n in self.labelnames)] = child
        return child

    def labels(self, **labels: Any) -> Any:
        """The child series for one label valuation (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(
                        {n: str(labels[n]) for n in self.labelnames}
                    )
        return child

    # -- unlabeled convenience passthroughs --------------------------------
    def _require_default(self) -> _Child:
        if self._default is None:
            raise ValueError(f"{self.name} is labeled; call .labels() first")
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        """Record on the unlabeled series (labeled instruments refuse)."""
        self._require_default().inc(amount)

    def set(self, value: float) -> None:
        """Set the unlabeled gauge series."""
        self._require_default().set(value)

    def add(self, amount: float) -> None:
        """Adjust the unlabeled gauge series."""
        self._require_default().add(amount)

    @property
    def value(self) -> float:
        """Value of the unlabeled series."""
        return self._require_default().value

    def _children_sorted(self) -> list[_Child]:
        return [self._children[key] for key in sorted(self._children)]


class Counter(Instrument):
    """A monotone non-negative counter."""

    kind = "counter"


class Gauge(Instrument):
    """A last-value gauge (either direction)."""

    kind = "gauge"


class Histogram(Instrument):
    """A fixed-log-bucket histogram (cumulative ``le`` exposition)."""

    kind = "histogram"
    child_class = _HistogramChild

    def __init__(self, registry, name, help, labelnames, channel, bounds):
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"{name}: bucket bounds must strictly increase")
        super().__init__(registry, name, help, labelnames, channel)

    def observe(self, value: float) -> None:
        """Record one observation on the unlabeled series."""
        self._require_default().observe(value)


class MetricsRegistry:
    """The process-wide instrument table; every layer records into one.

    See the module docstring for the design constraints.  All factory
    methods are idempotent by name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    def __bool__(self) -> bool:
        return True

    # -- declaration -------------------------------------------------------
    def _declare(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Sequence[str],
        channel: str,
        **extra: Any,
    ) -> Any:
        if channel not in CHANNELS:
            raise ValueError(f"unknown channel {channel!r} (one of {CHANNELS})")
        labelnames = tuple(labels)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.labelnames != labelnames
                    or existing.channel != channel
                ):
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{existing.kind}{existing.labelnames} "
                        f"channel={existing.channel!r}"
                    )
                return existing
            instrument = (
                cls(self, name, help, labelnames, channel, **extra)
                if extra
                else cls(self, name, help, labelnames, channel)
            )
            self._instruments[name] = instrument
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        channel: str = "decision",
    ) -> Counter:
        """Declare (or fetch) a counter."""
        return self._declare(Counter, name, help, labels, channel)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        channel: str = "decision",
    ) -> Gauge:
        """Declare (or fetch) a gauge."""
        return self._declare(Gauge, name, help, labels, channel)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        channel: str = "decision",
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """Declare (or fetch) a histogram.

        ``buckets`` defaults to :data:`DEFAULT_TIME_BUCKETS` for the
        ``timing`` channel and :data:`DEFAULT_SIZE_BUCKETS` otherwise.
        """
        if buckets is None:
            buckets = (
                DEFAULT_TIME_BUCKETS
                if channel == "timing"
                else DEFAULT_SIZE_BUCKETS
            )
        return self._declare(
            Histogram, name, help, labels, channel, bounds=tuple(buckets)
        )

    # -- reading -----------------------------------------------------------
    def snapshot(
        self, channels: Iterable[str] | None = None
    ) -> dict[str, dict[str, Any]]:
        """A consistent point-in-time view of every (selected) series.

        Returns ``{name: {"kind", "channel", "help", "series"}}`` where
        ``series`` maps the sorted-label suffix (``""`` when unlabeled)
        to a value (counter/gauge) or a ``{"buckets", "sum", "count"}``
        dict (histogram).  Taken under the recording lock, so no torn
        pairs — ever.
        """
        wanted = None if channels is None else set(channels)
        with self._lock:
            out: dict[str, dict[str, Any]] = {}
            for name in sorted(self._instruments):
                instrument = self._instruments[name]
                if wanted is not None and instrument.channel not in wanted:
                    continue
                series: dict[str, Any] = {}
                for child in instrument._children_sorted():
                    key = _series_suffix(child.labels)
                    if isinstance(child, _HistogramChild):
                        series[key] = {
                            "buckets": list(child.buckets),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    else:
                        series[key] = child._value
                out[name] = {
                    "kind": instrument.kind,
                    "channel": instrument.channel,
                    "help": instrument.help,
                    "series": series,
                }
            return out

    def exposition(self, channels: Iterable[str] | None = None) -> str:
        """Prometheus text exposition (format 0.0.4) of selected channels.

        Deterministic: instruments sorted by name, series by label
        suffix — two registries with equal contents expose equal bytes.
        """
        wanted = None if channels is None else set(channels)
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._instruments):
                instrument = self._instruments[name]
                if wanted is not None and instrument.channel not in wanted:
                    continue
                if instrument.help:
                    lines.append(f"# HELP {name} {instrument.help}")
                lines.append(f"# TYPE {name} {instrument.kind}")
                for child in instrument._children_sorted():
                    if isinstance(child, _HistogramChild):
                        cumulative = 0
                        for bound, bucket in zip(
                            instrument.bounds, child.buckets
                        ):
                            cumulative += bucket
                            labels = dict(child.labels)
                            labels["le"] = _format_value(bound)
                            lines.append(
                                f"{name}_bucket{_series_suffix(labels)} "
                                f"{cumulative}"
                            )
                        labels = dict(child.labels)
                        labels["le"] = "+Inf"
                        lines.append(
                            f"{name}_bucket{_series_suffix(labels)} "
                            f"{child.count}"
                        )
                        suffix = _series_suffix(child.labels)
                        lines.append(
                            f"{name}_sum{suffix} {_format_value(child.sum)}"
                        )
                        lines.append(f"{name}_count{suffix} {child.count}")
                    else:
                        lines.append(
                            f"{name}{_series_suffix(child.labels)} "
                            f"{_format_value(child._value)}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- cross-process folding ---------------------------------------------
    def drain(self) -> dict[str, Any]:
        """Everything recorded since the last drain, as a JSON-safe report.

        The shard side of the piggyback protocol: counters and histogram
        buckets report deltas (and mark themselves reported), gauges
        report their current value.  Series with nothing new are
        omitted, so a quiet shard ships an empty report.
        """
        report: list[dict[str, Any]] = []
        with self._lock:
            for name in sorted(self._instruments):
                instrument = self._instruments[name]
                series: list[list[Any]] = []
                for child in instrument._children_sorted():
                    if isinstance(child, _HistogramChild):
                        prev = child._reported_state
                        if prev is None:
                            prev = ([0] * len(child.buckets), 0.0, 0)
                        delta_count = child.count - prev[2]
                        if delta_count == 0:
                            continue
                        series.append(
                            [
                                child.labels,
                                {
                                    "buckets": [
                                        b - p
                                        for b, p in zip(child.buckets, prev[0])
                                    ],
                                    "sum": child.sum - prev[1],
                                    "count": delta_count,
                                },
                            ]
                        )
                        child._reported_state = (
                            list(child.buckets),
                            child.sum,
                            child.count,
                        )
                    elif instrument.kind == "gauge":
                        series.append([child.labels, child._value])
                    else:
                        delta = child._value - child._reported
                        if delta == 0:
                            continue
                        series.append([child.labels, delta])
                        child._reported = child._value
                if not series:
                    continue
                entry: dict[str, Any] = {
                    "name": name,
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "channel": instrument.channel,
                    "labels": list(instrument.labelnames),
                    "series": series,
                }
                if isinstance(instrument, Histogram):
                    entry["bounds"] = list(instrument.bounds)
                report.append(entry)
        return {"instruments": report}

    def absorb(self, report: Mapping[str, Any]) -> None:
        """Fold a :meth:`drain` report from another registry into this one."""
        for entry in report.get("instruments", ()):
            name = entry["name"]
            kind = entry["kind"]
            labels = entry.get("labels", ())
            channel = entry.get("channel", "decision")
            if kind == "histogram":
                instrument = self.histogram(
                    name,
                    entry.get("help", ""),
                    labels,
                    channel,
                    buckets=entry["bounds"],
                )
                for labelvals, payload in entry["series"]:
                    child = (
                        instrument.labels(**labelvals)
                        if labels
                        else instrument._require_default()
                    )
                    with self._lock:
                        for index, delta in enumerate(payload["buckets"]):
                            child.buckets[index] += delta
                        child.sum += payload["sum"]
                        child.count += payload["count"]
            elif kind == "gauge":
                instrument = self.gauge(
                    name, entry.get("help", ""), labels, channel
                )
                for labelvals, value in entry["series"]:
                    target = (
                        instrument.labels(**labelvals) if labels else instrument
                    )
                    target.set(value)
            else:
                instrument = self.counter(
                    name, entry.get("help", ""), labels, channel
                )
                for labelvals, delta in entry["series"]:
                    target = (
                        instrument.labels(**labelvals) if labels else instrument
                    )
                    target.inc(delta)


class _NullSeries:
    """Accepts every recording and does nothing; one shared instance."""

    __slots__ = ()

    def labels(self, **labels: Any) -> "_NullSeries":
        """Return self: null children are indistinguishable."""
        return self

    def inc(self, amount: float = 1.0) -> None:
        """Drop the record."""

    def set(self, value: float) -> None:
        """Drop the record."""

    def add(self, amount: float) -> None:
        """Drop the record."""

    def observe(self, value: float) -> None:
        """Drop the record."""

    @property
    def value(self) -> float:
        """Always zero."""
        return 0.0


_NULL_SERIES = _NullSeries()


class NullRegistry:
    """The no-op registry: instrumented code runs, nothing is recorded.

    Components default to this so the library surface stays usable (and
    benchmarkable) without a hub; it is falsy, so
    ``registry or NULL_REGISTRY`` composes and ``if registry:`` guards
    optional work like building piggyback reports.
    """

    def __bool__(self) -> bool:
        return False

    def counter(self, *args: Any, **kwargs: Any) -> _NullSeries:
        """A null counter."""
        return _NULL_SERIES

    def gauge(self, *args: Any, **kwargs: Any) -> _NullSeries:
        """A null gauge."""
        return _NULL_SERIES

    def histogram(self, *args: Any, **kwargs: Any) -> _NullSeries:
        """A null histogram."""
        return _NULL_SERIES

    def snapshot(self, channels: Iterable[str] | None = None) -> dict:
        """Always empty."""
        return {}

    def exposition(self, channels: Iterable[str] | None = None) -> str:
        """Always empty."""
        return ""

    def drain(self) -> dict[str, Any]:
        """Always empty."""
        return {"instruments": []}

    def absorb(self, report: Mapping[str, Any]) -> None:
        """Drop the report."""


#: The shared no-op registry every component defaults to.
NULL_REGISTRY = NullRegistry()
