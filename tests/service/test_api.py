"""The request/response facade and its audit trail."""

import pytest

from repro.core.plugin import CompileOptions
from repro.lang.secrets import SecretSpec
from repro.monad.policy import size_above
from repro.service.api import (
    BatchDowngradeRequest,
    CompileRequest,
    DeclassificationService,
    DowngradeRequest,
)

SPEC = SecretSpec.declare("S", x=(0, 19), y=(0, 19))
QUERY = "x + y <= 10"


@pytest.fixture
def service():
    svc = DeclassificationService(size_above(3))
    svc.register_query(CompileRequest("q", QUERY, SPEC))
    return svc


class TestCompileSurface:
    def test_receipt_reports_cold_compile(self):
        svc = DeclassificationService(size_above(3))
        receipt = svc.register_query(CompileRequest("q", QUERY, SPEC))
        assert receipt.name == "q"
        assert not receipt.cache_hit
        assert receipt.verified
        assert receipt.synth_time > 0

    def test_second_tenant_hits_the_cache(self, service):
        receipt = service.register_query(CompileRequest("q2", "y + x <= 10", SPEC))
        assert receipt.cache_hit
        assert receipt.verified

    def test_request_options_override_service_default(self):
        svc = DeclassificationService(size_above(3))
        svc.register_query(
            CompileRequest("q", QUERY, SPEC, options=CompileOptions(modes=("under",)))
        )
        assert svc.registry.lookup("q").qinfo.over_indset is None


class TestServing:
    def test_handle_single_request(self, service):
        service.open_session("alice", (SPEC, (3, 4)))
        result = service.handle(DowngradeRequest("alice", "q"))
        assert result.authorized
        assert result.response is True
        assert result.knowledge_size == service.manager.knowledge_of("alice").size()

    def test_handle_batch(self, service):
        for i in range(10):
            service.open_session(f"u{i}", (SPEC, (i, i)))
        results = service.handle_batch(BatchDowngradeRequest("q"))
        assert len(results) == 10
        assert all(r.authorized for r in results)
        assert {r.session_id for r in results} == set(service.manager.sessions)

    def test_batch_subset(self, service):
        for i in range(4):
            service.open_session(f"u{i}", (SPEC, (i, i)))
        results = service.handle_batch(
            BatchDowngradeRequest("q", session_ids=("u0", "u2"))
        )
        assert [r.session_id for r in results] == ["u0", "u2"]

    def test_unknown_query_is_a_refusal_not_an_exception(self, service):
        service.open_session("alice", (SPEC, (3, 4)))
        result = service.handle(DowngradeRequest("alice", "nope"))
        assert not result.authorized
        assert "Can't downgrade" in result.reason

    def test_unknown_session_is_a_refusal_not_an_exception(self, service):
        result = service.handle(DowngradeRequest("ghost", "q"))
        assert not result.authorized
        assert "no open session" in result.reason
        assert service.audit[-1].kind == "downgrade"
        assert service.audit[-1].data["authorized"] is False

    def test_batch_with_unknown_ids_refuses_them_individually(self, service):
        service.open_session("alice", (SPEC, (3, 4)))
        results = service.handle_batch(
            BatchDowngradeRequest("q", session_ids=("alice", "ghost", "alice"))
        )
        assert [r.session_id for r in results] == ["alice", "ghost"]
        assert results[0].authorized
        assert not results[1].authorized
        assert "no open session" in results[1].reason
        assert len(service.manager.session("alice").history) == 1


class TestAuditTrail:
    def test_every_request_kind_is_logged(self, service):
        service.open_session("alice", (SPEC, (3, 4)))
        service.handle(DowngradeRequest("alice", "q"))
        service.handle_batch(BatchDowngradeRequest("q"))
        service.close_session("alice")
        kinds = [event.kind for event in service.audit]
        assert kinds == ["compile", "session_open", "downgrade", "batch", "session_close"]
        assert [event.seq for event in service.audit] == list(range(5))

    def test_refusals_are_audited(self, service):
        service.open_session("alice", (SPEC, (3, 4)))
        service.handle(DowngradeRequest("alice", "nope"))
        event = service.audit[-1]
        assert event.kind == "downgrade"
        assert event.data["authorized"] is False

    def test_close_summarizes_the_session(self, service):
        service.open_session("alice", (SPEC, (3, 4)))
        service.handle(DowngradeRequest("alice", "q"))
        service.close_session("alice")
        event = service.audit[-1]
        assert event.kind == "session_close"
        assert event.data["authorized"] == 1


class TestWarmStartFacade:
    def test_round_trip_through_disk(self, tmp_path, service):
        path = tmp_path / "cache.json"
        service.save_cache(path)

        warmed = DeclassificationService.warm_start(size_above(3), path)
        receipt = warmed.register_query(CompileRequest("q", QUERY, SPEC))
        assert receipt.cache_hit
        warmed.open_session("alice", (SPEC, (3, 4)))
        assert warmed.handle(DowngradeRequest("alice", "q")).authorized


def test_concurrent_registrations_synthesize_once():
    """Two threads racing to register the same fresh problem must not
    both pay for synthesis: the loser waits on the compile lock and then
    reads the winner's artifact out of the cache."""
    import threading

    from repro.lang.secrets import SecretSpec
    from repro.monad.policy import size_above

    spec = SecretSpec.declare("RaceLoc", x=(0, 99), y=(0, 99))
    service = DeclassificationService(size_above(10))
    receipts = {}
    barrier = threading.Barrier(2)

    def register(name):
        barrier.wait()
        receipts[name] = service.register_query(
            CompileRequest(name, "abs(x - 40) + abs(y - 40) <= 25", spec)
        )

    threads = [
        threading.Thread(target=register, args=(n,)) for n in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(r.cache_hit for r in receipts.values()) == [False, True]
    assert service.cache.stats.misses == 1
    assert service.cache.stats.hits == 1
    assert sorted(service.registry.names()) == ["a", "b"]


class TestAuditTrail:
    """The bounded audit ring (PR 9): dense seqs, eviction, spill."""

    def test_unbounded_trail_behaves_like_the_old_list(self):
        from repro.service.api import AuditTrail

        trail = AuditTrail()
        for i in range(5):
            trail.append("downgrade", {"i": i})
        assert len(trail) == 5 and trail.total == 5
        assert [e.seq for e in trail] == [0, 1, 2, 3, 4]
        assert trail[-1].data == {"i": 4}
        assert trail.spilled == trail.dropped == 0

    def test_eviction_keeps_seqs_dense_and_counts_drops(self):
        from repro.service.api import AuditTrail

        trail = AuditTrail(capacity=3)
        for i in range(10):
            trail.append("downgrade", {"i": i})
        assert len(trail) == 3
        assert trail.total == 10
        # The retained window is the newest suffix, seqs still dense.
        assert [e.seq for e in trail] == [7, 8, 9]
        assert trail[0].seq == 7 and trail[-1].seq == 9
        assert trail.dropped == 7 and trail.spilled == 0

    def test_spill_hook_receives_evictions_in_order(self):
        from repro.service.api import AuditTrail

        spilled = []
        trail = AuditTrail(capacity=2, spill=spilled.extend)
        for i in range(6):
            trail.append("open", {"i": i})
        assert [e.seq for e in spilled] == [0, 1, 2, 3]
        assert trail.spilled == 4 and trail.dropped == 0
        assert [e.seq for e in trail] == [4, 5]

    def test_service_wires_capacity_through(self):
        svc = DeclassificationService(size_above(3), audit_capacity=2)
        svc.register_query(CompileRequest("q", QUERY, SPEC))
        svc.open_session("a", (SPEC, (1, 2)))
        svc.open_session("b", (SPEC, (3, 4)))
        svc.close_session("a")
        assert len(svc.audit) == 2   # the ring held its bound
        assert svc.audit.total == 4  # but the history count is exact
        assert svc.audit.dropped == 2
