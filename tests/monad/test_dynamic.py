"""Tests for dynamic policy enforcement."""

import pytest

from repro.core.plugin import CompileOptions, QueryRegistry
from repro.lang.ast import var
from repro.lang.secrets import SecretSpec
from repro.monad.anosy import AnosyT, PolicyViolation
from repro.monad.dynamic import DynamicAnosy
from repro.monad.policy import size_above
from repro.monad.protected import ProtectedSecret
from repro.monad.secure import SecureRuntime

SPEC = SecretSpec.declare("S", x=(0, 99), y=(0, 99))


@pytest.fixture(scope="module")
def registry():
    registry = QueryRegistry()
    options = CompileOptions(modes=("under",))
    registry.compile_and_register("half", var("x") < 50, SPEC, options)
    registry.compile_and_register("stripe", var("y") < 10, SPEC, options)
    return registry


def _dynamic(registry, threshold=10):
    session = AnosyT(SecureRuntime(), size_above(threshold), registry)
    return DynamicAnosy(session)


class TestPolicySwitching:
    def test_switch_with_no_tracked_secrets_accepted(self, registry):
        dynamic = _dynamic(registry)
        switch = dynamic.switch_policy(size_above(1000))
        assert switch.accepted
        assert dynamic.current_policy.name == "size > 1000"

    def test_switch_rejected_when_knowledge_violates(self, registry):
        dynamic = _dynamic(registry)
        secret = ProtectedSecret.seal(SPEC, (10, 5))
        dynamic.downgrade(secret, "half")   # knowledge ~ 5000 secrets
        dynamic.downgrade(secret, "stripe")  # knowledge ~ 500 secrets
        switch = dynamic.switch_policy(size_above(100_000))
        assert not switch.accepted
        assert len(switch.violations) == 1
        # The old policy stays in force.
        assert dynamic.current_policy.name == "size > 10"

    def test_forced_switch(self, registry):
        dynamic = _dynamic(registry)
        secret = ProtectedSecret.seal(SPEC, (10, 5))
        dynamic.downgrade(secret, "half")
        switch = dynamic.switch_policy(size_above(100_000), force=True)
        assert switch.accepted
        # Every further downgrade now violates the stricter policy.
        with pytest.raises(PolicyViolation):
            dynamic.downgrade(secret, "stripe")

    def test_relaxing_policy_allows_more(self, registry):
        dynamic = _dynamic(registry, threshold=100_000)
        secret = ProtectedSecret.seal(SPEC, (10, 5))
        with pytest.raises(PolicyViolation):
            dynamic.downgrade(secret, "half")
        assert dynamic.switch_policy(size_above(10)).accepted
        assert dynamic.downgrade(secret, "half") is True

    def test_switch_history_recorded(self, registry):
        dynamic = _dynamic(registry)
        dynamic.switch_policy(size_above(5))
        dynamic.switch_policy(size_above(7))
        assert [s.policy_name for s in dynamic.switches] == [
            "size > 5",
            "size > 7",
        ]
