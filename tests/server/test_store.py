"""SQLiteStore: durability, the CacheBackend seam, format guards, interop."""

import json

import pytest

from repro.core.plugin import CompileOptions, compile_query
from repro.lang.secrets import SecretSpec
from repro.service.cache import CACHE_FORMAT_VERSION, SynthesisCache
from repro.server.store import SQLiteStore, StoreFormatError

SPEC = SecretSpec.declare("Tiny", x=(0, 15), y=(0, 15))
OPTIONS = CompileOptions(domain="interval", modes=("under",))


def _compile(name="q", text="x <= 7", cache=None):
    return compile_query(name, text, SPEC, OPTIONS, cache=cache)


def test_put_get_roundtrip(tmp_path):
    with SQLiteStore(tmp_path / "store.db") as store:
        payload = {"hello": [1, 2, 3]}
        assert store.get("k") is None
        store.put("k", payload)
        assert store.get("k") == payload
        assert "k" in store
        assert "other" not in store
        assert len(store) == 1
        assert list(store.keys()) == ["k"]


def test_last_write_wins(tmp_path):
    with SQLiteStore(tmp_path / "store.db") as store:
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}
        assert len(store) == 1


def test_artifacts_survive_reopen(tmp_path):
    path = tmp_path / "store.db"
    cache = SynthesisCache()
    compiled = _compile(cache=cache)
    key = next(iter(cache.keys()))
    with SQLiteStore(path) as store:
        cache_with_backend = SynthesisCache(backend=store)
        cache_with_backend.put(key, compiled)

    # A brand-new process: the cache preloads the artifact from disk and
    # the compile is a pure hit.
    with SQLiteStore(path) as store:
        warm = SynthesisCache(backend=store)
        assert len(warm) == 1
        again = _compile(name="relabeled", cache=warm)
        assert warm.stats.hits == 1
        assert again.qinfo.under_indset == compiled.qinfo.under_indset
        assert again.name == "relabeled"


def test_backend_get_promotes_concurrent_writes(tmp_path):
    """A key written by another process after preload is still a hit."""
    path = tmp_path / "store.db"
    with SQLiteStore(path) as store:
        cache = SynthesisCache(backend=store)  # preloads empty
        # Another process writes an artifact directly to the store.
        other = SynthesisCache()
        compiled = _compile(cache=other)
        key = next(iter(other.keys()))
        from repro.service.serialize import compiled_query_to_json

        store.put(key, compiled_query_to_json(compiled))
        assert cache.get(key) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0


def test_format_version_mismatch_refuses(tmp_path):
    path = tmp_path / "store.db"
    SQLiteStore(path).close()
    # Corrupt the version the way an incompatible writer would.
    import sqlite3

    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'format_version'",
            (str(CACHE_FORMAT_VERSION + 1),),
        )
    conn.close()
    with pytest.raises(StoreFormatError):
        SQLiteStore(path)


def test_flat_file_interop(tmp_path):
    """Store ↔ SynthesisCache.save files round-trip losslessly."""
    cache = SynthesisCache()
    compiled = _compile(cache=cache)
    flat = tmp_path / "cache.json"
    cache.save(flat)

    with SQLiteStore(tmp_path / "store.db") as store:
        assert store.import_cache_json(flat) == 1
        exported = tmp_path / "exported.json"
        assert store.export_cache_json(exported) == 1
        reloaded = SynthesisCache.load(exported)
        key = next(iter(cache.keys()))
        hit = reloaded.get(key)
        assert hit is not None
        assert hit.qinfo.under_indset == compiled.qinfo.under_indset


def test_import_rejects_incompatible_flat_file(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 1, "entries": {}}))
    with SQLiteStore(tmp_path / "store.db") as store:
        with pytest.raises(StoreFormatError):
            store.import_cache_json(bad)


# ---------------------------------------------------------------------------
# The ledger_bounds table (LedgerBackend protocol)
# ---------------------------------------------------------------------------


def test_ledger_bounds_roundtrip_and_last_write_wins(tmp_path):
    path = tmp_path / "store.db"
    with SQLiteStore(path) as store:
        assert store.ledger_bound_count() == 0
        store.put_ledger_bound("alice", "Tiny", {"version": 1, "n": 1})
        store.put_ledger_bound("alice", "Other", {"version": 1, "n": 2})
        store.put_ledger_bound("bob", "Tiny", {"version": 1, "n": 3})
        store.put_ledger_bound("alice", "Tiny", {"version": 1, "n": 9})
        assert store.ledger_bound_count() == 3
    with SQLiteStore(path) as store:
        rows = list(store.ledger_bounds())
        assert [(u, s) for u, s, _p in rows] == [
            ("alice", "Other"),
            ("alice", "Tiny"),
            ("bob", "Tiny"),
        ]
        assert rows[1][2] == {"version": 1, "n": 9}


def test_ledger_bounds_and_artifacts_share_one_file(tmp_path):
    """One durability story: artifacts and budgets live in the same store."""
    path = tmp_path / "store.db"
    cache = SynthesisCache()
    compiled = _compile(cache=cache)
    key = next(iter(cache.keys()))
    with SQLiteStore(path) as store:
        SynthesisCache(backend=store).put(key, compiled)
        store.put_ledger_bound("alice", "Tiny", {"version": 1})
    with SQLiteStore(path) as store:
        assert len(store) == 1
        assert store.ledger_bound_count() == 1


def test_ledger_format_version_mismatch_refuses(tmp_path):
    path = tmp_path / "store.db"
    SQLiteStore(path).close()
    import sqlite3

    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "UPDATE meta SET value = '999' WHERE key = 'ledger_format_version'"
        )
    conn.close()
    with pytest.raises(StoreFormatError, match="ledger_format_version"):
        SQLiteStore(path)


def test_pre_ledger_store_adopts_current_ledger_version(tmp_path):
    """A store written before the ledger table existed opens cleanly and
    adopts the current ledger format version (its table is empty)."""
    path = tmp_path / "store.db"
    SQLiteStore(path).close()
    import sqlite3

    conn = sqlite3.connect(path)
    with conn:
        conn.execute("DROP TABLE ledger_bounds")
        conn.execute("DELETE FROM meta WHERE key = 'ledger_format_version'")
    conn.close()
    with SQLiteStore(path) as store:
        assert store.ledger_bound_count() == 0
        store.put_ledger_bound("alice", "Tiny", {"version": 1})


# ---------------------------------------------------------------------------
# Operator hooks: online backup and compaction
# ---------------------------------------------------------------------------


def test_backup_snapshot_is_complete_and_independent(tmp_path):
    src, dst = tmp_path / "live.db", tmp_path / "backup.db"
    with SQLiteStore(src) as store:
        store.put("k", {"v": 1})
        store.put_ledger_bound("alice", "Tiny", {"version": 1})
        store.backup(dst)
        store.put("post-backup", {"v": 2})  # only in the live store
    with SQLiteStore(dst) as snapshot:
        assert snapshot.get("k") == {"v": 1}
        assert snapshot.ledger_bound_count() == 1
        assert "post-backup" not in snapshot


def test_compact_preserves_contents(tmp_path):
    with SQLiteStore(tmp_path / "store.db") as store:
        for i in range(20):
            store.put(f"k{i}", {"v": i})
        for i in range(20):
            store.put(f"k{i}", {"v": -i})  # overwrites leave free pages
        store.put_ledger_bound("alice", "Tiny", {"version": 1})
        store.compact()
        assert len(store) == 20
        assert store.get("k7") == {"v": -7}
        assert store.ledger_bound_count() == 1


# ---------------------------------------------------------------------------
# Hardening: WAL, busy retries, pre-compact backup, corruption recovery
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    from repro.server import faults

    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()


def test_file_store_uses_wal_journaling(tmp_path):
    with SQLiteStore(tmp_path / "store.db") as store:
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"


def test_busy_retry_absorbs_transient_lock_storms(tmp_path):
    from repro.server import faults

    with SQLiteStore(tmp_path / "store.db") as store:
        faults.install_fault_plan(
            faults.FaultPlan(
                [faults.FaultSpec(site="store.write", kind="db_locked", times=2)]
            ),
            simulate=True,
        )
        store.put("k", {"v": 1})  # two locked attempts, then through
        assert store.get("k") == {"v": 1}


def test_busy_retry_gives_up_past_the_bound(tmp_path):
    import sqlite3

    from repro.server import faults

    with SQLiteStore(tmp_path / "store.db") as store:
        store.busy_backoff = 0.001
        faults.install_fault_plan(
            faults.FaultPlan(
                [
                    faults.FaultSpec(
                        site="store.write",
                        kind="db_locked",
                        times=store.busy_retries + 1,
                    )
                ]
            ),
            simulate=True,
        )
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.put("k", {"v": 1})
        # The storm has passed (budget spent): the next write lands.
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}


def test_compact_takes_automatic_pre_compact_backup(tmp_path):
    path = tmp_path / "store.db"
    with SQLiteStore(path) as store:
        store.put("k", {"v": 1})
        store.compact()
        store.put("post", {"v": 2})
    backup = tmp_path / "store.db.pre-compact"
    assert backup.exists()
    with SQLiteStore(backup) as snapshot:
        assert snapshot.get("k") == {"v": 1}
        assert "post" not in snapshot  # taken before, not after


def test_quick_check_distinguishes_health_from_damage(tmp_path):
    path = tmp_path / "store.db"
    with SQLiteStore(path) as store:
        store.put("k", {"v": 1})
        assert store.quick_check() is True


def test_recover_on_healthy_store_keeps_data(tmp_path):
    path = tmp_path / "store.db"
    with SQLiteStore(path) as store:
        store.put("k", {"v": 1})
        store.put_ledger_bound("alice", "Tiny", {"version": 1})
    with SQLiteStore.recover(path) as store:
        assert store.get("k") == {"v": 1}
        assert store.ledger_bound_count() == 1
    assert not (tmp_path / "store.db.corrupt-0").exists()


def test_recover_quarantines_and_rebuilds_corrupt_file(tmp_path):
    path = tmp_path / "store.db"
    cache = SynthesisCache()
    compiled = _compile(cache=cache)
    key = next(iter(cache.keys()))
    export = tmp_path / "export.json"
    with SQLiteStore(path) as store:
        SynthesisCache(backend=store).put(key, compiled)
        store.export_cache_json(export)
    # Smash the file the way a torn rewrite would.
    path.write_bytes(b"not a sqlite file at all" * 64)
    with SQLiteStore.recover(path, export_json=export) as rebuilt:
        # The damaged file is kept for forensics, never served from.
        assert (tmp_path / "store.db.corrupt-0").exists()
        # Artifacts came back from the flat-file export.
        assert len(rebuilt) == 1
        assert rebuilt.get(key) is not None
        # Ledger bounds cannot be rebuilt from a cache export.
        assert rebuilt.ledger_bound_count() == 0
    # Recovering twice never overwrites the quarantined evidence.
    path.write_bytes(b"damaged again" * 64)
    SQLiteStore.recover(path).close()
    assert (tmp_path / "store.db.corrupt-1").exists()


def test_recover_still_refuses_codec_version_skew(tmp_path):
    path = tmp_path / "store.db"
    SQLiteStore(path).close()
    import sqlite3

    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'format_version'",
            (str(CACHE_FORMAT_VERSION + 1),),
        )
    conn.close()
    # A version mismatch is a deployment error, not damage: no quarantine.
    with pytest.raises(StoreFormatError):
        SQLiteStore.recover(path)
    assert not (tmp_path / "store.db.corrupt-0").exists()
