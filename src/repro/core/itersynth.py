"""``IterSynth``: iterative synthesis of powerset domains (Algorithm 1).

Powersets of ``k`` intervals are synthesized one interval at a time, to
avoid the scalability cliff of optimizing many boxes jointly (the paper
observed Z3 degrading beyond ~6 joint objectives):

* **under-approximation** — each iteration synthesizes a maximal box inside
  the query region *minus the boxes found so far*, growing the include
  list ``dom_i``; the boxes are disjoint by construction.
* **over-approximation** — iteration 1 synthesizes the minimal bounding
  box; later iterations carve maximal boxes of *non*-satisfying points out
  of it, growing the exclude list ``dom_o`` (again pairwise disjoint).

Iteration stops early when the residue region is exhausted — e.g. if the
exact ind. set is a union of 2 boxes, ``k=3`` synthesis returns after 2.

All iterations share **one** solver engine: the query is lowered into
compiled kernels once, and each iteration's residue formula reuses the
already-compiled query sub-kernels (the region conjuncts are the only new
nodes), so the whole powerset pays a single lowering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang.ast import BoolExpr, Not
from repro.lang.secrets import SecretSpec
from repro.lang.transform import conjoin, nnf
from repro.domains.powerset import PowersetDomain
from repro.core.synth import SynthOptions, SynthResult, synth_interval
from repro.solver.boxes import Box
from repro.solver.decide import SolverStats, make_engine
from repro.solver.regions import box_formula, outside_boxes_formula

__all__ = ["IterSynthResult", "iter_synth_powerset"]


@dataclass(frozen=True)
class IterSynthResult:
    """A synthesized powerset plus synthesis metadata."""

    domain: PowersetDomain
    elapsed: float
    timed_out: bool
    iterations: int
    #: Aggregate solver counters across all iterations.
    stats: SolverStats | None = None


def iter_synth_powerset(
    query: BoolExpr,
    secret: SecretSpec,
    *,
    k: int,
    mode: str,
    polarity: bool,
    options: SynthOptions = SynthOptions(),
    engine=None,
) -> IterSynthResult:
    """Algorithm 1: synthesize a powerset of at most ``k`` intervals."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if mode not in ("under", "over"):
        raise ValueError(f"mode must be 'under' or 'over', got {mode!r}")
    if engine is None:
        engine = make_engine(
            secret.field_names, options.use_kernels,
            legacy_splits=options.legacy_splits,
        )
    stats = SolverStats()
    start = time.perf_counter()
    if mode == "under":
        result = _iter_under(query, secret, k, polarity, options, engine, stats)
    else:
        result = _iter_over(query, secret, k, polarity, options, engine, stats)
    elapsed = time.perf_counter() - start
    return IterSynthResult(
        domain=result[0],
        elapsed=elapsed,
        timed_out=result[1],
        iterations=result[2],
        stats=stats,
    )


def _collect(stats: SolverStats, piece: SynthResult) -> SynthResult:
    if piece.stats is not None:
        stats.merge(piece.stats)
    return piece


def _iter_under(
    query: BoolExpr,
    secret: SecretSpec,
    k: int,
    polarity: bool,
    options: SynthOptions,
    engine,
    stats: SolverStats,
) -> tuple[PowersetDomain, bool, int]:
    names = secret.field_names
    include: list[Box] = []
    timed_out = False
    for _ in range(k):
        region = outside_boxes_formula(include, names) if include else None
        piece = _collect(
            stats,
            synth_interval(
                query,
                secret,
                mode="under",
                polarity=polarity,
                region=region,
                options=options,
                engine=engine,
            ),
        )
        timed_out = timed_out or piece.timed_out
        if piece.domain.box is None:
            break  # residue region exhausted: the powerset is exact
        include.append(piece.domain.box)
    return PowersetDomain(secret, tuple(include), ()), timed_out, len(include)


def _iter_over(
    query: BoolExpr,
    secret: SecretSpec,
    k: int,
    polarity: bool,
    options: SynthOptions,
    engine,
    stats: SolverStats,
) -> tuple[PowersetDomain, bool, int]:
    names = secret.field_names
    cover = _collect(
        stats,
        synth_interval(
            query, secret, mode="over", polarity=polarity, options=options, engine=engine
        ),
    )
    if cover.domain.box is None:
        # Empty region: ⊥ is the exact over-approximation.
        return PowersetDomain.bottom(secret), cover.timed_out, 1

    outer = cover.domain.box
    timed_out = cover.timed_out
    exclude: list[Box] = []
    complement = nnf(Not(query if polarity else nnf(Not(query))))
    for _ in range(k - 1):
        region_parts: list[BoolExpr] = [box_formula(outer, names)]
        if exclude:
            region_parts.append(outside_boxes_formula(exclude, names))
        hole = _collect(
            stats,
            synth_interval(
                complement,
                secret,
                mode="under",
                polarity=True,
                region=conjoin(region_parts),
                options=options,
                engine=engine,
            ),
        )
        timed_out = timed_out or hole.timed_out
        if hole.domain.box is None:
            break  # no non-satisfying points left inside the cover
        exclude.append(hole.domain.box)
    return (
        PowersetDomain(secret, (outer,), tuple(exclude)),
        timed_out,
        1 + len(exclude),
    )
