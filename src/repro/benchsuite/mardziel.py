"""The B1-B5 benchmark problems (paper Table 1, from Mardziel et al.).

The paper evaluates on five queries from Mardziel et al.'s benchmark suite
(B3 and B4 originate from a Facebook targeted-advertising case study).
The original bounds are not published in the paper; each problem below is
re-engineered from its prose description *and* the exact ind.-set sizes
Table 1 reports, so that our ground truth lands on (or very near) the
paper's numbers:

====  ========  ======  ===================  ===================
 id    fields    paper True size              paper False size
====  ========  ======  ===================  ===================
 B1    2         259                          13246      (exact match)
 B2    3         1.01e+06                     2.43e+07   (exact match)
 B3    3         4                            884        (exact match)
 B4    4         1.37e+10                     2.81e+13   (same order; see below)
 B5    4         2160                         6.72e+06   (exact match)
====  ========  ======  ===================  ===================

B4 (Pizza) uses latitude/longitude scaled by 10^6 in the original, giving
coordinate bounds around 10^8.  Our pure-Python solver is ~100x slower
than Z3 on that benchmark's geometry, so the coordinates here are scaled
to ~10^5 per axis (DESIGN.md, substitution table).  B4 keeps its role as
the largest space and the hardest synthesis problem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import BoolExpr
from repro.lang.parser import parse_bool
from repro.lang.secrets import SecretSpec

__all__ = ["BenchmarkProblem", "ALL_BENCHMARKS", "benchmark"]


@dataclass(frozen=True)
class BenchmarkProblem:
    """One Table 1 row: a secret type, a query, and the paper's sizes."""

    bench_id: str
    name: str
    secret: SecretSpec
    query: BoolExpr
    description: str
    paper_true_size: float
    paper_false_size: float

    @property
    def field_count(self) -> int:
        """Table 1's "No. of fields" column."""
        return self.secret.arity


def _birthday() -> BenchmarkProblem:
    # Is the user's birthday within the next 7 days of day 260?  The
    # True set is 7 days x 37 birth years = 259, exactly Table 1.
    secret = SecretSpec.declare("Birthday", bday=(0, 364), byear=(1956, 1992))
    query = parse_bool("bday >= 260 and bday < 267")
    return BenchmarkProblem(
        bench_id="B1",
        name="Birthday",
        secret=secret,
        query=query,
        description="birthday within the next 7 days of a fixed day",
        paper_true_size=259,
        paper_false_size=13246,
    )


def _ship() -> BenchmarkProblem:
    # Can the ship aid the island at (200, 200)?  Requires proximity
    # (Manhattan radius 100 -> 20201 positions) and onboard capacity of at
    # least 50 (50 of 100 levels): 50 * 20201 = 1,010,050 ~ 1.01e6.  The
    # proximity constraint relates the two location fields — the
    # "relational query" the paper blames for slower synthesis.
    secret = SecretSpec.declare(
        "Ship", capacity=(0, 99), x=(0, 502), y=(0, 502)
    )
    query = parse_bool("abs(x - 200) + abs(y - 200) <= 100 and capacity >= 50")
    return BenchmarkProblem(
        bench_id="B2",
        name="Ship",
        secret=secret,
        query=query,
        description="ship can aid an island: nearby and enough capacity",
        paper_true_size=1.01e6,
        paper_false_size=2.43e7,
    )


def _photo() -> BenchmarkProblem:
    # Wedding-photography ad targeting: female (gender == 1), engaged
    # (status == 2), born 1980-1983.  True set = 1 * 1 * 4 = 4, total
    # space = 2 * 4 * 111 = 888, exactly Table 1.
    secret = SecretSpec.declare(
        "Photo", gender=(0, 1), status=(1, 4), byear=(1900, 2010)
    )
    query = parse_bool(
        "gender == 1 and status == 2 and byear >= 1980 and byear <= 1983"
    )
    return BenchmarkProblem(
        bench_id="B3",
        name="Photo",
        secret=secret,
        query=query,
        description="female, engaged, and in a certain age range",
        paper_true_size=4,
        paper_false_size=884,
    )


def _pizza() -> BenchmarkProblem:
    # Local pizza-parlor ad: young enough (born >= 1985), in school
    # (level >= 4), and address within walking distance of the parlor
    # (Manhattan radius 12000 in the scaled coordinate grid).
    # True = 26 * 2 * 288,024,001 ~ 1.50e10 (paper: 1.37e10);
    # total = 111 * 6 * 1e10 = 6.66e12 (paper: ~2.81e13, 10^8-scale
    # coordinates; see module docstring for the scaling note).
    secret = SecretSpec.declare(
        "Pizza",
        byear=(1900, 2010),
        school=(0, 5),
        lat=(0, 99_999),
        lon=(0, 99_999),
    )
    query = parse_bool(
        "byear >= 1985 and school >= 4 "
        "and abs(lat - 50000) + abs(lon - 50000) <= 12000"
    )
    return BenchmarkProblem(
        bench_id="B4",
        name="Pizza",
        secret=secret,
        query=query,
        description="birth year, school level, and address near the parlor",
        paper_true_size=1.37e10,
        paper_false_size=2.81e13,
    )


def _travel() -> BenchmarkProblem:
    # Travel-ad targeting: speaks English (language == 1), completed a
    # high education level (>= 8), lives in one of 8 three-country
    # clusters, and is older than 21.  True = 1 * 2 * 24 * 45 = 2160,
    # exactly Table 1; the scattered country clusters are the
    # "point-wise comparisons" the powerset domain shines on.
    secret = SecretSpec.declare(
        "Travel",
        language=(0, 49),
        education=(0, 9),
        country=(0, 199),
        age=(0, 66),
    )
    clusters = [10, 35, 60, 85, 110, 135, 160, 185]
    countries = sorted(c + d for c in clusters for d in range(3))
    members = ", ".join(str(c) for c in countries)
    query = parse_bool(
        f"language == 1 and education >= 8 and country in {{{members}}} "
        "and age > 21"
    )
    return BenchmarkProblem(
        bench_id="B5",
        name="Travel",
        secret=secret,
        query=query,
        description="English speaker, educated, in listed countries, adult",
        paper_true_size=2160,
        paper_false_size=6.72e6,
    )


ALL_BENCHMARKS: dict[str, BenchmarkProblem] = {
    problem.bench_id: problem
    for problem in (_birthday(), _ship(), _photo(), _pizza(), _travel())
}


def benchmark(bench_id: str) -> BenchmarkProblem:
    """Look up a benchmark problem by its Table 1 id (``"B1"``..``"B5"``)."""
    try:
        return ALL_BENCHMARKS[bench_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {bench_id!r}; known: {sorted(ALL_BENCHMARKS)}"
        ) from exc
