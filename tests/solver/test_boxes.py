"""Tests for integer box geometry and exact box algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.boxes import (
    Box,
    boxes_are_disjoint,
    disjoint_pieces,
    subtract_box,
    subtract_boxes,
    union_volume,
)

OUTER = Box.make((0, 9), (0, 9))
small_boxes = st.builds(
    lambda ax, ay, bx, by: Box.make(
        (min(ax, bx), max(ax, bx)), (min(ay, by), max(ay, by))
    ),
    st.integers(0, 9),
    st.integers(0, 9),
    st.integers(0, 9),
    st.integers(0, 9),
)


class TestBoxBasics:
    def test_volume(self):
        assert Box.make((0, 9), (5, 5)).volume() == 10

    def test_widths(self):
        assert Box.make((0, 9), (3, 5)).widths() == (10, 3)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="empty interval"):
            Box.make((3, 2))

    def test_zero_dimensions_rejected(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            Box(())

    def test_contains(self):
        box = Box.make((0, 4), (0, 4))
        assert box.contains((0, 4))
        assert not box.contains((5, 0))

    def test_contains_arity_check(self):
        with pytest.raises(ValueError, match="coordinates"):
            Box.make((0, 4)).contains((1, 2))

    def test_contains_box(self):
        assert OUTER.contains_box(Box.make((1, 2), (3, 4)))
        assert not Box.make((1, 2), (3, 4)).contains_box(OUTER)

    def test_is_point(self):
        assert Box.make((3, 3), (4, 4)).is_point()
        assert not Box.make((3, 4), (4, 4)).is_point()

    def test_any_point_is_inside(self):
        box = Box.make((2, 7), (0, 3))
        assert box.contains(box.any_point())

    def test_iter_points(self):
        assert list(Box.make((0, 1), (0, 1)).iter_points()) == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]

    def test_split(self):
        low, high = Box.make((0, 9)).split(0)
        assert low == Box.make((0, 4))
        assert high == Box.make((5, 9))

    def test_split_width_one_rejected(self):
        with pytest.raises(ValueError):
            Box.make((3, 3)).split(0)

    def test_widest_dim(self):
        assert Box.make((0, 3), (0, 9)).widest_dim() == 1

    def test_with_dim(self):
        assert Box.make((0, 9), (0, 9)).with_dim(1, 2, 3) == Box.make((0, 9), (2, 3))

    def test_hull(self):
        a = Box.make((0, 2), (5, 6))
        b = Box.make((4, 7), (0, 1))
        assert a.hull(b) == Box.make((0, 7), (0, 6))

    def test_arity_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            Box.make((0, 1)).intersect(Box.make((0, 1), (0, 1)))


class TestIntersection:
    def test_overlapping(self):
        a = Box.make((0, 5), (0, 5))
        b = Box.make((3, 8), (4, 9))
        assert a.intersect(b) == Box.make((3, 5), (4, 5))

    def test_disjoint_returns_none(self):
        assert Box.make((0, 1)).intersect(Box.make((3, 4))) is None

    @given(small_boxes, small_boxes)
    @settings(max_examples=80, deadline=None)
    def test_intersection_is_pointwise(self, a, b):
        result = a.intersect(b)
        expected = set(a.iter_points()) & set(b.iter_points())
        if result is None:
            assert not expected
        else:
            assert set(result.iter_points()) == expected


class TestSubtraction:
    @given(small_boxes, small_boxes)
    @settings(max_examples=80, deadline=None)
    def test_subtract_box_partitions(self, a, b):
        pieces = subtract_box(a, b)
        expected = set(a.iter_points()) - set(b.iter_points())
        covered = [p for piece in pieces for p in piece.iter_points()]
        assert set(covered) == expected
        assert len(covered) == len(expected)  # pieces are disjoint

    @given(st.lists(small_boxes, max_size=4), st.lists(small_boxes, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_subtract_boxes_semantics(self, keep, remove):
        pieces = subtract_boxes(keep, remove)
        expected = {
            p for box in keep for p in box.iter_points()
        } - {p for box in remove for p in box.iter_points()}
        covered = [p for piece in pieces for p in piece.iter_points()]
        assert set(covered) == expected
        assert len(covered) == len(expected)

    @given(st.lists(small_boxes, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_disjoint_pieces_cover_union(self, boxes):
        pieces = disjoint_pieces(boxes)
        expected = {p for box in boxes for p in box.iter_points()}
        covered = [p for piece in pieces for p in piece.iter_points()]
        assert set(covered) == expected
        assert len(covered) == len(expected)
        assert boxes_are_disjoint(pieces)

    @given(st.lists(small_boxes, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_union_volume_exact(self, boxes):
        expected = len({p for box in boxes for p in box.iter_points()})
        assert union_volume(boxes) == expected


class TestDisjointness:
    def test_disjoint(self):
        assert boxes_are_disjoint([Box.make((0, 1)), Box.make((2, 3))])

    def test_overlapping(self):
        assert not boxes_are_disjoint([Box.make((0, 2)), Box.make((2, 3))])
