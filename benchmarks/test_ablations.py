"""Benchmarks A1-A3 — the DESIGN.md ablations.

Regenerates the ablation tables (``python -m repro.experiments.ablations``
prints all three).
"""

import pytest

from repro.benchsuite.advertising import USER_LOC, nearby_query
from repro.benchsuite.mardziel import ALL_BENCHMARKS
from repro.core.itersynth import iter_synth_powerset
from repro.core.synth import SynthOptions, synth_interval
from repro.solver.boxes import Box
from repro.solver.decide import count_models


@pytest.mark.parametrize(
    "label,options",
    [
        ("balanced_box_seed", SynthOptions(growth="balanced")),
        ("balanced_point_seed", SynthOptions(growth="balanced", seed_pops=1)),
        ("lexicographic_point_seed", SynthOptions(growth="lexicographic", seed_pops=1)),
    ],
)
def test_a1_growth_strategy(benchmark, label, options):
    query = nearby_query((200, 200))
    result = benchmark(
        synth_interval, query, USER_LOC, mode="under", polarity=True, options=options
    )
    box = result.domain.box
    benchmark.extra_info["widths"] = "x".join(map(str, box.widths())) if box else "-"
    benchmark.extra_info["size"] = result.domain.size()


@pytest.mark.parametrize("k", [1, 2, 4, 6])
def test_a2_powerset_k_sweep(benchmark, k):
    problem = ALL_BENCHMARKS["B5"]
    result = benchmark.pedantic(
        iter_synth_powerset,
        args=(problem.query, problem.secret),
        kwargs={"k": k, "mode": "under", "polarity": True},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["size"] = result.domain.size()
    benchmark.extra_info["iterations"] = result.iterations


@pytest.mark.parametrize("configuration", ["vectorized", "pure_python"])
def test_a3_counting_configuration(benchmark, configuration):
    problem = ALL_BENCHMARKS["B2"]
    space = Box(problem.secret.bounds())
    threshold = None if configuration == "vectorized" else 0
    count = benchmark(
        count_models,
        problem.query,
        space,
        problem.secret.field_names,
        vector_threshold=threshold,
    )
    benchmark.extra_info["count"] = count
    assert count == 1_010_050
