"""The declassification service layer: compile once, serve many.

The paper's runtime story — posteriors are free because synthesis already
happened at compile time — becomes an architecture here:

* :mod:`repro.service.cache` — a content-addressed
  :class:`~repro.service.cache.SynthesisCache` so the expensive optimizer
  runs once per *semantic* query (alpha-equivalent reorderings included),
  with JSON persistence for warm starts across processes;
* :mod:`repro.service.session` — a
  :class:`~repro.service.session.SessionManager` multiplexing thousands of
  independent secrets over one shared compiled-query registry, with a
  batched ``downgrade_batch`` serving path;
* :mod:`repro.service.api` — plain request/response dataclasses and the
  audit-trailed :class:`~repro.service.api.DeclassificationService` facade;
* :mod:`repro.service.serialize` — exact JSON codecs for compiled
  artifacts (domains, certificates, reports).

The split enforced throughout: compiled artifacts are shared and
immutable, per-principal knowledge is private and mutable.  Later
sharding/async work distributes the second without touching the first.
"""

from repro.service.api import (
    AuditEvent,
    BatchDowngradeRequest,
    CompileReceipt,
    CompileRequest,
    DeclassificationService,
    DowngradeRequest,
    DowngradeResult,
)
from repro.service.cache import CacheBackend, CacheStats, SynthesisCache, cache_key
from repro.service.serialize import (
    compiled_query_from_json,
    compiled_query_to_json,
    domain_from_json,
    domain_to_json,
    options_from_json,
    options_to_json,
)
from repro.service.session import Session, SessionManager

__all__ = [
    "AuditEvent",
    "BatchDowngradeRequest",
    "CompileReceipt",
    "CompileRequest",
    "DeclassificationService",
    "DowngradeRequest",
    "DowngradeResult",
    "CacheBackend",
    "CacheStats",
    "SynthesisCache",
    "cache_key",
    "compiled_query_from_json",
    "compiled_query_to_json",
    "domain_from_json",
    "domain_to_json",
    "options_from_json",
    "options_to_json",
    "Session",
    "SessionManager",
]
