"""Benchmark E1 — Table 1: exact ind.-set counting for B1-B5.

Regenerates the paper's Table 1 (``python -m repro.experiments.table1``
prints the full table).  Each benchmark here times the exact model count
for one problem and records the resulting sizes in ``extra_info``, so the
pytest-benchmark report carries the table's content alongside the timing.
"""

import pytest

from repro.benchsuite.groundtruth import ground_truth
from repro.benchsuite.mardziel import ALL_BENCHMARKS

FAST_BENCHMARKS = ["B1", "B2", "B3", "B5"]


@pytest.mark.parametrize("bench_id", FAST_BENCHMARKS)
def test_table1_exact_count(benchmark, bench_id):
    problem = ALL_BENCHMARKS[bench_id]
    truth = benchmark(ground_truth, problem)
    benchmark.extra_info["true_size"] = truth.true_size
    benchmark.extra_info["false_size"] = truth.false_size
    benchmark.extra_info["paper_true"] = problem.paper_true_size
    benchmark.extra_info["paper_false"] = problem.paper_false_size
    assert truth.true_size + truth.false_size == truth.space_size


def test_table1_exact_count_pizza(benchmark):
    """B4 spans ~6.7e12 secrets; one round keeps the harness quick."""
    problem = ALL_BENCHMARKS["B4"]
    truth = benchmark.pedantic(ground_truth, args=(problem,), rounds=1, iterations=1)
    benchmark.extra_info["true_size"] = truth.true_size
    benchmark.extra_info["false_size"] = truth.false_size
    assert truth.true_size + truth.false_size == truth.space_size
