"""Quantitative information-flow measures (the paper's section 8 sketch)."""

from repro.qif.measures import (
    QueryLeakage,
    bayes_vulnerability,
    guessing_entropy,
    min_entropy,
    query_leakage,
    shannon_entropy,
)

__all__ = [
    "QueryLeakage",
    "bayes_vulnerability",
    "guessing_entropy",
    "min_entropy",
    "query_leakage",
    "shannon_entropy",
]
